//! A minimal, dependency-free stand-in for the parts of `criterion`
//! this workspace uses. The build environment has no network access to
//! crates.io, so the workspace vendors a small wall-clock harness with
//! the same API shape: benchmark groups, `bench_with_input`,
//! `iter`/`iter_batched`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Timing methodology is intentionally simple (median of per-sample
//! means over `sample_size` samples); it reports stable relative
//! numbers for the tree-vs-vector comparisons but makes no claim to
//! criterion's statistical rigor.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliminating a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark manager handed to `criterion_group!` functions.
pub struct Criterion {
    /// When set (by `--test` on the command line, as cargo does for
    /// `cargo test --benches`), run each benchmark once, untimed.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            test_mode,
        }
    }
}

/// A benchmark identifier: a function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`]; the stub harness only
/// uses it to pick how many setup outputs to pre-build per sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: batch many per sample.
    SmallInput,
    /// Large per-iteration inputs: batch few per sample.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> usize {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the measurement duration per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            test_mode: self.test_mode,
        };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Runs one benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            test_mode: self.test_mode,
        };
        f(&mut b);
        self.report(&id.into(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        if self.test_mode {
            println!("  {}/{id:<40} ok (test mode)", self.name);
            return;
        }
        let mut samples = b.samples.clone();
        if samples.is_empty() {
            println!("  {}/{id:<40} (no samples)", self.name);
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "  {}/{id:<40} median {} [min {}, max {}]",
            self.name,
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
        );
    }

    /// Ends the group (prints nothing extra in the stub).
    pub fn finish(self) {}
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The timing driver passed to each benchmark closure.
pub struct Bencher {
    /// Mean per-iteration time of each sample, in nanoseconds.
    samples: Vec<u128>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine` called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and estimate a per-iteration cost.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() / u128::from(warm_iters.max(1));
        let budget = self.measurement_time.as_nanos() / self.sample_size as u128;
        let iters = (budget / per_iter.max(1)).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() / u128::from(iters));
        }
    }

    /// Times `routine` over fresh values produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let batch = size.batch_len();
        let deadline = Instant::now() + self.warm_up_time + self.measurement_time;
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let n = inputs.len() as u128;
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed().as_nanos() / n);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
