//! Test-runner support: configuration, the per-case RNG, the failure
//! type, and the [`proptest!`](crate::proptest) /
//! [`prop_assert!`](crate::prop_assert) macros.

use std::fmt;

/// How many cases each property runs, mirroring
/// `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (`prop_assert!` or an explicit
/// [`TestCaseError::fail`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias of [`fail`](Self::fail), mirroring real proptest's
    /// `TestCaseError::Fail(reason)` constructor.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

impl From<String> for TestCaseError {
    fn from(message: String) -> Self {
        Self::fail(message)
    }
}

impl From<&str> for TestCaseError {
    fn from(message: &str) -> Self {
        Self::fail(message)
    }
}

/// The deterministic per-case generator (SplitMix64).
///
/// Each case of each property gets a generator derived from the case
/// index, so runs are reproducible without a persisted seed file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case number `case`.
    pub fn deterministic(case: u64) -> Self {
        // Golden-ratio offset decorrelates consecutive case indices.
        TestRng {
            state: case
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x6A09_E667_F3BC_C909),
        }
    }

    /// Returns the next random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Maximum number of shrink candidates tried per failing case.
pub const SHRINK_BUDGET: usize = 4_096;

/// Runs one property over `config.cases` sampled inputs; on failure,
/// shrinks the counterexample via
/// [`Strategy::shrink`](crate::strategy::Strategy::shrink) before
/// panicking with both the original and the minimized inputs.
///
/// This is the engine behind the [`proptest!`](crate::proptest) macro;
/// `describe` renders a value with the property's argument names.
pub fn run_property<S, F, D>(
    prop_name: &str,
    config: &ProptestConfig,
    strategy: &S,
    body: F,
    describe: D,
) where
    S: crate::strategy::Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
    D: Fn(&S::Value) -> String,
{
    let attempt = |value: S::Value| -> Result<(), TestCaseError> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value))) {
            Ok(outcome) => outcome,
            Err(payload) => Err(TestCaseError::fail(panic_message(payload.as_ref()))),
        }
    };
    for case in 0..u64::from(config.cases) {
        let mut rng = TestRng::deterministic(case);
        let original = strategy.sample(&mut rng);
        let Err(first_error) = attempt(original.clone()) else {
            continue;
        };
        // Greedy shrink loop: adopt the first simpler candidate that
        // still fails and restart from it; stop at a local minimum or
        // when the budget runs out. The default panic hook is silenced
        // for the duration so `assert!`-based properties don't print a
        // panic report per failing candidate (the final report below
        // carries the message); restored before panicking.
        let previous_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut best = original.clone();
        let mut best_error = first_error;
        let mut attempts = 0usize;
        'shrinking: while attempts < SHRINK_BUDGET {
            for candidate in strategy.shrink(&best) {
                if attempts >= SHRINK_BUDGET {
                    break;
                }
                attempts += 1;
                if let Err(e) = attempt(candidate.clone()) {
                    best = candidate;
                    best_error = e;
                    continue 'shrinking;
                }
            }
            break;
        }
        std::panic::set_hook(previous_hook);
        panic!(
            "property `{prop_name}` failed at case {case}: {best_error}\n\
             minimal failing inputs (after {attempts} shrink attempts):{}\n\
             original failing inputs:{}",
            describe(&best),
            describe(&original),
        );
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "test body panicked".to_owned()
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over many sampled inputs and
/// shrinking any counterexample before reporting it.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = ($($strategy,)+);
                $crate::test_runner::run_property(
                    stringify!($name),
                    &config,
                    &strategy,
                    |($($arg,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                    |value| {
                        let ($($arg,)+) = value.clone();
                        format!(
                            concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                            $(&$arg,)+
                        )
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts inside a property body; failure aborts only the current case
/// with a readable report (here: via `Err`, reported by `proptest!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*))
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    fn run_to_panic<S>(strategy: S, body: fn(S::Value) -> Result<(), TestCaseError>) -> String
    where
        S: Strategy + std::panic::RefUnwindSafe,
        S::Value: Clone,
    {
        let config = ProptestConfig::with_cases(64);
        let outcome = std::panic::catch_unwind(|| {
            run_property("demo", &config, &strategy, body, |v| format!(" {v:?}"))
        });
        let payload = outcome.expect_err("property should fail");
        if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            panic!("expected a String panic payload");
        }
    }

    #[test]
    fn failing_int_property_reports_the_minimal_counterexample() {
        // Fails for x >= 10: the boundary value 10 is the minimum.
        let message = run_to_panic((0u32..1_000,), |(x,)| {
            if x >= 10 {
                Err(TestCaseError::fail("too big"))
            } else {
                Ok(())
            }
        });
        assert!(
            message.contains("minimal failing inputs") && message.contains("(10,)"),
            "message did not report the shrunk input: {message}"
        );
        assert!(message.contains("original failing inputs"));
    }

    #[test]
    fn failing_vec_property_shrinks_length_and_elements() {
        // Fails when any element >= 50: the minimum is the one-element
        // vector [50].
        let message = run_to_panic((crate::collection::vec(0u32..1_000, 0..40),), |(xs,)| {
            if xs.iter().any(|&x| x >= 50) {
                Err(TestCaseError::fail("contains a big element"))
            } else {
                Ok(())
            }
        });
        assert!(
            message.contains("([50],)"),
            "vector did not shrink to [50]: {message}"
        );
    }

    #[test]
    fn panicking_bodies_are_caught_and_shrunk_too() {
        let message = run_to_panic((0u32..1_000,), |(x,)| {
            assert!(x < 25, "x too big");
            Ok(())
        });
        assert!(
            message.contains("x too big"),
            "panic message lost: {message}"
        );
        assert!(
            message.contains("(25,)"),
            "assert! failure not shrunk: {message}"
        );
    }

    #[test]
    fn passing_properties_do_not_panic() {
        let config = ProptestConfig::with_cases(32);
        run_property(
            "ok",
            &config,
            &(0u32..10,),
            |(_x,)| Ok(()),
            |v| format!("{v:?}"),
        );
    }
}
