//! Test-runner support: configuration, the per-case RNG, the failure
//! type, and the [`proptest!`](crate::proptest) /
//! [`prop_assert!`](crate::prop_assert) macros.

use std::fmt;

/// How many cases each property runs, mirroring
/// `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (`prop_assert!` or an explicit
/// [`TestCaseError::fail`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias of [`fail`](Self::fail), mirroring real proptest's
    /// `TestCaseError::Fail(reason)` constructor.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

impl From<String> for TestCaseError {
    fn from(message: String) -> Self {
        Self::fail(message)
    }
}

impl From<&str> for TestCaseError {
    fn from(message: &str) -> Self {
        Self::fail(message)
    }
}

/// The deterministic per-case generator (SplitMix64).
///
/// Each case of each property gets a generator derived from the case
/// index, so runs are reproducible without a persisted seed file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case number `case`.
    pub fn deterministic(case: u64) -> Self {
        // Golden-ratio offset decorrelates consecutive case indices.
        TestRng {
            state: case
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x6A09_E667_F3BC_C909),
        }
    }

    /// Returns the next random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::test_runner::TestRng::deterministic(case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    )+
                    let inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg,)+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {case}: {e}\ninputs:{}",
                            stringify!($name),
                            inputs
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts inside a property body; failure aborts only the current case
/// with a readable report (here: via `Err`, reported by `proptest!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*))
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}
