//! A minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses. The build environment has no network access to
//! crates.io, so the workspace vendors the surface its property tests
//! need: the [`Strategy`] trait over ranges / tuples / `prop_map` /
//! `prop_oneof!` / `collection::vec` / `any`, plus the [`proptest!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros and a deterministic
//! per-case RNG.
//!
//! Differences from real proptest, by design: no shrinking (a failing
//! case reports its inputs verbatim) and uniform rather than
//! size-biased sampling. Both only affect failure-report ergonomics,
//! not which properties hold.

pub mod strategy;
pub mod test_runner;

/// Strategies for arbitrary values of a type, mirroring
/// `proptest::arbitrary`.
pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// The `prop` module alias exposed by the prelude
/// (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use std::ops::Range;

    use crate::strategy::{Strategy, VecStrategy};

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}
