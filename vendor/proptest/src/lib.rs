//! A minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses. The build environment has no network access to
//! crates.io, so the workspace vendors the surface its property tests
//! need: the [`Strategy`] trait over ranges / tuples / `prop_map` /
//! `prop_oneof!` / `collection::vec` / `any`, plus the [`proptest!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros and a deterministic
//! per-case RNG.
//!
//! Failing cases are *shrunk* before being reported: integers
//! binary-search toward the in-range value closest to zero, vectors
//! shrink by prefix truncation, single-element removal and in-place
//! element shrinking, and tuples shrink one component at a time
//! ([`Strategy::shrink`]); the runner greedily adopts failing
//! candidates up to a fixed budget and reports both the original and
//! the minimal inputs. Mapped and union strategies do not shrink (their
//! domains are not invertible), and sampling is uniform rather than
//! size-biased — neither affects which properties hold.
//!
//! [`Strategy`]: strategy::Strategy
//! [`Strategy::shrink`]: strategy::Strategy::shrink

pub mod strategy;
pub mod test_runner;

/// Strategies for arbitrary values of a type, mirroring
/// `proptest::arbitrary`.
pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// The `prop` module alias exposed by the prelude
/// (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use std::ops::Range;

    use crate::strategy::{Strategy, VecStrategy};

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}
