//! The [`Strategy`] trait and the combinators this workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is simply a sampler.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Boxes a strategy for use in heterogeneous collections
/// (the [`prop_oneof!`](crate::prop_oneof) expansion).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V: std::fmt::Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // Via i128 so signed ranges straddling zero (and a span
                // exceeding the target type) stay representable; every
                // supported type is at most 64 bits.
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                let hi = (u128::from(rng.next_u64()) * span) >> 64;
                ((self.start as i128) + hi as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = ((end as i128) - (start as i128)) as u128 + 1;
                let hi = (u128::from(rng.next_u64()) * span) >> 64;
                ((start as i128) + hi as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) source: S,
    pub(crate) f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Uniform choice among boxed strategies; the result of
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: std::fmt::Debug> Union<V> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = ((u128::from(rng.next_u64()) * self.options.len() as u128) >> 64) as usize;
        self.options[i].sample(rng)
    }
}

/// The result of [`collection::vec`](crate::collection::vec).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Types with a canonical "arbitrary value" strategy, used by
/// [`any`](crate::arbitrary::any).
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

/// The result of [`any`](crate::arbitrary::any).
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn signed_ranges_straddling_zero_work() {
        let mut rng = TestRng::deterministic(0);
        let (mut neg, mut pos) = (false, false);
        for _ in 0..1_000 {
            let v = (-10i32..10).sample(&mut rng);
            assert!((-10..10).contains(&v));
            neg |= v < 0;
            pos |= v > 0;
            let w = (i64::MIN..=i64::MAX).sample(&mut rng);
            let _ = w; // full domain must not overflow
        }
        assert!(neg && pos, "both signs must be reachable");
    }

    #[test]
    fn combinators_sample_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        let strat = crate::prop_oneof![
            (0..4usize, 0..3usize).prop_map(|(a, b)| a * 10 + b),
            (5..6usize).prop_map(|a| a * 100),
        ];
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v == 500 || (v / 10 < 4 && v % 10 < 3), "bad sample {v}");
        }
        let xs = crate::collection::vec(0..7u8, 2..5).sample(&mut rng);
        assert!((2..5).contains(&xs.len()));
        assert!(xs.iter().all(|&x| x < 7));
    }
}
