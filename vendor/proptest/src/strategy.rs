//! The [`Strategy`] trait and the combinators this workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no full value tree; a strategy is a
/// sampler plus an optional [`shrink`](Strategy::shrink) step proposing
/// simpler variants of a failing value. Strategies that cannot shrink
/// (mapped or union strategies, whose domains are not invertible) use
/// the default empty implementation.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler candidates for a failing `value`, most
    /// aggressive first. Every candidate must lie in this strategy's
    /// domain (the test runner re-runs the property on candidates and
    /// must never see an input the strategy could not have produced).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Boxes a strategy for use in heterogeneous collections
/// (the [`prop_oneof!`](crate::prop_oneof) expansion).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<V: std::fmt::Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }

    fn shrink(&self, value: &V) -> Vec<V> {
        (**self).shrink(value)
    }
}

/// Binary-search candidates from `origin` toward `value`, most
/// aggressive first: `origin`, then repeated halvings of the remaining
/// distance, ending at the immediate neighbor of `value`.
fn shrink_toward(origin: i128, value: i128) -> impl Iterator<Item = i128> {
    let mut d = value - origin;
    std::iter::from_fn(move || {
        if d == 0 {
            return None;
        }
        let candidate = value - d;
        d /= 2;
        Some(candidate)
    })
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // Via i128 so signed ranges straddling zero (and a span
                // exceeding the target type) stay representable; every
                // supported type is at most 64 bits.
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                let hi = (u128::from(rng.next_u64()) * span) >> 64;
                ((self.start as i128) + hi as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Binary search toward the in-range value closest to 0.
                let (lo, hi) = (self.start as i128, (self.end as i128) - 1);
                let origin = 0i128.clamp(lo.min(hi), hi);
                shrink_toward(origin, *value as i128)
                    .map(|c| c as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = ((end as i128) - (start as i128)) as u128 + 1;
                let hi = (u128::from(rng.next_u64()) * span) >> 64;
                ((start as i128) + hi as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                let origin = 0i128.clamp(lo.min(hi), hi);
                shrink_toward(origin, *value as i128)
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Shrink one component at a time, the others fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) source: S,
    pub(crate) f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Uniform choice among boxed strategies; the result of
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: std::fmt::Debug> Union<V> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = ((u128::from(rng.next_u64()) * self.options.len() as u128) >> 64) as usize;
        self.options[i].sample(rng)
    }
}

/// The result of [`collection::vec`](crate::collection::vec).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let n = value.len();
        let min = self.size.start;
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        // Prefix shrinking: binary-search the kept length from the
        // minimum the size range allows up toward the current length.
        for keep in shrink_toward(min as i128, n as i128) {
            out.push(value[..keep as usize].to_vec());
        }
        // Element removal: drop each single element in turn.
        if n > min {
            for i in 0..n {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Element shrinking: simplify each element in place (the test
        // runner adopts the first failing candidate and restarts, so
        // listing every per-element candidate keeps shrinking complete).
        for (i, e) in value.iter().enumerate() {
            for candidate in self.element.shrink(e) {
                let mut v = value.clone();
                v[i] = candidate;
                out.push(v);
            }
        }
        out
    }
}

/// Types with a canonical "arbitrary value" strategy, used by
/// [`any`](crate::arbitrary::any).
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

/// The result of [`any`](crate::arbitrary::any).
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn signed_ranges_straddling_zero_work() {
        let mut rng = TestRng::deterministic(0);
        let (mut neg, mut pos) = (false, false);
        for _ in 0..1_000 {
            let v = (-10i32..10).sample(&mut rng);
            assert!((-10..10).contains(&v));
            neg |= v < 0;
            pos |= v > 0;
            let w = (i64::MIN..=i64::MAX).sample(&mut rng);
            let _ = w; // full domain must not overflow
        }
        assert!(neg && pos, "both signs must be reachable");
    }

    #[test]
    fn int_shrink_binary_searches_toward_zero() {
        // Unsigned range: origin is the range start when it exceeds 0.
        assert_eq!((0u32..1000).shrink(&100), vec![0, 50, 75, 88, 94, 97, 99]);
        assert_eq!((10u32..1000).shrink(&100), vec![10, 55, 78, 89, 95, 98, 99]);
        assert_eq!((0u32..1000).shrink(&0), Vec::<u32>::new());
        // Signed range straddling zero: origin is 0 itself.
        assert_eq!((-100i32..100).shrink(&-8), vec![0, -4, -6, -7]);
        // Negative-only range: origin is the largest (closest-to-zero)
        // representable value.
        assert_eq!((-100i32..-90).shrink(&-95), vec![-91, -93, -94]);
        // Inclusive ranges shrink the same way.
        assert_eq!((0u8..=255).shrink(&4), vec![0, 2, 3]);
        // Every candidate stays inside the range.
        for v in [3u32, 57, 999] {
            for c in (3u32..1000).shrink(&v) {
                assert!((3..1000).contains(&c), "candidate {c} escaped the range");
            }
        }
    }

    #[test]
    fn vec_shrink_offers_prefixes_removals_and_element_shrinks() {
        let strat = crate::collection::vec(0u32..100, 1..10);
        let candidates = strat.shrink(&vec![7, 50, 3]);
        // Prefix shrinking down to the minimum length.
        assert!(candidates.contains(&vec![7]));
        assert!(candidates.contains(&vec![7, 50]));
        // Single-element removal.
        assert!(candidates.contains(&vec![50, 3]));
        assert!(candidates.contains(&vec![7, 3]));
        // In-place element shrinking (50 -> 0 is the first candidate).
        assert!(candidates.contains(&vec![7, 0, 3]));
        // The minimum size is respected: no empty vector is proposed.
        assert!(candidates.iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let strat = (0u32..10, 0u32..10);
        let candidates = strat.shrink(&(4, 6));
        assert!(candidates.contains(&(0, 6)));
        assert!(candidates.contains(&(4, 0)));
        assert!(candidates.iter().all(|&(a, b)| a == 4 || b == 6));
    }

    #[test]
    fn unshrinkable_strategies_return_no_candidates() {
        let mapped = (0u32..10).prop_map(|x| x * 2);
        assert!(mapped.shrink(&4).is_empty());
        let union = crate::prop_oneof![0u32..10, 20u32..30];
        assert!(union.shrink(&5).is_empty());
    }

    #[test]
    fn combinators_sample_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        let strat = crate::prop_oneof![
            (0..4usize, 0..3usize).prop_map(|(a, b)| a * 10 + b),
            (5..6usize).prop_map(|a| a * 100),
        ];
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v == 500 || (v / 10 < 4 && v % 10 < 3), "bad sample {v}");
        }
        let xs = crate::collection::vec(0..7u8, 2..5).sample(&mut rng);
        assert!((2..5).contains(&xs.len()));
        assert!(xs.iter().all(|&x| x < 7));
    }
}
