//! A minimal, dependency-free stand-in for the parts of the `rand`
//! crate this workspace uses. The build environment has no network
//! access to crates.io, so the workspace vendors exactly the surface it
//! needs: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic
//! in the seed, with statistical quality far beyond what the workload
//! generators require. It is **not** cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose output is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, usable with any [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Samples a uniformly distributed `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Ranges a value of type `T` can be sampled from.
pub trait SampleRange<T> {
    /// Samples uniformly from `self`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // Go through i128 so signed ranges straddling zero (and a
                // span exceeding the target type) stay in representable
                // territory; every supported type is at most 64 bits.
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                // Lemire-style widening multiply avoids modulo bias.
                let hi = (u128::from(rng.next_u64()) * span) >> 64;
                ((self.start as i128) + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = ((end as i128) - (start as i128)) as u128 + 1;
                let hi = (u128::from(rng.next_u64()) * span) >> 64;
                ((start as i128) + hi as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit
            // state, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i: u64 = rng.random_range(5..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn signed_ranges_straddling_zero_work() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..1_000 {
            let v: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&v));
            seen_neg |= v < 0;
            seen_pos |= v > 0;
            let w: i64 = rng.random_range(i64::MIN..=i64::MAX);
            let _ = w; // full domain must not overflow
        }
        assert!(seen_neg && seen_pos, "both signs must be reachable");
    }

    #[test]
    fn small_ranges_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.random_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} too skewed");
        }
    }
}
