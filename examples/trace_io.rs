//! Logging and replaying traces: write an execution to the text and
//! binary formats, read it back, and analyze the replay — the workflow
//! of an offline dynamic-analysis pipeline.
//!
//! Run with: `cargo run --example trace_io`

use treeclocks::prelude::*;
use treeclocks::trace::{binary_format, text_format};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A producer/consumer handshake with one misuse: the consumer reads
    // `buf` once before acquiring the lock.
    let mut b = TraceBuilder::new();
    b.name_thread(0, "producer").name_thread(1, "consumer");
    b.acquire(0, "m");
    b.write(0, "buf");
    b.write(0, "ready");
    b.release(0, "m");
    b.read(1, "buf"); // racy early read
    b.acquire(1, "m");
    b.read(1, "ready");
    b.read(1, "buf");
    b.release(1, "m");
    let trace = b.finish();
    trace.validate()?;

    // Round-trip through both formats.
    let dir = std::env::temp_dir().join("treeclocks-example");
    std::fs::create_dir_all(&dir)?;
    let text_path = dir.join("handshake.trace");
    let bin_path = dir.join("handshake.tctr");

    text_format::write_text(&trace, std::fs::File::create(&text_path)?)?;
    binary_format::write_binary(&trace, std::fs::File::create(&bin_path)?)?;

    println!("text format ({}):", text_path.display());
    print!("{}", std::fs::read_to_string(&text_path)?);
    println!(
        "\nbinary format: {} bytes at {}",
        std::fs::metadata(&bin_path)?.len(),
        bin_path.display()
    );

    let from_text = text_format::read_text(std::fs::File::open(&text_path)?)?;
    let from_bin = binary_format::read_binary(std::fs::File::open(&bin_path)?)?;
    assert_eq!(from_text.events(), trace.events());
    assert_eq!(from_bin.events(), trace.events());

    // Analyze the replayed trace: SHB flags exactly the early read.
    let report = ShbRaceDetector::<TreeClock>::new(&from_text).run(&from_text);
    println!("\nanalysis of the replay: {report}");
    for race in &report.races {
        println!("  {race}");
    }
    assert_eq!(report.total, 1);

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
