//! Race detection on a realistic mixed workload, comparing the two
//! clock representations and the HB / SHB analyses — the scenario from
//! the paper's introduction: a dynamic race detector processing a
//! logged execution.
//!
//! Run with: `cargo run --release --example race_detection`

use std::time::Instant;

use treeclocks::prelude::*;
use treeclocks::trace::gen::WorkloadSpec;

fn main() {
    // Simulate a logged execution of a 32-thread server-style program:
    // mostly reads/writes, ~10% lock operations, skewed thread activity.
    let trace = WorkloadSpec {
        threads: 32,
        locks: 48,
        vars: 4_096,
        events: 400_000,
        sync_ratio: 0.10,
        write_ratio: 0.35,
        hot_thread_share: 0.25,
        hot_thread_weight: 4,
        seed: 2024,
        ..WorkloadSpec::default()
    }
    .generate();
    let stats = trace.stats();
    println!(
        "trace: {} events, {} threads, {} locks, {} variables ({:.1}% sync)\n",
        stats.events,
        stats.threads,
        stats.locks,
        stats.vars,
        stats.sync_pct()
    );

    // HB race detection, once per clock representation.
    let t0 = Instant::now();
    let hb_tree = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
    let tree_time = t0.elapsed();

    let t0 = Instant::now();
    let hb_vector = HbRaceDetector::<VectorClock>::new(&trace).run(&trace);
    let vector_time = t0.elapsed();

    assert_eq!(hb_tree, hb_vector, "representations must agree");
    println!("HB  (FastTrack-style): {hb_tree}");
    println!(
        "  tree clocks : {:>8.3}s\n  vector clocks: {:>7.3}s  (speedup {:.2}x)",
        tree_time.as_secs_f64(),
        vector_time.as_secs_f64(),
        vector_time.as_secs_f64() / tree_time.as_secs_f64()
    );

    // SHB reports only *schedulable* races — a subset with witnesses.
    let shb = ShbRaceDetector::<TreeClock>::new(&trace).run(&trace);
    println!("\nSHB (schedulable)    : {shb}");
    assert!(shb.total <= hb_tree.total);

    println!("\nfirst few SHB races:");
    for race in shb.races.iter().take(5) {
        println!("  {race}");
    }

    // The engines expose their work counters (via the instrumented
    // `run_counted` paths): the tree clock touches far fewer entries
    // than the vector clock on the same input.
    let tc = HbEngine::<TreeClock>::run_counted(&trace);
    let vc = HbEngine::<VectorClock>::run_counted(&trace);
    println!(
        "\nwork: vt-lower-bound={}, tree touched {} entries, vector touched {}",
        tc.vt_work(),
        tc.ds_work(),
        vc.ds_work(),
    );
}
