//! Lock debugging: comparing the clock-based HB detector with the two
//! classic clock-free analyses (Eraser-style lockset checking and
//! lock-order deadlock candidates) on the same trace — the application
//! domains the paper's related-work section surveys.
//!
//! Run with: `cargo run --example lock_debugging`

use treeclocks::prelude::*;

fn main() {
    // A small server: a worker protects `queue` with lock `q`, the
    // logger reads it under fork/join ordering (safe, but invisible to
    // locksets), and two threads nest `a`/`b` in opposite orders.
    let mut b = TraceBuilder::new();
    b.name_thread(0, "main")
        .name_thread(1, "worker")
        .name_thread(2, "logger");
    // main sets up the queue, then forks the workers.
    b.write(0, "queue");
    b.fork(0, 1);
    // worker uses the lock...
    b.acquire(1, "q");
    b.write(1, "queue");
    b.release(1, "q");
    // ...and nests a < b.
    b.acquire(1, "a");
    b.acquire(1, "b");
    b.release(1, "b");
    b.release(1, "a");
    b.join(0, 1);
    // logger reads after the join: ordered, no lock needed.
    b.fork(0, 2);
    b.read(2, "queue");
    b.join(0, 2);
    // main nests b < a: the ABBA inversion.
    b.acquire(0, "b");
    b.acquire(0, "a");
    b.release(0, "a");
    b.release(0, "b");
    let trace = b.finish();
    trace.validate().expect("well-formed");

    // 1. Happens-before: precise — no race (fork/join orders everything).
    let hb = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
    println!("HB race detector      : {hb}");
    assert!(hb.is_empty());

    // 2. Lockset: flags `queue` (it cannot see fork/join ordering) —
    //    the classic false positive motivating clock-based detection.
    let lockset = LocksetDetector::new(&trace).run(&trace);
    println!("lockset discipline    : {} violation(s)", lockset.len());
    for v in &lockset {
        println!("  unprotected {} (first emptied at event {})", v.var, v.at);
    }
    assert_eq!(lockset.len(), 1);

    // 3. Lock order: finds the real ABBA deadlock candidate.
    let deadlocks = LockOrderAnalyzer::new(&trace).run(&trace);
    println!("lock-order inversions : {} candidate(s)", deadlocks.len());
    for d in &deadlocks {
        println!(
            "  locks {:?} acquired in opposite orders by {} and {}",
            d.locks, d.thread_ab, d.thread_ba
        );
    }
    assert_eq!(deadlocks.len(), 1);

    println!("\nprecision summary: HB is silent where lockset cries wolf,\nand the deadlock candidate is real — run each analysis for what it's good at.");
}
