//! A miniature of the paper's Figure 10(c): on a star communication
//! topology the vector clock's cost grows linearly with the number of
//! threads while the tree clock's stays flat.
//!
//! Run with: `cargo run --release --example scalability`

use std::time::Instant;

use treeclocks::prelude::*;
use treeclocks::trace::gen::scenarios;

fn time_hb<C: LogicalClock>(trace: &Trace) -> f64 {
    let start = Instant::now();
    let mut engine = HbEngine::<C>::new(trace);
    for e in trace {
        engine.process(e);
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    const EVENTS: usize = 300_000;
    println!("star topology, {EVENTS} events per trace (HB computation)\n");
    println!(
        "{:>8}  {:>10}  {:>10}  {:>8}",
        "threads", "vector (s)", "tree (s)", "speedup"
    );

    for threads in [10u32, 40, 120, 240, 360] {
        let trace = scenarios::star(threads, EVENTS, 7);
        let vc = time_hb::<VectorClock>(&trace);
        let tc = time_hb::<TreeClock>(&trace);
        println!(
            "{threads:>8}  {vc:>10.3}  {tc:>10.3}  {:>7.2}x",
            vc / tc.max(1e-12)
        );
    }

    // The reason, in one number: the fraction of clock entries the tree
    // actually needs to touch, versus the k entries a vector must scan.
    let trace = scenarios::star(240, EVENTS, 7);
    let tree = HbEngine::<TreeClock>::run_counted(&trace);
    let vector = HbEngine::<VectorClock>::run_counted(&trace);
    println!(
        "\nat 240 threads: VTWork (lower bound) = {}, tree work = {} ({:.2}x), \
         vector work = {} ({:.1}x)",
        tree.vt_work(),
        tree.ds_work(),
        tree.work_ratio(),
        vector.ds_work(),
        vector.work_ratio(),
    );
    assert!(tree.work_ratio() <= 3.0, "Theorem 1 of the paper");
}
