//! Quickstart: build a tiny trace, compute happens-before with tree
//! clocks, inspect timestamps, and detect a data race.
//!
//! Run with: `cargo run --example quickstart`

use treeclocks::prelude::*;

fn main() {
    // A small program: t0 writes `data` under lock `m`, t1 reads it
    // under the same lock, then t2 reads it with no synchronization.
    let mut b = TraceBuilder::new();
    b.acquire(0, "m");
    b.write(0, "data");
    b.release(0, "m");
    b.acquire(1, "m");
    b.read(1, "data");
    b.release(1, "m");
    b.read(2, "data"); // unsynchronized!
    let trace = b.finish();
    trace.validate().expect("trace respects lock semantics");

    // 1. Per-event HB timestamps, computed with tree clocks.
    println!("HB timestamps (tree clocks):");
    let timestamps = HbEngine::<TreeClock>::collect_timestamps(&trace);
    for (event, vt) in trace.iter().zip(&timestamps) {
        println!("  {event:<16} {vt}");
    }

    // 2. Timestamps fully determine the ordering: t1's read is ordered
    //    after t0's write, t2's read is not.
    let read_locked = &timestamps[4];
    let read_unlocked = &timestamps[6];
    let write = &timestamps[1];
    assert!(write <= read_locked);
    assert!(write.concurrent_with(read_unlocked));

    // 3. The race detector finds the same fact in one streaming pass.
    let report = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
    println!("\n{report}");
    for race in &report.races {
        println!("  {race}");
    }
    assert_eq!(report.total, 1);

    // 4. Tree clocks and vector clocks are interchangeable — and agree.
    let vc_report = HbRaceDetector::<VectorClock>::new(&trace).run(&trace);
    assert_eq!(report, vc_report);
    println!("\ntree clocks and vector clocks agree ✓");
}
