//! Stateless model checking support: enumerate the *reversible pairs*
//! of the Mazurkiewicz order — the backtracking candidates a DPOR
//! exploration would branch on (Section 5.2 / Section 6 of the paper).
//!
//! Run with: `cargo run --example dpor_candidates`

use treeclocks::prelude::*;

fn main() {
    // Two workers increment a shared counter; one uses the lock, the
    // other forgets it for the read-modify-write.
    let mut b = TraceBuilder::new();
    b.acquire(0, "m");
    b.read(0, "counter");
    b.write(0, "counter");
    b.release(0, "m");
    b.read(1, "counter"); // unlocked read-modify-write
    b.write(1, "counter");
    b.acquire(2, "m");
    b.read(2, "counter");
    b.write(2, "counter");
    b.release(2, "m");
    let trace = b.finish();

    // Under MAZ all conflicting accesses are ordered by trace order;
    // the analyzer reports which of those orderings are *not* implied
    // transitively — each is a candidate reversal for the model
    // checker.
    let report = MazAnalyzer::<TreeClock>::new(&trace).run(&trace);
    println!("reversible conflicting pairs (DPOR backtrack points):");
    for pair in &report.races {
        println!("  {pair}");
    }
    println!(
        "\n{} candidate(s) from {} O(1) ordering checks",
        report.total, report.checks
    );

    // Exactly two orderings are forced only by their direct edge:
    // t0's write -> t1's unlocked read, and t1's write -> t2's read.
    // Everything else is transitively implied (e.g. t0's write is
    // ordered before t1's write *through* t1's read, and the lock
    // orders the t0 -> t2 critical sections), so a DPOR exploration
    // would branch on exactly these two reversals.
    assert_eq!(report.total, 2);
    let vc = MazAnalyzer::<VectorClock>::new(&trace).run(&trace);
    assert_eq!(report, vc, "clock representations agree");

    // The same pairs are exactly the SHB races on this trace — racy
    // accesses are reversible and vice versa here.
    let shb = ShbRaceDetector::<TreeClock>::new(&trace).run(&trace);
    println!("SHB sees {} race(s) on the same trace", shb.total);
}
