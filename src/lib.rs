//! `treeclocks` — a faithful, production-quality Rust reproduction of
//! *"A Tree Clock Data Structure for Causal Orderings in Concurrent
//! Executions"* (Mathur, Pavlogiannis, Tunç, Viswanathan — ASPLOS 2022).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! - [`core`](mod@core) — the [`TreeClock`] data structure, the
//!   [`VectorClock`] baseline, the adaptive flat/tree [`HybridClock`]
//!   and the [`LogicalClock`] abstraction they share.
//! - [`trace`] — the concurrent-execution trace model, validation,
//!   statistics, file formats and synthetic workload generators.
//! - [`orders`] — streaming engines for the happens-before (HB),
//!   schedulable-happens-before (SHB) and Mazurkiewicz (MAZ) partial
//!   orders, generic over the clock, plus work metrics and test oracles.
//! - [`analysis`] — epoch-optimized dynamic analyses built on top:
//!   HB/SHB data-race detection and MAZ reversible-pair analysis.
//! - [`stream`] — online, bounded-memory streaming race detection: an
//!   incremental detector with thread retirement and cold-state
//!   eviction, serializable checkpoints with byte-identical resume,
//!   and the session-sharded `tcr serve` line-protocol service.
//! - [`cluster`] — multi-node serving: a consistent-hash ring places
//!   sessions across a static peer set, non-owner nodes forward
//!   client commands transparently, owners ship rsync-style
//!   checkpoint deltas to their ring successor, and heartbeat-driven
//!   failover resumes dead nodes' sessions with byte-identical race
//!   reports; a per-node matrix clock computes stable prefixes that
//!   bound delta sizes.
//! - [`telemetry`] — the always-on observability core: lock-free
//!   counters/gauges, mergeable log₂-bucketed histograms, span rings
//!   with chrome://tracing export, and the Prometheus-style text
//!   exposition behind the service's `metrics` command.
//! - [`conformance`] — the cross-engine conformance harness: a corpus
//!   of trace configurations driven through every engine × backend
//!   combination and cross-checked against the definitional oracles
//!   (including streaming-vs-batch equivalence), with failure
//!   shrinking to minimal replayable repros.
//!
//! # Quickstart
//!
//! ```rust
//! use treeclocks::prelude::*;
//!
//! // A trace with a classic write-write race: t0 writes under the
//! // lock, t1 writes without taking it.
//! let mut b = TraceBuilder::new();
//! b.acquire(0, "m");
//! b.write(0, "x");
//! b.release(0, "m");
//! b.write(1, "x");
//! let trace = b.finish();
//!
//! // Detect HB races using tree clocks.
//! let report = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
//! assert_eq!(report.races.len(), 1);
//! ```

pub use tc_analysis as analysis;
pub use tc_cluster as cluster;
pub use tc_conformance as conformance;
pub use tc_core as core;
pub use tc_orders as orders;
pub use tc_stream as stream;
pub use tc_telemetry as telemetry;
pub use tc_trace as trace;

pub use tc_core::{
    ClockPool, CopyMode, Epoch, HybridClock, LazyClock, LocalTime, LogicalClock, OpStats, ThreadId,
    TreeClock, VectorClock, VectorTime,
};

/// Convenient glob-import surface: `use treeclocks::prelude::*;`.
pub mod prelude {
    pub use tc_analysis::{
        HbRaceDetector, LockOrderAnalyzer, LocksetDetector, MazAnalyzer, ShbRaceDetector,
    };
    pub use tc_core::{
        CopyMode, Epoch, HybridClock, LocalTime, LogicalClock, OpStats, ThreadId, TreeClock,
        VectorClock, VectorTime,
    };
    pub use tc_orders::{HbEngine, MazEngine, RunMetrics, ShbEngine};
    pub use tc_stream::{Checkpoint, DetectorConfig, IncrementalDetector};
    pub use tc_trace::{Event, LockId, Op, Trace, TraceBuilder, VarId};
}
