//! Round-trip property tests for the trace file formats:
//! `parse ∘ format = id` over generated traces (all scenario families
//! and mixed workloads), plus error-path coverage for malformed input.

use proptest::prelude::*;

use tc_trace::gen::{Scenario, WorkloadSpec};
use tc_trace::{binary_format, text_format, Trace};

fn arbitrary_trace(family: usize, threads: u32, sync_pct: u8, seed: u64) -> Trace {
    let scenarios = Scenario::ALL;
    if family < scenarios.len() {
        let s = scenarios[family];
        s.generate(threads.max(s.min_threads()), 120, seed)
    } else {
        WorkloadSpec {
            threads,
            locks: 3,
            vars: 8,
            events: 120,
            sync_ratio: f64::from(sync_pct) / 100.0,
            fork_join: seed.is_multiple_of(2),
            seed,
            ..WorkloadSpec::default()
        }
        .generate()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Binary round trip is the identity on events (ids preserved
    /// exactly), for every generator family.
    #[test]
    fn binary_round_trip_is_identity(
        family in 0usize..10, // 9 scenarios + the mixed workload
        threads in 2u32..7,
        sync_pct in 0u8..60,
        seed in 0u64..5_000,
    ) {
        let trace = arbitrary_trace(family, threads, sync_pct, seed);
        let bytes = binary_format::to_binary(&trace);
        let back = binary_format::read_binary(bytes.as_slice())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(trace.events(), back.events());
        // Serializing again is a fixed point.
        prop_assert_eq!(bytes, binary_format::to_binary(&back));
    }

    /// Text round trip preserves the event structure up to the
    /// first-appearance renaming of ids, and rendering is a fixed
    /// point from the first re-parse on.
    #[test]
    fn text_round_trip_is_identity_up_to_naming(
        family in 0usize..10,
        threads in 2u32..7,
        sync_pct in 0u8..60,
        seed in 0u64..5_000,
    ) {
        let trace = arbitrary_trace(family, threads, sync_pct, seed);
        let text = text_format::to_text(&trace);
        let back = text_format::parse_text(&text)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(trace.len(), back.len());
        // The text format carries names, not dense ids: the re-parse
        // re-interns in first-appearance order, so entity counts match
        // the *used* entities of the original (unused id holes vanish).
        let mut threads = std::collections::HashSet::new();
        let mut locks = std::collections::HashSet::new();
        let mut vars = std::collections::HashSet::new();
        for e in &trace {
            threads.insert(e.tid);
            match e.op {
                tc_trace::Op::Fork(u) | tc_trace::Op::Join(u) => {
                    threads.insert(u);
                }
                _ => {}
            }
            if let Some(l) = e.op.lock() {
                locks.insert(l);
            }
            if let Some(x) = e.op.variable() {
                vars.insert(x);
            }
        }
        prop_assert_eq!(threads.len(), back.thread_count());
        prop_assert_eq!(locks.len(), back.lock_count());
        prop_assert_eq!(vars.len(), back.var_count());
        // The re-parse names every entity, so from here the round trip
        // is exact: render ∘ parse is a fixed point...
        let rendered = text_format::to_text(&back);
        prop_assert_eq!(&rendered, &text);
        // ...and the re-parsed trace is event-identical to `back`.
        let again = text_format::parse_text(&rendered)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back.events(), again.events());
    }

    /// Truncating a binary trace anywhere strictly inside the payload
    /// fails loudly rather than yielding a silently short trace.
    #[test]
    fn truncated_binary_input_errors(
        threads in 2u32..6,
        seed in 0u64..5_000,
        cut_ppm in 0u32..1_000_000,
    ) {
        let trace = arbitrary_trace(9, threads, 20, seed);
        let bytes = binary_format::to_binary(&trace);
        let cut = 1 + (bytes.len() - 1) * cut_ppm as usize / 1_000_000;
        prop_assert!(cut < bytes.len());
        prop_assert!(
            binary_format::read_binary(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} was not detected",
            bytes.len()
        );
    }

    /// A corrupted opcode byte is always rejected (valid opcodes are
    /// 0..=5; anything else must error, never misparse).
    #[test]
    fn corrupt_binary_opcode_errors(bad_op in 6u8..=255) {
        let mut b = tc_trace::TraceBuilder::new();
        b.write(0, "x");
        let mut bytes = binary_format::to_binary(&b.finish());
        let op_offset = bytes.len() - 3; // opcode, tid varint, operand varint
        bytes[op_offset] = bad_op;
        prop_assert!(binary_format::read_binary(bytes.as_slice()).is_err());
    }
}

#[test]
fn malformed_text_lines_error_with_line_numbers() {
    for (input, expect) in [
        ("t0 acq\n", "expected"),            // missing operand
        ("t0\n", "expected"),                // missing op and operand
        ("t0 cas x\n", "unknown operation"), // unknown op
        ("t0 r x junk\n", "trailing"),       // trailing token
    ] {
        let e = text_format::parse_text(input).expect_err(input);
        assert_eq!(e.line, 1, "wrong line for {input:?}");
        assert!(
            e.message.contains(expect),
            "{input:?}: message {:?} lacks {expect:?}",
            e.message
        );
    }
    // Errors past leading comments/blank lines report the right line.
    let e = text_format::parse_text("# header\n\nt0 r x\nt1 oops y\n").unwrap_err();
    assert_eq!(e.line, 4);
}

#[test]
fn binary_header_corruption_is_rejected() {
    let mut b = tc_trace::TraceBuilder::new();
    b.acquire(0, "m").release(0, "m");
    let good = binary_format::to_binary(&b.finish());

    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    assert!(binary_format::read_binary(bad_magic.as_slice()).is_err());

    let mut bad_version = good.clone();
    bad_version[4] = 99;
    assert!(binary_format::read_binary(bad_version.as_slice()).is_err());

    assert!(binary_format::read_binary(&good[..3]).is_err());
    assert!(binary_format::read_binary(&[][..]).is_err());
}
