//! Property tests: every transformation produces well-formed traces for
//! arbitrary workloads and cut points, and composes sensibly.

use proptest::prelude::*;

use tc_core::ThreadId;
use tc_trace::gen::WorkloadSpec;
use tc_trace::transform::{focus_variable, prefix, project_threads, suffix};
use tc_trace::VarId;

fn workload(seed: u64, threads: u32, sync_pct: u8, fork_join: bool) -> tc_trace::Trace {
    WorkloadSpec {
        threads,
        locks: 4,
        vars: 16,
        events: 300,
        sync_ratio: f64::from(sync_pct) / 100.0,
        fork_join,
        seed,
        ..WorkloadSpec::default()
    }
    .generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prefix_and_suffix_stay_well_formed(
        seed in 0u64..5000,
        threads in 2u32..8,
        sync_pct in 0u8..80,
        fork_join in any::<bool>(),
        cut_ppm in 0u32..=1_000_000,
    ) {
        let t = workload(seed, threads, sync_pct, fork_join);
        let cut = (t.len() as u64 * u64::from(cut_ppm) / 1_000_000) as usize;
        prefix(&t, cut).validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        suffix(&t, cut).validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    #[test]
    fn projection_is_well_formed_and_idempotent(
        seed in 0u64..5000,
        threads in 2u32..8,
        keep_mask in 1u32..255,
    ) {
        let t = workload(seed, threads, 30, false);
        let keep: Vec<ThreadId> = (0..threads)
            .filter(|i| keep_mask & (1 << i) != 0)
            .map(ThreadId::new)
            .collect();
        let p = project_threads(&t, &keep);
        p.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let pp = project_threads(&p, &keep);
        prop_assert_eq!(p.events(), pp.events(), "projection must be idempotent");
    }

    #[test]
    fn focusing_is_well_formed_and_monotone(
        seed in 0u64..5000,
        var in 0u32..16,
    ) {
        let t = workload(seed, 5, 20, false);
        let f = focus_variable(&t, VarId::new(var));
        f.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(f.len() <= t.len());
        // Focusing twice is the same as focusing once.
        let ff = focus_variable(&f, VarId::new(var));
        prop_assert_eq!(f.events(), ff.events());
    }
}
