//! The batched binary **wire protocol** for streaming events to a
//! detection service.
//!
//! The text protocol served by `tcr serve` pays a line parse and an
//! interner lookup per event. At network scale (Chrono-style causal
//! metadata services) the transport of choice is a compact binary
//! encoding with *batched* delivery: one length-prefixed frame carries
//! a whole burst of events for one session, amortizing both the
//! syscall and the dispatch over the batch.
//!
//! # Frame layout
//!
//! ```text
//! magic    u8          0xF7 (FRAME_MAGIC)
//! length   u32 LE      payload length in bytes (≤ MAX_FRAME_LEN)
//! payload:
//!   session varint     session id the events belong to
//!   count   varint     number of event records
//!   events  count × (opcode u8, tid varint, operand varint)
//! ```
//!
//! Event records reuse the [binary trace format](crate::binary_format)
//! encoding exactly (LEB128 varints, the same opcode table), so a
//! logged `.tctr` file shreds into frames with no re-encoding of
//! events. Ids are dense (no name tables) — the binary path bypasses
//! the interner by construction.
//!
//! The magic byte `0xF7` has the high bit set, so it can never begin a
//! line of the UTF-8/ASCII text protocol: a server can sniff the first
//! byte of every message and speak both protocols on one port.
//!
//! # Reading
//!
//! Two consumption styles are provided:
//!
//! - [`read_frame`] — blocking, from any [`Read`] (tests, simple
//!   clients);
//! - [`try_frame`] — incremental, from a byte buffer: returns
//!   `Ok(None)` until a full frame is buffered, then the decoded frame
//!   plus the number of bytes consumed. This is the form a nonblocking
//!   readiness loop wants.

use std::error::Error;
use std::fmt;
use std::io::{self, Read};

use tc_core::ThreadId;

use crate::binary_format::{decode_op, opcode, read_varint, write_varint};
use crate::event::Event;

/// First byte of every binary frame. The high bit is set, so no text
/// protocol line can start with it — one port can serve both protocols
/// by sniffing the first byte of each message.
pub const FRAME_MAGIC: u8 = 0xF7;

/// First byte of a multi-session frame: one length-prefixed message
/// carrying event batches for *several* sessions (the fan-in shape —
/// hundreds of tiny per-session batches share one header, one sniff
/// and one parse). High bit set, like [`FRAME_MAGIC`], and distinct
/// from it so `try_message` can dispatch on the first byte.
pub const MULTI_MAGIC: u8 = 0xF6;

/// Upper bound on a frame's payload length (16 MiB) — a corruption
/// guard: a glitched length prefix must not make a server buffer
/// gigabytes.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Bytes of frame header preceding the payload (magic + u32 length).
pub const FRAME_HEADER_LEN: usize = 5;

/// An error while decoding a wire frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying reader failed (includes truncation for the
    /// blocking reader).
    Io(io::Error),
    /// The bytes are not a valid frame.
    Corrupt(String),
    /// An encode was asked to build a frame whose payload would exceed
    /// [`MAX_FRAME_LEN`] — batch fewer events, or use [`encode_frames`]
    /// which splits automatically.
    Oversize {
        /// The payload size that would have been produced.
        bytes: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "I/O error reading wire frame: {e}"),
            WireError::Corrupt(m) => write!(f, "corrupt wire frame: {m}"),
            WireError::Oversize { bytes } => write!(
                f,
                "frame payload of {bytes} bytes exceeds the {MAX_FRAME_LEN}-byte cap \
                 (batch fewer events or use encode_frames)"
            ),
        }
    }
}

impl Error for WireError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Corrupt(_) | WireError::Oversize { .. } => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A decoded event frame: a batch of events bound for one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The session the events belong to.
    pub session: u64,
    /// The batched events, in trace order.
    pub events: Vec<Event>,
}

/// Largest encoded event record: opcode byte plus two `u32` varints
/// (≤ 5 bytes each).
const MAX_EVENT_BYTES: usize = 11;

/// Events per frame that are guaranteed to fit under [`MAX_FRAME_LEN`]
/// even at worst-case varint widths (session id included) — the split
/// size [`encode_frames`] uses.
pub const MAX_SPLIT_EVENTS: usize = (MAX_FRAME_LEN - 15) / MAX_EVENT_BYTES;

/// Appends one event batch (count varint + records) to `payload`.
fn encode_batch(payload: &mut Vec<u8>, events: &[Event]) {
    write_varint(payload, events.len() as u64).expect("writing to a Vec cannot fail");
    for e in events {
        let (code, operand) = opcode(e.op);
        payload.push(code);
        write_varint(payload, u64::from(e.tid.raw())).expect("writing to a Vec cannot fail");
        write_varint(payload, u64::from(operand)).expect("writing to a Vec cannot fail");
    }
}

/// Wraps a finished payload in a magic byte + length header.
fn seal(magic: u8, payload: Vec<u8>) -> Result<Vec<u8>, WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::Oversize {
            bytes: payload.len(),
        });
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.push(magic);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Encodes one frame carrying `events` for `session`.
///
/// # Errors
///
/// [`WireError::Oversize`] if the encoded payload would exceed
/// [`MAX_FRAME_LEN`] — a misbehaving batch size must not abort the
/// encoder side. Use [`encode_frames`] to split arbitrarily large
/// batches automatically.
pub fn encode_frame(session: u64, events: &[Event]) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::with_capacity(8 + events.len() * 3);
    write_varint(&mut payload, session).expect("writing to a Vec cannot fail");
    encode_batch(&mut payload, events);
    seal(FRAME_MAGIC, payload)
}

/// Encodes `events` for `session` as one or more frames, splitting the
/// batch whenever a single frame would overflow [`MAX_FRAME_LEN`].
/// Never fails; an empty batch encodes as one empty frame.
pub fn encode_frames(session: u64, events: &[Event]) -> Vec<Vec<u8>> {
    if events.is_empty() {
        return vec![encode_frame(session, events).expect("an empty frame always fits")];
    }
    events
        .chunks(MAX_SPLIT_EVENTS)
        .map(|chunk| encode_frame(session, chunk).expect("a split chunk always fits"))
        .collect()
}

/// Encodes one multi-session frame: `(session, events)` batches that
/// share a single header. Sniffed by [`MULTI_MAGIC`]; decoded by
/// [`try_message`] into one [`Frame`] per group.
///
/// # Frame layout
///
/// ```text
/// magic    u8          0xF6 (MULTI_MAGIC)
/// length   u32 LE      payload length in bytes (≤ MAX_FRAME_LEN)
/// payload:
///   groups  varint     number of (session, batch) groups
///   groups × (session varint, count varint, count × event record)
/// ```
///
/// # Errors
///
/// [`WireError::Oversize`] if the combined payload would exceed
/// [`MAX_FRAME_LEN`] — split the group list and encode several
/// multi-frames.
pub fn encode_multi_frame(groups: &[(u64, &[Event])]) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::with_capacity(8 + groups.len() * 16);
    write_varint(&mut payload, groups.len() as u64).expect("writing to a Vec cannot fail");
    for (session, events) in groups {
        write_varint(&mut payload, *session).expect("writing to a Vec cannot fail");
        encode_batch(&mut payload, events);
    }
    seal(MULTI_MAGIC, payload)
}

/// Decodes one event batch (count varint + records) from `r`.
fn decode_events(r: &mut &[u8]) -> Result<Vec<Event>, WireError> {
    let count = read_varint(r).map_err(bin_err)?;
    let count = usize::try_from(count)
        .ok()
        .filter(|&c| c <= MAX_FRAME_LEN)
        .ok_or_else(|| WireError::Corrupt(format!("implausible event count {count}")))?;
    let mut events = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let mut code = [0u8; 1];
        r.read_exact(&mut code)
            .map_err(|_| WireError::Corrupt("frame payload truncated mid-event".into()))?;
        let tid = read_varint(r).map_err(bin_err)?;
        let operand = read_varint(r).map_err(bin_err)?;
        let tid =
            u32::try_from(tid).map_err(|_| WireError::Corrupt("thread id overflows u32".into()))?;
        let operand = u32::try_from(operand)
            .map_err(|_| WireError::Corrupt("operand overflows u32".into()))?;
        events.push(Event::new(
            ThreadId::new(tid),
            decode_op(code[0], operand).map_err(bin_err)?,
        ));
    }
    Ok(events)
}

/// Decodes a frame payload (the bytes after the header).
fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
    let mut r = payload;
    let session = read_varint(&mut r).map_err(bin_err)?;
    let events = decode_events(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::Corrupt(format!(
            "{} trailing bytes after {} events",
            r.len(),
            events.len()
        )));
    }
    Ok(Frame { session, events })
}

/// Decodes a multi-session frame payload into one [`Frame`] per group.
fn decode_multi_payload(payload: &[u8]) -> Result<Vec<Frame>, WireError> {
    let mut r = payload;
    let groups = read_varint(&mut r).map_err(bin_err)?;
    let groups = usize::try_from(groups)
        .ok()
        .filter(|&g| g <= MAX_FRAME_LEN)
        .ok_or_else(|| WireError::Corrupt(format!("implausible group count {groups}")))?;
    let mut frames = Vec::with_capacity(groups.min(1 << 16));
    for _ in 0..groups {
        let session = read_varint(&mut r).map_err(bin_err)?;
        let events = decode_events(&mut r)?;
        frames.push(Frame { session, events });
    }
    if !r.is_empty() {
        return Err(WireError::Corrupt(format!(
            "{} trailing bytes after {groups} groups",
            r.len()
        )));
    }
    Ok(frames)
}

/// Maps a binary-format error into the wire error space: inside a
/// fully buffered payload, even an "I/O" error (a truncated varint
/// read) means the frame is malformed.
fn bin_err(e: crate::binary_format::BinaryError) -> WireError {
    use crate::binary_format::BinaryError;
    match e {
        BinaryError::Io(_) => WireError::Corrupt("frame payload truncated mid-event".into()),
        BinaryError::Corrupt(m) => WireError::Corrupt(m),
    }
}

/// Reads one frame from a blocking reader. The first byte must be
/// [`FRAME_MAGIC`] (sniff before calling when multiplexing protocols).
///
/// # Errors
///
/// [`WireError::Corrupt`] for bad magic, implausible lengths or
/// malformed payloads; [`WireError::Io`] for reader failures,
/// including truncation.
pub fn read_frame<R: Read>(mut reader: R) -> Result<Frame, WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    reader.read_exact(&mut header)?;
    if header[0] != FRAME_MAGIC {
        return Err(WireError::Corrupt(format!(
            "bad frame magic 0x{:02x} (expected 0x{FRAME_MAGIC:02x})",
            header[0]
        )));
    }
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Corrupt(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    decode_payload(&payload)
}

/// Attempts to extract one frame from the front of `buf` without
/// blocking: returns `Ok(None)` while the buffer holds only a partial
/// frame, or the decoded frame plus the number of bytes it consumed.
///
/// The caller owns buffer compaction (`drain(..consumed)`); the
/// nonblocking service loop calls this after every read readiness
/// event.
///
/// # Errors
///
/// [`WireError::Corrupt`] as for [`read_frame`] — a corrupt frame
/// poisons the connection (there is no resynchronization point in the
/// stream), so callers should drop it.
pub fn try_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf[0] != FRAME_MAGIC {
        return Err(WireError::Corrupt(format!(
            "bad frame magic 0x{:02x} (expected 0x{FRAME_MAGIC:02x})",
            buf[0]
        )));
    }
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Corrupt(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let total = FRAME_HEADER_LEN + len;
    if buf.len() < total {
        return Ok(None);
    }
    let frame = decode_payload(&buf[FRAME_HEADER_LEN..total])?;
    Ok(Some((frame, total)))
}

/// One decoded wire message: a single-session frame, or a
/// multi-session frame's groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// A [`FRAME_MAGIC`] frame.
    Single(Frame),
    /// A [`MULTI_MAGIC`] frame, one entry per session group (in wire
    /// order).
    Multi(Vec<Frame>),
}

/// Like [`try_frame`], but accepts both frame kinds: dispatches on the
/// first byte ([`FRAME_MAGIC`] or [`MULTI_MAGIC`]) and returns the
/// decoded message plus the number of bytes it consumed.
///
/// # Errors
///
/// [`WireError::Corrupt`] as for [`try_frame`].
pub fn try_message(buf: &[u8]) -> Result<Option<(WireMessage, usize)>, WireError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf[0] != FRAME_MAGIC && buf[0] != MULTI_MAGIC {
        return Err(WireError::Corrupt(format!(
            "bad frame magic 0x{:02x} (expected 0x{FRAME_MAGIC:02x} or 0x{MULTI_MAGIC:02x})",
            buf[0]
        )));
    }
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Corrupt(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let total = FRAME_HEADER_LEN + len;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[FRAME_HEADER_LEN..total];
    let message = if buf[0] == FRAME_MAGIC {
        WireMessage::Single(decode_payload(payload)?)
    } else {
        WireMessage::Multi(decode_multi_payload(payload)?)
    };
    Ok(Some((message, total)))
}

/// First byte of an inter-node **cluster** message: the control plane
/// `tcr serve --cluster` nodes speak to each other — client-frame
/// forwarding, checkpoint-delta shipping, heartbeats and matrix-clock
/// stable vectors. High bit set like the other magics, so a cluster
/// node serves clients and peers on one port by sniffing the first
/// byte of each message.
pub const CLUSTER_MAGIC: u8 = 0xF8;

/// One inter-node message of the cluster protocol. The wire layer
/// treats checkpoint bytes as opaque — the `TCCP` framing lives in the
/// stream layer; this codec only moves sealed byte ranges between
/// nodes.
///
/// Replication-stream variants ([`ClusterMsg::ReplFrame`],
/// [`ClusterMsg::ReplText`], [`ClusterMsg::Delta`],
/// [`ClusterMsg::Retire`]) carry a per-origin-node monotonically
/// increasing `seq` — the coordinate the matrix clock's stable prefix
/// is computed over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterMsg {
    /// Link handshake: the first message on an inter-node connection,
    /// naming the sending node and proving it belongs to the cluster.
    Hello {
        /// The sender's node index in the static peer set.
        node: u32,
        /// The cluster's shared-secret auth token (empty when the
        /// cluster runs without one). Receivers verify it in constant
        /// time before trusting any further peer traffic on the link,
        /// so an unauthenticated client on the shared port cannot
        /// reach the peer plane.
        auth: Vec<u8>,
    },
    /// A client text line forwarded from a gateway node to the
    /// session's owner. `token` correlates the owner's [`ClusterMsg::Reply`]
    /// back to the originating client connection.
    ForwardLine {
        /// The gateway node the client is connected to.
        origin: u32,
        /// Gateway-chosen correlation token for the reply.
        token: u64,
        /// The session the line addresses (pre-allocated by the
        /// gateway for `open` lines).
        session: u64,
        /// The raw client line, verbatim.
        text: String,
    },
    /// A client event frame forwarded from a gateway to the owner.
    ForwardFrame {
        /// The gateway node the client is connected to.
        origin: u32,
        /// Gateway-chosen correlation token for an error reply (the
        /// success path is silent, like direct frame ingest).
        token: u64,
        /// The session the events belong to.
        session: u64,
        /// The batched events, in client order.
        events: Vec<Event>,
    },
    /// The owner's reply to a forwarded line or frame, relayed by the
    /// gateway to the client connection `token` maps to.
    Reply {
        /// The correlation token from the forward.
        token: u64,
        /// The reply text (may span multiple protocol lines).
        text: String,
    },
    /// One ingested event frame, replicated owner → successor so the
    /// successor can replay frames past the last shipped checkpoint on
    /// failover.
    ReplFrame {
        /// The owning node (the replication stream's origin).
        origin: u32,
        /// Per-origin replication sequence number (contiguous).
        seq: u64,
        /// The session the events belong to.
        session: u64,
        /// The session's payload counter after ingesting this frame
        /// (1-based) — replay takes payloads past a checkpoint's count.
        frame_seq: u64,
        /// The replicated events.
        events: Vec<Event>,
    },
    /// One ingested text event line, replicated verbatim (text lines
    /// may intern thread/var/lock names, so the raw line is the only
    /// faithful replica).
    ReplText {
        /// The owning node.
        origin: u32,
        /// Per-origin replication sequence number.
        seq: u64,
        /// The session the line belongs to.
        session: u64,
        /// The session's payload counter after ingesting this line.
        frame_seq: u64,
        /// The raw event line, verbatim.
        text: String,
    },
    /// A checkpoint delta: an opaque copy/literal op stream (the
    /// cluster crate's `ByteDelta` wire form) that patches the full
    /// checkpoint previously shipped at payload counter `base_seq`
    /// into the one at `frame_seq` (`base_seq == 0` means the empty
    /// base — the delta degenerates to a full snapshot).
    Delta {
        /// The owning node.
        origin: u32,
        /// Per-origin replication sequence number.
        seq: u64,
        /// The session the checkpoint captures.
        session: u64,
        /// The session's payload counter at the checkpoint boundary.
        frame_seq: u64,
        /// Payload counter of the base checkpoint this delta patches.
        base_seq: u64,
        /// The serialized copy/literal op stream.
        bytes: Vec<u8>,
    },
    /// Liveness beacon, broadcast every tick; missing several in a row
    /// marks the node dead and triggers failover.
    Heartbeat {
        /// The sending node.
        node: u32,
    },
    /// One row of the sender's matrix clock: `seen[j]` is the highest
    /// contiguous replication seq the sender holds from node `j`. The
    /// column-wise minimum across live rows is the cluster-wide stable
    /// prefix.
    StableVector {
        /// The sending node (the row index).
        node: u32,
        /// The row, indexed by node.
        seen: Vec<u64>,
    },
    /// The owner closed a session: the successor drops its replica
    /// state. Part of the replication stream (carries a seq).
    Retire {
        /// The owning node.
        origin: u32,
        /// Per-origin replication sequence number.
        seq: u64,
        /// The retired session.
        session: u64,
    },
    /// Ownership override broadcast (the `handoff` admin command):
    /// `session` is now owned by `node`, regardless of ring placement.
    Assign {
        /// The reassigned session.
        session: u64,
        /// The new owning node.
        node: u32,
    },
    /// Fencing notice: the receiver has been declared dead and
    /// evicted from the sender's ring, and its sessions have failed
    /// over. A node that learns of its own eviction must stop serving
    /// — eviction is permanent, and continuing would split the brain.
    Evicted {
        /// The evicted node (the intended receiver).
        node: u32,
    },
}

/// Variant tags of the cluster payload (first payload byte).
mod cluster_tag {
    pub const HELLO: u8 = 0;
    pub const FORWARD_LINE: u8 = 1;
    pub const FORWARD_FRAME: u8 = 2;
    pub const REPLY: u8 = 3;
    pub const REPL_FRAME: u8 = 4;
    pub const REPL_TEXT: u8 = 5;
    pub const DELTA: u8 = 6;
    pub const HEARTBEAT: u8 = 7;
    pub const STABLE_VECTOR: u8 = 8;
    pub const RETIRE: u8 = 9;
    pub const ASSIGN: u8 = 10;
    pub const EVICTED: u8 = 11;
}

/// Appends a length-prefixed byte string.
fn encode_bytes(payload: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(payload, bytes.len() as u64).expect("writing to a Vec cannot fail");
    payload.extend_from_slice(bytes);
}

/// Decodes a length-prefixed byte string.
fn decode_bytes(r: &mut &[u8]) -> Result<Vec<u8>, WireError> {
    let len = read_varint(r).map_err(bin_err)?;
    let len = usize::try_from(len)
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| WireError::Corrupt(format!("implausible byte-string length {len}")))?;
    if r.len() < len {
        return Err(WireError::Corrupt(
            "cluster payload truncated mid byte-string".into(),
        ));
    }
    let (head, tail) = r.split_at(len);
    *r = tail;
    Ok(head.to_vec())
}

/// Decodes a length-prefixed UTF-8 string.
fn decode_string(r: &mut &[u8]) -> Result<String, WireError> {
    String::from_utf8(decode_bytes(r)?)
        .map_err(|_| WireError::Corrupt("cluster text is not UTF-8".into()))
}

/// Encodes one cluster message as a sealed `0xF8` frame.
///
/// # Errors
///
/// [`WireError::Oversize`] if the payload would exceed
/// [`MAX_FRAME_LEN`] — a checkpoint delta past the cap must be split
/// by the caller (ship a full snapshot in chunks) rather than crash
/// the link.
pub fn encode_cluster(msg: &ClusterMsg) -> Result<Vec<u8>, WireError> {
    let mut p = Vec::with_capacity(32);
    let put = |p: &mut Vec<u8>, v: u64| {
        write_varint(p, v).expect("writing to a Vec cannot fail");
    };
    match msg {
        ClusterMsg::Hello { node, auth } => {
            p.push(cluster_tag::HELLO);
            put(&mut p, u64::from(*node));
            encode_bytes(&mut p, auth);
        }
        ClusterMsg::ForwardLine {
            origin,
            token,
            session,
            text,
        } => {
            p.push(cluster_tag::FORWARD_LINE);
            put(&mut p, u64::from(*origin));
            put(&mut p, *token);
            put(&mut p, *session);
            encode_bytes(&mut p, text.as_bytes());
        }
        ClusterMsg::ForwardFrame {
            origin,
            token,
            session,
            events,
        } => {
            p.push(cluster_tag::FORWARD_FRAME);
            put(&mut p, u64::from(*origin));
            put(&mut p, *token);
            put(&mut p, *session);
            encode_batch(&mut p, events);
        }
        ClusterMsg::Reply { token, text } => {
            p.push(cluster_tag::REPLY);
            put(&mut p, *token);
            encode_bytes(&mut p, text.as_bytes());
        }
        ClusterMsg::ReplFrame {
            origin,
            seq,
            session,
            frame_seq,
            events,
        } => {
            p.push(cluster_tag::REPL_FRAME);
            put(&mut p, u64::from(*origin));
            put(&mut p, *seq);
            put(&mut p, *session);
            put(&mut p, *frame_seq);
            encode_batch(&mut p, events);
        }
        ClusterMsg::ReplText {
            origin,
            seq,
            session,
            frame_seq,
            text,
        } => {
            p.push(cluster_tag::REPL_TEXT);
            put(&mut p, u64::from(*origin));
            put(&mut p, *seq);
            put(&mut p, *session);
            put(&mut p, *frame_seq);
            encode_bytes(&mut p, text.as_bytes());
        }
        ClusterMsg::Delta {
            origin,
            seq,
            session,
            frame_seq,
            base_seq,
            bytes,
        } => {
            p.push(cluster_tag::DELTA);
            put(&mut p, u64::from(*origin));
            put(&mut p, *seq);
            put(&mut p, *session);
            put(&mut p, *frame_seq);
            put(&mut p, *base_seq);
            encode_bytes(&mut p, bytes);
        }
        ClusterMsg::Heartbeat { node } => {
            p.push(cluster_tag::HEARTBEAT);
            put(&mut p, u64::from(*node));
        }
        ClusterMsg::StableVector { node, seen } => {
            p.push(cluster_tag::STABLE_VECTOR);
            put(&mut p, u64::from(*node));
            put(&mut p, seen.len() as u64);
            for s in seen {
                put(&mut p, *s);
            }
        }
        ClusterMsg::Retire {
            origin,
            seq,
            session,
        } => {
            p.push(cluster_tag::RETIRE);
            put(&mut p, u64::from(*origin));
            put(&mut p, *seq);
            put(&mut p, *session);
        }
        ClusterMsg::Assign { session, node } => {
            p.push(cluster_tag::ASSIGN);
            put(&mut p, *session);
            put(&mut p, u64::from(*node));
        }
        ClusterMsg::Evicted { node } => {
            p.push(cluster_tag::EVICTED);
            put(&mut p, u64::from(*node));
        }
    }
    seal(CLUSTER_MAGIC, p)
}

/// Decodes a `u32`-ranged varint (node ids).
fn decode_u32(r: &mut &[u8], what: &str) -> Result<u32, WireError> {
    let v = read_varint(r).map_err(bin_err)?;
    u32::try_from(v).map_err(|_| WireError::Corrupt(format!("{what} overflows u32")))
}

/// Decodes a cluster payload (the bytes after the header).
fn decode_cluster_payload(payload: &[u8]) -> Result<ClusterMsg, WireError> {
    let mut r = payload;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)
        .map_err(|_| WireError::Corrupt("empty cluster payload".into()))?;
    let var = |r: &mut &[u8]| read_varint(r).map_err(bin_err);
    let msg = match tag[0] {
        cluster_tag::HELLO => ClusterMsg::Hello {
            node: decode_u32(&mut r, "node id")?,
            auth: decode_bytes(&mut r)?,
        },
        cluster_tag::FORWARD_LINE => ClusterMsg::ForwardLine {
            origin: decode_u32(&mut r, "node id")?,
            token: var(&mut r)?,
            session: var(&mut r)?,
            text: decode_string(&mut r)?,
        },
        cluster_tag::FORWARD_FRAME => ClusterMsg::ForwardFrame {
            origin: decode_u32(&mut r, "node id")?,
            token: var(&mut r)?,
            session: var(&mut r)?,
            events: decode_events(&mut r)?,
        },
        cluster_tag::REPLY => ClusterMsg::Reply {
            token: var(&mut r)?,
            text: decode_string(&mut r)?,
        },
        cluster_tag::REPL_FRAME => ClusterMsg::ReplFrame {
            origin: decode_u32(&mut r, "node id")?,
            seq: var(&mut r)?,
            session: var(&mut r)?,
            frame_seq: var(&mut r)?,
            events: decode_events(&mut r)?,
        },
        cluster_tag::REPL_TEXT => ClusterMsg::ReplText {
            origin: decode_u32(&mut r, "node id")?,
            seq: var(&mut r)?,
            session: var(&mut r)?,
            frame_seq: var(&mut r)?,
            text: decode_string(&mut r)?,
        },
        cluster_tag::DELTA => ClusterMsg::Delta {
            origin: decode_u32(&mut r, "node id")?,
            seq: var(&mut r)?,
            session: var(&mut r)?,
            frame_seq: var(&mut r)?,
            base_seq: var(&mut r)?,
            bytes: decode_bytes(&mut r)?,
        },
        cluster_tag::HEARTBEAT => ClusterMsg::Heartbeat {
            node: decode_u32(&mut r, "node id")?,
        },
        cluster_tag::STABLE_VECTOR => {
            let node = decode_u32(&mut r, "node id")?;
            let len = var(&mut r)?;
            let len = usize::try_from(len)
                .ok()
                .filter(|&l| l <= 1 << 16)
                .ok_or_else(|| {
                    WireError::Corrupt(format!("implausible stable-vector length {len}"))
                })?;
            let mut seen = Vec::with_capacity(len);
            for _ in 0..len {
                seen.push(var(&mut r)?);
            }
            ClusterMsg::StableVector { node, seen }
        }
        cluster_tag::RETIRE => ClusterMsg::Retire {
            origin: decode_u32(&mut r, "node id")?,
            seq: var(&mut r)?,
            session: var(&mut r)?,
        },
        cluster_tag::ASSIGN => ClusterMsg::Assign {
            session: var(&mut r)?,
            node: decode_u32(&mut r, "node id")?,
        },
        cluster_tag::EVICTED => ClusterMsg::Evicted {
            node: decode_u32(&mut r, "node id")?,
        },
        other => {
            return Err(WireError::Corrupt(format!(
                "unknown cluster message tag {other}"
            )))
        }
    };
    if !r.is_empty() {
        return Err(WireError::Corrupt(format!(
            "{} trailing bytes after cluster message",
            r.len()
        )));
    }
    Ok(msg)
}

/// Like [`try_frame`], but for [`CLUSTER_MAGIC`] messages: returns
/// `Ok(None)` while the buffer holds only a partial message, or the
/// decoded message plus the number of bytes it consumed.
///
/// # Errors
///
/// [`WireError::Corrupt`] for bad magic, implausible lengths or
/// malformed payloads — a corrupt message poisons the inter-node link.
pub fn try_cluster(buf: &[u8]) -> Result<Option<(ClusterMsg, usize)>, WireError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf[0] != CLUSTER_MAGIC {
        return Err(WireError::Corrupt(format!(
            "bad cluster magic 0x{:02x} (expected 0x{CLUSTER_MAGIC:02x})",
            buf[0]
        )));
    }
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Corrupt(format!(
            "cluster message length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let total = FRAME_HEADER_LEN + len;
    if buf.len() < total {
        return Ok(None);
    }
    let msg = decode_cluster_payload(&buf[FRAME_HEADER_LEN..total])?;
    Ok(Some((msg, total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LockId, Op, VarId};
    use crate::TraceBuilder;

    fn sample_events() -> Vec<Event> {
        let mut b = TraceBuilder::new();
        b.fork(0, 1);
        b.acquire(0, "m").write(0, "x").release(0, "m");
        b.acquire(1, "m").read(1, "x").release(1, "m");
        b.join(0, 1);
        b.finish().events().to_vec()
    }

    #[test]
    fn frame_round_trips() {
        let events = sample_events();
        let bytes = encode_frame(42, &events).unwrap();
        let frame = read_frame(bytes.as_slice()).unwrap();
        assert_eq!(frame.session, 42);
        assert_eq!(frame.events, events);
    }

    #[test]
    fn empty_frame_round_trips() {
        let bytes = encode_frame(7, &[]).unwrap();
        assert_eq!(bytes.len(), FRAME_HEADER_LEN + 2);
        let frame = read_frame(bytes.as_slice()).unwrap();
        assert_eq!(frame.session, 7);
        assert!(frame.events.is_empty());
    }

    #[test]
    fn magic_byte_cannot_start_a_text_line() {
        // The multiplexing invariant: the text protocol is ASCII.
        const { assert!(FRAME_MAGIC >= 0x80) };
        assert!(!FRAME_MAGIC.is_ascii());
    }

    #[test]
    fn try_frame_is_incremental() {
        let events = sample_events();
        let bytes = encode_frame(3, &events).unwrap();
        // Every proper prefix: not yet a frame.
        for cut in 0..bytes.len() {
            assert!(
                try_frame(&bytes[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        // The full buffer (plus trailing bytes of the next frame)
        // yields the frame and its exact length.
        let mut buf = bytes.clone();
        buf.push(FRAME_MAGIC);
        let (frame, used) = try_frame(&buf).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(frame.events, events);
        assert_eq!(frame.session, 3);
    }

    #[test]
    fn rejects_bad_magic() {
        let e = read_frame(&b"open hb tc\n"[..]).unwrap_err();
        assert!(matches!(e, WireError::Corrupt(_)));
        assert!(e.to_string().contains("magic"));
        let e = try_frame(b"o").unwrap_err();
        assert!(e.to_string().contains("magic"));
    }

    #[test]
    fn rejects_oversized_length() {
        let mut bytes = vec![FRAME_MAGIC];
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(bytes.as_slice())
            .unwrap_err()
            .to_string()
            .contains("cap"));
        assert!(try_frame(&bytes).unwrap_err().to_string().contains("cap"));
    }

    #[test]
    fn rejects_unknown_opcode() {
        let mut bytes = encode_frame(1, &sample_events()).unwrap();
        // First event's opcode byte sits after the header + two
        // single-byte varints (session, count).
        bytes[FRAME_HEADER_LEN + 2] = 0x3f;
        let e = read_frame(bytes.as_slice()).unwrap_err();
        assert!(e.to_string().contains("opcode"));
    }

    #[test]
    fn rejects_truncated_payload() {
        // A count promising more events than the payload holds: the
        // frame is fully buffered yet malformed — Corrupt, not Io.
        let payload: &[u8] = &[9, 5, 0, 0, 0]; // session 9, count 5, one event
        let mut bytes = vec![FRAME_MAGIC];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(payload);
        let e = read_frame(bytes.as_slice()).unwrap_err();
        assert!(matches!(e, WireError::Corrupt(_)), "got {e}");
        assert!(e.to_string().contains("truncated"));
        let e = try_frame(&bytes).unwrap_err();
        assert!(matches!(e, WireError::Corrupt(_)), "got {e}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = encode_frame(1, &sample_events()).unwrap();
        // Grow the declared length and append junk: decode must notice.
        let junk = [0u8, 0, 0];
        let new_len = (bytes.len() - FRAME_HEADER_LEN + junk.len()) as u32;
        bytes[1..5].copy_from_slice(&new_len.to_le_bytes());
        bytes.extend_from_slice(&junk);
        let e = read_frame(bytes.as_slice()).unwrap_err();
        assert!(e.to_string().contains("trailing"));
    }

    #[test]
    fn truncated_reader_is_an_io_error() {
        let bytes = encode_frame(5, &sample_events()).unwrap();
        let e = read_frame(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(e, WireError::Io(_)));
    }

    #[test]
    fn events_encode_exactly_like_the_binary_trace_format() {
        // A frame's records are the binary format's records: the same
        // opcodes and varints, so logged traces shred into frames
        // without re-encoding.
        let events = vec![
            Event::new(ThreadId::new(1), Op::Read(VarId::new(300))),
            Event::new(ThreadId::new(200), Op::Acquire(LockId::new(2))),
        ];
        let frame_bytes = encode_frame(0, &events).unwrap();
        let mut trace = TraceBuilder::with_capacity(2);
        for e in &events {
            trace.push(*e);
        }
        let bin = crate::binary_format::to_binary(&trace.finish());
        // Skip frame header + session + count on one side, magic +
        // version + count on the other: the record bytes must match.
        assert_eq!(frame_bytes[FRAME_HEADER_LEN + 2..], bin[6..]);
    }

    #[test]
    fn large_session_ids_and_batches_round_trip() {
        let events: Vec<Event> = (0..1000)
            .map(|i| Event::new(ThreadId::new(i % 7), Op::Write(VarId::new(i))))
            .collect();
        let bytes = encode_frame(u64::MAX, &events).unwrap();
        let frame = read_frame(bytes.as_slice()).unwrap();
        assert_eq!(frame.session, u64::MAX);
        assert_eq!(frame.events.len(), 1000);
        assert_eq!(frame.events, events);
    }

    /// Worst-case-width events: every varint in the record is 5 bytes.
    fn wide_events(n: usize) -> Vec<Event> {
        (0..n)
            .map(|_| {
                Event::new(
                    ThreadId::new(u32::MAX - 1),
                    Op::Write(VarId::new(u32::MAX - 1)),
                )
            })
            .collect()
    }

    #[test]
    fn oversize_batch_is_an_error_not_a_panic() {
        // Enough records that their bytes alone exceed the cap, so the
        // overflow cannot hinge on session/count varint widths (at
        // MAX_SPLIT_EVENTS + 1, a 1-byte session id leaves the payload
        // one byte *under* the cap — the split headroom is 15 bytes).
        let events = wide_events(MAX_FRAME_LEN / MAX_EVENT_BYTES + 1);
        let e = encode_frame(9, &events).expect_err("past-cap batch must not encode");
        assert!(matches!(e, WireError::Oversize { .. }), "got {e}");
        assert!(e.to_string().contains("exceeds"));
    }

    #[test]
    fn encode_frames_splits_oversize_batches_and_round_trips() {
        let events = wide_events(MAX_SPLIT_EVENTS + 7);
        let frames = encode_frames(9, &events);
        assert_eq!(frames.len(), 2);
        let mut decoded = Vec::new();
        for bytes in &frames {
            let frame = read_frame(bytes.as_slice()).unwrap();
            assert_eq!(frame.session, 9);
            decoded.extend(frame.events);
        }
        assert_eq!(decoded, events);
        // Small batches stay a single frame.
        assert_eq!(encode_frames(9, &sample_events()).len(), 1);
        assert_eq!(encode_frames(9, &[]).len(), 1);
    }

    #[test]
    fn multi_frame_round_trips_through_try_message() {
        let a = sample_events();
        let b: Vec<Event> = (0..5)
            .map(|i| Event::new(ThreadId::new(i), Op::Read(VarId::new(i))))
            .collect();
        let bytes = encode_multi_frame(&[(4, a.as_slice()), (17, b.as_slice()), (4, &[])]).unwrap();
        assert_eq!(bytes[0], MULTI_MAGIC);
        // Incremental: every proper prefix is incomplete.
        for cut in 0..bytes.len() {
            assert!(try_message(&bytes[..cut]).unwrap().is_none());
        }
        let (msg, used) = try_message(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        match msg {
            WireMessage::Multi(frames) => {
                assert_eq!(frames.len(), 3);
                assert_eq!(
                    frames[0],
                    Frame {
                        session: 4,
                        events: a
                    }
                );
                assert_eq!(
                    frames[1],
                    Frame {
                        session: 17,
                        events: b
                    }
                );
                assert!(frames[2].events.is_empty());
            }
            other => panic!("expected a multi message, got {other:?}"),
        }
    }

    fn sample_cluster_msgs() -> Vec<ClusterMsg> {
        vec![
            ClusterMsg::Hello {
                node: 2,
                auth: b"sekret".to_vec(),
            },
            ClusterMsg::ForwardLine {
                origin: 0,
                token: 99,
                session: 12,
                text: "open hb tc".into(),
            },
            ClusterMsg::ForwardFrame {
                origin: 1,
                token: 100,
                session: 12,
                events: sample_events(),
            },
            ClusterMsg::Reply {
                token: 99,
                text: "ok session 12 order HB clock tree".into(),
            },
            ClusterMsg::ReplFrame {
                origin: 1,
                seq: 41,
                session: 12,
                frame_seq: 7,
                events: sample_events(),
            },
            ClusterMsg::ReplText {
                origin: 1,
                seq: 42,
                session: 12,
                frame_seq: 8,
                text: "acq t0 m".into(),
            },
            ClusterMsg::Delta {
                origin: 1,
                seq: 43,
                session: 12,
                frame_seq: 8,
                base_seq: 30,
                bytes: vec![1, 2, 3, 0xff],
            },
            ClusterMsg::Heartbeat { node: 0 },
            ClusterMsg::StableVector {
                node: 2,
                seen: vec![41, 0, 43],
            },
            ClusterMsg::Retire {
                origin: 1,
                seq: 44,
                session: 12,
            },
            ClusterMsg::Assign {
                session: 12,
                node: 2,
            },
            ClusterMsg::Evicted { node: 1 },
        ]
    }

    #[test]
    fn cluster_messages_round_trip_incrementally() {
        for msg in sample_cluster_msgs() {
            let bytes = encode_cluster(&msg).unwrap();
            assert_eq!(bytes[0], CLUSTER_MAGIC);
            // Every proper prefix: not yet a message.
            for cut in 0..bytes.len() {
                assert!(
                    try_cluster(&bytes[..cut]).unwrap().is_none(),
                    "prefix of {cut} bytes must be incomplete for {msg:?}"
                );
            }
            // Full buffer plus the start of the next message.
            let mut buf = bytes.clone();
            buf.push(CLUSTER_MAGIC);
            let (back, used) = try_cluster(&buf).unwrap().unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn cluster_magic_is_distinct_and_non_ascii() {
        const { assert!(CLUSTER_MAGIC >= 0x80) };
        const { assert!(CLUSTER_MAGIC != FRAME_MAGIC && CLUSTER_MAGIC != MULTI_MAGIC) };
        // The ordinary frame dispatcher refuses cluster messages, so a
        // non-cluster server counts them as corrupt rather than
        // misreading them.
        let bytes = encode_cluster(&ClusterMsg::Heartbeat { node: 1 }).unwrap();
        assert!(try_message(&bytes)
            .unwrap_err()
            .to_string()
            .contains("magic"));
        assert!(try_cluster(b"open")
            .unwrap_err()
            .to_string()
            .contains("magic"));
    }

    #[test]
    fn cluster_decode_rejects_malformed_payloads() {
        // Unknown tag.
        let sealed = seal(CLUSTER_MAGIC, vec![0x7f]).unwrap();
        assert!(try_cluster(&sealed)
            .unwrap_err()
            .to_string()
            .contains("unknown cluster message tag"));
        // Empty payload.
        let sealed = seal(CLUSTER_MAGIC, Vec::new()).unwrap();
        assert!(try_cluster(&sealed)
            .unwrap_err()
            .to_string()
            .contains("empty"));
        // Trailing garbage after a valid message.
        let mut payload = vec![cluster_tag::HEARTBEAT, 3];
        payload.push(0);
        let sealed = seal(CLUSTER_MAGIC, payload).unwrap();
        assert!(try_cluster(&sealed)
            .unwrap_err()
            .to_string()
            .contains("trailing"));
        // Byte-string length past the buffered payload.
        let payload = vec![cluster_tag::REPLY, 1, 200];
        let sealed = seal(CLUSTER_MAGIC, payload).unwrap();
        assert!(try_cluster(&sealed)
            .unwrap_err()
            .to_string()
            .contains("truncated"));
        // Non-UTF-8 text.
        let mut payload = vec![cluster_tag::REPLY, 1, 2];
        payload.extend_from_slice(&[0xff, 0xfe]);
        let sealed = seal(CLUSTER_MAGIC, payload).unwrap();
        assert!(try_cluster(&sealed)
            .unwrap_err()
            .to_string()
            .contains("UTF-8"));
    }

    #[test]
    fn oversize_cluster_delta_is_an_error_not_a_panic() {
        let msg = ClusterMsg::Delta {
            origin: 0,
            seq: 1,
            session: 1,
            frame_seq: 1,
            base_seq: 0,
            bytes: vec![0u8; MAX_FRAME_LEN + 1],
        };
        let e = encode_cluster(&msg).expect_err("past-cap delta must not encode");
        assert!(matches!(e, WireError::Oversize { .. }), "got {e}");
    }

    #[test]
    fn try_message_dispatches_on_the_magic_byte() {
        let single = encode_frame(3, &sample_events()).unwrap();
        let (msg, used) = try_message(&single).unwrap().unwrap();
        assert_eq!(used, single.len());
        assert!(matches!(msg, WireMessage::Single(f) if f.session == 3));
        // `try_frame` keeps its stricter contract: single frames only.
        let multi = encode_multi_frame(&[(1, &sample_events()[..])]).unwrap();
        assert!(try_frame(&multi).unwrap_err().to_string().contains("magic"));
        assert!(try_message(b"x").unwrap_err().to_string().contains("magic"));
    }
}
