//! Structured workload families beyond the paper's Figure 10.
//!
//! The four Figure-10 scenarios ([`scenarios`](crate::gen::scenarios))
//! are pure lock-synchronization patterns. The families here add the
//! shapes real concurrent programs actually exhibit — hierarchical task
//! parallelism, bulk-synchronous rounds, streaming pipelines, read-heavy
//! sharing and phase-changing communication — so the conformance corpus
//! (and the benchmarks) can drive every engine through topologies the
//! original four cannot express.
//!
//! All generators are deterministic in their seed, realize exactly the
//! requested thread count, keep their event count within a small
//! additive overshoot of the budget, and produce *well-formed* traces
//! (every access to a shared buffer happens inside the critical section
//! of the lock that guards it, so the traces are race-free by
//! construction — racy inputs come from
//! [`WorkloadSpec`](crate::gen::WorkloadSpec)).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{Trace, TraceBuilder};

fn sync(b: &mut TraceBuilder, t: u32, l: u32) {
    b.acquire_id(t, l);
    b.release_id(t, l);
}

/// Fork/join task tree: threads form a complete binary tree; every
/// thread is forked by its parent, publishes results to it through a
/// dedicated per-edge lock, and is joined by it at the end.
///
/// The communication graph is exactly a tree, so the tree clock can
/// mirror it: this is the structured-parallelism regime (Cilk/TBB-style
/// task graphs) where hierarchical clocks do minimal work.
///
/// # Example
///
/// ```rust
/// use tc_trace::gen::families::fork_join_tree;
///
/// let t = fork_join_tree(8, 500, 1);
/// assert!(t.validate().is_ok());
/// assert_eq!(t.thread_count(), 8);
/// ```
pub fn fork_join_tree(threads: u32, events: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TraceBuilder::with_capacity(events + 6 * threads as usize);
    let children = |t: u32| [2 * t + 1, 2 * t + 2].into_iter().filter(|&c| c < threads);

    // Fork phase in BFS order: a parent forks a child before the child's
    // first event, so the lifecycle checks hold by construction.
    for t in 0..threads {
        for c in children(t) {
            b.fork(t, c);
        }
    }
    // Work phase: a random thread mostly touches its private scratch
    // variable; sometimes it publishes its partial result under the lock
    // it shares with its parent (lock id = thread id - 1, one per tree
    // edge), or collects a child's result under the child's edge lock.
    // Variable id t is thread t's result slot, threads + t its scratch.
    let joins = threads.saturating_sub(1) as usize;
    while b.len() + joins < events {
        let t = rng.random_range(0..threads);
        match rng.random_range(0..10u32) {
            0 if t > 0 => {
                // Publish to the parent edge.
                b.acquire_id(t, t - 1);
                b.write_id(t, t);
                b.release_id(t, t - 1);
            }
            1 => {
                // Collect from a child edge, if any.
                if let Some(c) = children(t).next() {
                    b.acquire_id(t, c - 1);
                    b.read_id(t, c);
                    b.release_id(t, c - 1);
                }
            }
            r => {
                let scratch = threads + t;
                if r < 5 {
                    b.write_id(t, scratch);
                } else {
                    b.read_id(t, scratch);
                }
            }
        }
    }
    // Join phase in reverse BFS order: children are joined only after
    // they performed their own joins.
    for t in (0..threads).rev() {
        for c in children(t) {
            b.join(t, c);
        }
    }
    b.finish()
}

/// Barrier-phased SPMD rounds: every thread does a burst of mostly
/// private work, then all threads pass a barrier together; the phase
/// leader broadcasts a value that the others read in the next phase.
///
/// The barrier is built from lock semantics alone: two sweeps over a
/// single barrier lock order every pre-barrier release before every
/// post-barrier acquire, which is exactly an all-to-all synchronization
/// round (the OpenMP loop structure dominating the paper's Table 1
/// suite).
///
/// # Example
///
/// ```rust
/// use tc_trace::gen::families::barrier_phases;
///
/// let t = barrier_phases(6, 600, 2);
/// assert!(t.validate().is_ok());
/// assert_eq!(t.thread_count(), 6);
/// ```
pub fn barrier_phases(threads: u32, events: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TraceBuilder::with_capacity(events + 8 * threads as usize);
    // Variable 0 is the broadcast slot; 1..=threads are private slices.
    let barrier = |b: &mut TraceBuilder| {
        // Sweep 1 (arrive): every thread's release precedes...
        for t in 0..threads {
            sync(b, t, 0);
        }
        // ...sweep 2 (depart): every thread's second acquire, which
        // therefore observes all arrivals.
        for t in 0..threads {
            sync(b, t, 0);
        }
    };
    let mut phase = 0u32;
    barrier(&mut b); // realize all threads up front
    while b.len() < events {
        let leader = phase % threads;
        // Work burst: private accesses, plus reads of the previous
        // phase's broadcast (race-free: ordered through the barrier).
        for t in 0..threads {
            for _ in 0..rng.random_range(1..4u32) {
                if rng.random_range(0..4u32) == 0 {
                    b.read_id(t, 0);
                } else if rng.random_range(0..2u32) == 0 {
                    b.write_id(t, 1 + t);
                } else {
                    b.read_id(t, 1 + t);
                }
            }
        }
        barrier(&mut b);
        // The leader publishes after the barrier, before the next
        // phase's reads — again ordered by the following barrier.
        b.write_id(leader, 0);
        barrier(&mut b);
        phase += 1;
    }
    b.finish()
}

/// Producer–consumer pipeline: thread `i` consumes from channel `i-1`
/// and produces into channel `i`; each channel is a lock-guarded buffer
/// variable.
///
/// Information flows strictly left-to-right along a chain — deep,
/// narrow causality that stresses the monotone-copy path of both clock
/// representations.
///
/// # Example
///
/// ```rust
/// use tc_trace::gen::families::pipeline;
///
/// let t = pipeline(4, 400, 3);
/// assert!(t.validate().is_ok());
/// assert_eq!(t.thread_count(), 4);
/// ```
pub fn pipeline(threads: u32, events: usize, seed: u64) -> Trace {
    assert!(threads >= 2, "a pipeline needs at least two stages");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TraceBuilder::with_capacity(events + 6 * threads as usize);
    // Channel i (lock i, buffer variable i) connects stage i to i+1.
    let produce = |b: &mut TraceBuilder, t: u32| {
        b.acquire_id(t, t);
        b.write_id(t, t);
        b.release_id(t, t);
    };
    let consume = |b: &mut TraceBuilder, t: u32| {
        b.acquire_id(t, t - 1);
        b.read_id(t, t - 1);
        b.release_id(t, t - 1);
    };
    // Deterministic priming round realizes every stage in order.
    for t in 0..threads - 1 {
        produce(&mut b, t);
    }
    for t in 1..threads {
        consume(&mut b, t);
    }
    while b.len() < events {
        let t = rng.random_range(0..threads);
        if t > 0 {
            consume(&mut b, t);
        }
        if t < threads - 1 {
            produce(&mut b, t);
        }
    }
    b.finish()
}

/// Read-mostly reader/writer contention: a small pool of shared
/// records, each guarded by its own lock; ~95% of critical sections
/// only read.
///
/// This is the cache/configuration-table pattern: heavy lock traffic
/// with almost no new information per acquisition, the regime where the
/// paper's `VTWork` lower bound is tiny and representation overhead
/// dominates.
///
/// # Example
///
/// ```rust
/// use tc_trace::gen::families::read_mostly;
///
/// let t = read_mostly(5, 300, 4);
/// assert!(t.validate().is_ok());
/// assert_eq!(t.thread_count(), 5);
/// ```
pub fn read_mostly(threads: u32, events: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let records = (threads / 4).max(1);
    let mut b = TraceBuilder::with_capacity(events + 4 * threads as usize);
    let access = |b: &mut TraceBuilder, t: u32, rec: u32, write: bool| {
        b.acquire_id(t, rec);
        if write {
            b.write_id(t, rec);
        } else {
            b.read_id(t, rec);
        }
        b.release_id(t, rec);
    };
    for t in 0..threads {
        access(&mut b, t, t % records, t.is_multiple_of(records));
    }
    while b.len() < events {
        let t = rng.random_range(0..threads);
        let rec = rng.random_range(0..records);
        let write = rng.random_range(0..20u32) == 0; // ~5% writers
        access(&mut b, t, rec, write);
    }
    b.finish()
}

/// Bursty hot/cold channel traffic: thread pairs exchange messages over
/// per-pair channels, but traffic is heavily non-uniform — one "hot"
/// pair exchanges a long burst, then the hot spot moves.
///
/// Phase-changing communication is adversarial for any structure that
/// adapts to the current topology: the tree clock keeps re-rooting as
/// the hot pair migrates, while cold pairs inject stale, deep updates.
///
/// # Example
///
/// ```rust
/// use tc_trace::gen::families::bursty_channels;
///
/// let t = bursty_channels(6, 500, 5);
/// assert!(t.validate().is_ok());
/// assert_eq!(t.thread_count(), 6);
/// ```
pub fn bursty_channels(threads: u32, events: usize, seed: u64) -> Trace {
    assert!(threads >= 2, "channels need at least two endpoints");
    let mut rng = StdRng::seed_from_u64(seed);
    let k = u64::from(threads);
    // Triangular indexing of unordered pairs (i < j), as in `pairwise`;
    // the pair's channel is lock `pair` guarding buffer variable `pair`.
    let pair_of = |i: u32, j: u32| -> u32 {
        let (i, j) = (u64::from(i.min(j)), u64::from(i.max(j)));
        (i * (2 * k - i - 1) / 2 + (j - i - 1)) as u32
    };
    let exchange = |b: &mut TraceBuilder, rng: &mut StdRng, t: u32, u: u32| {
        let ch = pair_of(t, u);
        b.acquire_id(t, ch);
        b.write_id(t, ch);
        b.release_id(t, ch);
        if rng.random_range(0..2u32) == 0 {
            b.acquire_id(u, ch);
            b.read_id(u, ch);
            b.release_id(u, ch);
        }
    };
    let mut b = TraceBuilder::with_capacity(events + 8 * threads as usize);
    for t in 1..threads {
        exchange(&mut b, &mut rng, t - 1, t);
    }
    while b.len() < events {
        // Pick a hot pair and burn a burst on it.
        let t = rng.random_range(0..threads);
        let mut u = rng.random_range(0..threads - 1);
        if u >= t {
            u += 1;
        }
        let burst = rng.random_range(8..32u32);
        for _ in 0..burst {
            if b.len() >= events {
                break;
            }
            // ~20% of burst steps are cold background exchanges.
            if rng.random_range(0..5u32) == 0 {
                let a = rng.random_range(0..threads);
                let mut c = rng.random_range(0..threads - 1);
                if c >= a {
                    c += 1;
                }
                exchange(&mut b, &mut rng, a, c);
            } else {
                exchange(&mut b, &mut rng, t, u);
            }
        }
    }
    b.finish()
}

/// Spawn/join churn: a long-lived coordinator forks short-lived worker
/// waves and joins every worker before the next wave starts, so the
/// *live* thread count stays at the wave width while the *total* thread
/// count grows without bound.
///
/// `threads` is the total number of threads realized (coordinator
/// included); the wave width defaults to `min(threads - 1, 8)`. Workers
/// read the coordinator's broadcast, update a lock-guarded shared
/// accumulator, and churn a private scratch variable — race-free by
/// construction. This is the thread-pool / request-handler lifecycle
/// that motivates identity recycling: without slot reuse every clock
/// grows with the total spawn count even though almost every thread is
/// dead.
///
/// # Example
///
/// ```rust
/// use tc_trace::gen::families::spawn_join_churn;
///
/// let t = spawn_join_churn(10, 500, 1);
/// assert!(t.validate().is_ok());
/// assert_eq!(t.thread_count(), 10);
/// ```
pub fn spawn_join_churn(threads: u32, events: usize, seed: u64) -> Trace {
    let width = threads.saturating_sub(1).min(8);
    spawn_join_churn_sized(threads, width, events, seed)
}

/// [`spawn_join_churn`] with an explicit wave width: at most
/// `live_width` workers are alive at any moment, while
/// `total_threads - 1` workers are spawned over the whole trace.
///
/// The benchmark and memory-regression harnesses use this entry point
/// to hold the live set fixed (~64) while scaling the total spawn count
/// 10× — the regime where recycled slot widths stay flat and direct
/// widths grow.
pub fn spawn_join_churn_sized(
    total_threads: u32,
    live_width: u32,
    events: usize,
    seed: u64,
) -> Trace {
    assert!(
        total_threads >= 2,
        "spawn/join churn needs a coordinator and a worker"
    );
    let workers = total_threads - 1;
    let width = live_width.clamp(1, workers);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TraceBuilder::with_capacity(events + 12 * total_threads as usize);
    // Variable 0 is the coordinator's broadcast (written only while no
    // worker is live), variable 1 the lock-0-guarded shared
    // accumulator, and 2 + u worker u's private scratch.
    let waves = workers.div_ceil(width) as usize;
    let overhead = 1 + 2 * workers as usize + waves;
    let per = events.saturating_sub(overhead).max(1) / workers as usize;
    b.write_id(0, 0);
    let mut next = 1u32;
    while next <= workers {
        let wave: Vec<u32> = (next..=workers.min(next + width - 1)).collect();
        next += wave.len() as u32;
        for &u in &wave {
            b.fork(0, u);
        }
        for &u in &wave {
            b.read_id(u, 0);
            let mut emitted = 1usize;
            while emitted < per {
                if rng.random_range(0..6u32) == 0 {
                    b.acquire_id(u, 0);
                    b.write_id(u, 1);
                    b.release_id(u, 0);
                    emitted += 3;
                } else if rng.random_range(0..2u32) == 0 {
                    b.write_id(u, 2 + u);
                    emitted += 1;
                } else {
                    b.read_id(u, 2 + u);
                    emitted += 1;
                }
            }
        }
        for &u in &wave {
            b.join(0, u);
        }
        // The next broadcast: every worker of the wave is joined, so
        // the write is ordered after all their reads.
        b.write_id(0, 0);
    }
    // Top up any rounding shortfall with coordinator-local work.
    while b.len() < events {
        b.read_id(0, 0);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    type Gen = fn(u32, usize, u64) -> Trace;
    const FAMILIES: [(&str, Gen); 6] = [
        ("fork-join-tree", fork_join_tree),
        ("barrier-phases", barrier_phases),
        ("pipeline", pipeline),
        ("read-mostly", read_mostly),
        ("bursty-channels", bursty_channels),
        ("spawn-join-churn", spawn_join_churn),
    ];

    #[test]
    fn families_generate_valid_deterministic_traces() {
        for (name, generate) in FAMILIES {
            for threads in [2u32, 5, 16] {
                let t = generate(threads, 1_000, 7);
                t.validate()
                    .unwrap_or_else(|e| panic!("{name}/{threads}: invalid trace: {e}"));
                assert_eq!(t.thread_count(), threads as usize, "{name}: lost threads");
                assert!(t.len() >= 1_000, "{name}: undershot the budget");
                // Overshoot stays within one generation "round" — at
                // most one barrier phase (~11·threads events).
                assert!(
                    t.len() < 1_000 + 12 * threads as usize + 16,
                    "{name}/{threads}: overshot the budget: {}",
                    t.len()
                );
                assert_eq!(t.events(), generate(threads, 1_000, 7).events());
                assert_ne!(
                    t.events(),
                    generate(threads, 1_000, 8).events(),
                    "{name}: seed is ignored"
                );
            }
        }
    }

    #[test]
    fn fork_join_tree_forks_and_joins_every_non_root_thread() {
        let t = fork_join_tree(10, 800, 1);
        let forks = t.iter().filter(|e| matches!(e.op, Op::Fork(_))).count();
        let joins = t.iter().filter(|e| matches!(e.op, Op::Join(_))).count();
        assert_eq!(forks, 9);
        assert_eq!(joins, 9);
        // Forks lead, joins trail.
        assert!(matches!(t[0].op, Op::Fork(_)));
        assert!(matches!(t[t.len() - 1].op, Op::Join(_)));
    }

    #[test]
    fn barrier_phases_use_a_single_barrier_lock() {
        let t = barrier_phases(8, 2_000, 2);
        assert_eq!(t.lock_count(), 1);
        // Broadcast reads exist (variable 0 read by non-leaders).
        assert!(t
            .iter()
            .any(|e| matches!(e.op, Op::Read(x) if x.raw() == 0)));
    }

    #[test]
    fn pipeline_uses_one_channel_per_adjacent_stage_pair() {
        let t = pipeline(6, 2_000, 3);
        assert_eq!(t.lock_count(), 5);
        // Stage 0 never reads, the last stage never writes.
        for e in &t {
            match e.op {
                Op::Read(_) => assert_ne!(e.tid.raw(), 0),
                Op::Write(_) => assert_ne!(e.tid.raw(), 5),
                _ => {}
            }
        }
    }

    #[test]
    fn read_mostly_is_read_dominated() {
        let t = read_mostly(16, 20_000, 4);
        let s = t.stats();
        assert!(
            s.read_events > 10 * s.write_events,
            "reads ({}) should dwarf writes ({})",
            s.read_events,
            s.write_events
        );
    }

    #[test]
    fn bursty_channels_concentrate_traffic_in_time() {
        let t = bursty_channels(12, 30_000, 5);
        // The skew is *temporal*: within a short window, one hot
        // channel dominates, even though traffic evens out globally.
        let acquires: Vec<u32> = t
            .iter()
            .filter_map(|e| match e.op {
                Op::Acquire(l) => Some(l.raw()),
                _ => None,
            })
            .collect();
        let mut modal_share_sum = 0.0;
        let windows = acquires.chunks_exact(20);
        let n = windows.len();
        for w in windows {
            let mut counts = std::collections::HashMap::new();
            for &l in w {
                *counts.entry(l).or_insert(0usize) += 1;
            }
            let modal = *counts.values().max().unwrap();
            modal_share_sum += modal as f64 / w.len() as f64;
        }
        let avg_modal_share = modal_share_sum / n as f64;
        // With 66 possible channels, uniform traffic would give a modal
        // share near 0.15; bursts push it well past one half.
        assert!(
            avg_modal_share > 0.5,
            "windowed modal share {avg_modal_share} too uniform for bursty traffic"
        );
    }

    #[test]
    #[should_panic(expected = "two stages")]
    fn pipeline_rejects_single_thread() {
        pipeline(1, 100, 0);
    }

    #[test]
    fn spawn_join_churn_forks_and_joins_every_worker_once() {
        let t = spawn_join_churn(20, 2_000, 1);
        let forks = t.iter().filter(|e| matches!(e.op, Op::Fork(_))).count();
        let joins = t.iter().filter(|e| matches!(e.op, Op::Join(_))).count();
        assert_eq!(forks, 19);
        assert_eq!(joins, 19);
        assert_eq!(t.thread_count(), 20);
    }

    #[test]
    fn spawn_join_churn_sized_bounds_the_live_set_to_the_wave_width() {
        let width = 4u32;
        let t = spawn_join_churn_sized(33, width, 3_000, 2);
        assert!(t.validate().is_ok());
        assert_eq!(t.thread_count(), 33);
        let mut live = 0i64;
        let mut peak = 0i64;
        for e in &t {
            match e.op {
                Op::Fork(_) => {
                    live += 1;
                    peak = peak.max(live);
                }
                Op::Join(_) => live -= 1,
                _ => {}
            }
        }
        assert_eq!(live, 0, "every worker must be joined");
        assert_eq!(peak, i64::from(width), "wave width must cap liveness");
    }

    #[test]
    #[should_panic(expected = "coordinator")]
    fn spawn_join_churn_rejects_single_thread() {
        spawn_join_churn(1, 100, 0);
    }
}
