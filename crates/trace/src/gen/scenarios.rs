//! The four controlled scalability scenarios of the paper's Figure 10.
//!
//! Each trace consists of lock synchronization only: "a randomly chosen
//! thread performs two consecutive operations, acq(l) followed by rel(l),
//! on a randomly (when applicable) chosen lock". A deterministic warm-up
//! round makes every configured thread appear at least once, so the
//! generated trace always has exactly the requested thread count.

use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{Trace, TraceBuilder};

fn sync(b: &mut TraceBuilder, t: u32, l: u32) {
    b.acquire_id(t, l);
    b.release_id(t, l);
}

/// Scenario (a): all threads communicate over one common lock.
///
/// Tree clocks obtain a constant-factor speedup here (Figure 10a).
pub fn single_lock(threads: u32, events: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TraceBuilder::with_capacity(events + 2 * threads as usize);
    for t in 0..threads {
        sync(&mut b, t, 0);
    }
    while b.len() < events {
        let t = rng.random_range(0..threads);
        sync(&mut b, t, 0);
    }
    b.finish()
}

/// Scenario (b): `locks` locks; the first 20% of the threads are 5×
/// more likely to act than the rest (Figure 10b, "50 locks, skewed").
pub fn skewed_locks(threads: u32, locks: u32, events: usize, seed: u64) -> Trace {
    assert!(locks >= 1, "skewed_locks requires at least one lock");
    let mut rng = StdRng::seed_from_u64(seed);
    let hot = (threads / 5).max(1);
    // Hot threads have weight 5, the rest weight 1.
    let total_weight = u64::from(hot) * 5 + u64::from(threads - hot);
    let mut b = TraceBuilder::with_capacity(events + 2 * threads as usize);
    for t in 0..threads {
        sync(&mut b, t, t % locks);
    }
    while b.len() < events {
        let r = rng.random_range(0..total_weight);
        let t = if r < u64::from(hot) * 5 {
            (r / 5) as u32
        } else {
            hot + (r - u64::from(hot) * 5) as u32
        };
        let l = rng.random_range(0..locks);
        sync(&mut b, t, l);
    }
    b.finish()
}

/// Scenario (c): star topology — `threads - 1` client threads each
/// communicate with a single server (thread 0) via a dedicated lock.
///
/// This is where tree clocks thrive: the tree takes the shape of the
/// star and every join/copy touches O(1) entries, so the running time
/// stays flat as the thread count grows (Figure 10c).
pub fn star(threads: u32, events: usize, seed: u64) -> Trace {
    assert!(threads >= 2, "star topology requires a server and a client");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TraceBuilder::with_capacity(events + 4 * threads as usize);
    for c in 1..threads {
        sync(&mut b, c, c - 1);
    }
    sync(&mut b, 0, 0);
    // A uniformly random thread acts each step: a client syncs on its
    // own lock; the server (picked ~1/k of the time) syncs on a random
    // client's lock. Information thus flows through the server rarely,
    // which keeps the vt-work per event constant — the regime where
    // tree clocks shine (Figure 10c).
    while b.len() < events {
        let t = rng.random_range(0..threads);
        if t == 0 {
            let c = rng.random_range(1..threads);
            sync(&mut b, 0, c - 1);
        } else {
            sync(&mut b, t, t - 1);
        }
    }
    b.finish()
}

/// Scenario (d): pairwise communication — every pair of threads has a
/// dedicated lock.
///
/// The worst case for tree clocks (Figure 10d): the ad-hoc communication
/// nullifies the hierarchical structure while its maintenance overhead
/// remains, so tree clocks run slightly *slower* than vector clocks.
pub fn pairwise(threads: u32, events: usize, seed: u64) -> Trace {
    assert!(threads >= 2, "pairwise communication needs two threads");
    let mut rng = StdRng::seed_from_u64(seed);
    let k = u64::from(threads);
    // Triangular indexing of unordered pairs (i < j).
    let pair_lock = |i: u64, j: u64| -> u32 {
        debug_assert!(i < j);
        (i * (2 * k - i - 1) / 2 + (j - i - 1)) as u32
    };
    let mut b = TraceBuilder::with_capacity(events + 4 * threads as usize);
    for t in 1..threads {
        let l = pair_lock(u64::from(t - 1), u64::from(t));
        sync(&mut b, t - 1, l);
        sync(&mut b, t, l);
    }
    // A random thread syncs on the lock of a random partner.
    while b.len() < events {
        let t = rng.random_range(0..threads);
        let mut u = rng.random_range(0..threads - 1);
        if u >= t {
            u += 1;
        }
        let l = pair_lock(u64::from(t.min(u)), u64::from(t.max(u)));
        sync(&mut b, t, l);
    }
    b.finish()
}

/// The registered scenario families: the four Figure 10 patterns plus
/// the structured families of [`families`](crate::gen::families), as a
/// value for benchmark harnesses, the conformance corpus and the
/// command-line tool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// All threads share one lock (Figure 10a).
    SingleLock,
    /// 50 locks with a skewed thread-activity distribution (Figure 10b).
    SkewedLocks,
    /// Clients communicating with one server (Figure 10c).
    Star,
    /// A dedicated lock per thread pair (Figure 10d).
    Pairwise,
    /// Binary fork/join task tree with per-edge result channels.
    ForkJoinTree,
    /// Barrier-phased SPMD rounds with a per-phase broadcast.
    BarrierPhases,
    /// Producer–consumer pipeline over lock-guarded channel buffers.
    Pipeline,
    /// Read-mostly reader/writer contention on a shared record pool.
    ReadMostly,
    /// Bursty hot/cold channel traffic between migrating thread pairs.
    BurstyChannels,
    /// Coordinator-driven waves of short-lived forked workers, each
    /// joined before the next wave (thread-pool lifecycle churn).
    SpawnJoinChurn,
}

impl Scenario {
    /// The four controlled scenarios of the paper's Figure 10, in the
    /// paper's (a)–(d) order. These are pure lock-synchronization
    /// traces (100% sync events, race-free).
    pub const FIG10: [Scenario; 4] = [
        Scenario::SingleLock,
        Scenario::SkewedLocks,
        Scenario::Star,
        Scenario::Pairwise,
    ];

    /// Every registered scenario family: [`FIG10`](Self::FIG10)
    /// followed by the structured families of
    /// [`families`](crate::gen::families).
    pub const ALL: [Scenario; 10] = [
        Scenario::SingleLock,
        Scenario::SkewedLocks,
        Scenario::Star,
        Scenario::Pairwise,
        Scenario::ForkJoinTree,
        Scenario::BarrierPhases,
        Scenario::Pipeline,
        Scenario::ReadMostly,
        Scenario::BurstyChannels,
        Scenario::SpawnJoinChurn,
    ];

    /// Generates a trace for this scenario.
    pub fn generate(self, threads: u32, events: usize, seed: u64) -> Trace {
        use crate::gen::families;
        match self {
            Scenario::SingleLock => single_lock(threads, events, seed),
            Scenario::SkewedLocks => skewed_locks(threads, 50.min(threads.max(1)), events, seed),
            Scenario::Star => star(threads, events, seed),
            Scenario::Pairwise => pairwise(threads, events, seed),
            Scenario::ForkJoinTree => families::fork_join_tree(threads, events, seed),
            Scenario::BarrierPhases => families::barrier_phases(threads, events, seed),
            Scenario::Pipeline => families::pipeline(threads, events, seed),
            Scenario::ReadMostly => families::read_mostly(threads, events, seed),
            Scenario::BurstyChannels => families::bursty_channels(threads, events, seed),
            Scenario::SpawnJoinChurn => families::spawn_join_churn(threads, events, seed),
        }
    }

    /// Returns `true` for the pure lock-synchronization scenarios
    /// (every event is an acquire or release).
    pub fn is_sync_only(self) -> bool {
        Scenario::FIG10.contains(&self)
    }

    /// The smallest thread count this scenario supports.
    pub fn min_threads(self) -> u32 {
        match self {
            Scenario::SingleLock
            | Scenario::SkewedLocks
            | Scenario::ForkJoinTree
            | Scenario::BarrierPhases
            | Scenario::ReadMostly => 1,
            Scenario::Star
            | Scenario::Pairwise
            | Scenario::Pipeline
            | Scenario::BurstyChannels
            | Scenario::SpawnJoinChurn => 2,
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Scenario::SingleLock => "single-lock",
            Scenario::SkewedLocks => "skewed-locks",
            Scenario::Star => "star",
            Scenario::Pairwise => "pairwise",
            Scenario::ForkJoinTree => "fork-join-tree",
            Scenario::BarrierPhases => "barrier-phases",
            Scenario::Pipeline => "pipeline",
            Scenario::ReadMostly => "read-mostly",
            Scenario::BurstyChannels => "bursty-channels",
            Scenario::SpawnJoinChurn => "spawn-join-churn",
        };
        f.write_str(name)
    }
}

impl FromStr for Scenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "single-lock" => Ok(Scenario::SingleLock),
            "skewed-locks" => Ok(Scenario::SkewedLocks),
            "star" => Ok(Scenario::Star),
            "pairwise" => Ok(Scenario::Pairwise),
            "fork-join-tree" => Ok(Scenario::ForkJoinTree),
            "barrier-phases" => Ok(Scenario::BarrierPhases),
            "pipeline" => Ok(Scenario::Pipeline),
            "read-mostly" => Ok(Scenario::ReadMostly),
            "bursty-channels" => Ok(Scenario::BurstyChannels),
            "spawn-join-churn" => Ok(Scenario::SpawnJoinChurn),
            other => Err(format!(
                "unknown scenario `{other}` (expected single-lock, skewed-locks, star, \
                 pairwise, fork-join-tree, barrier-phases, pipeline, read-mostly, \
                 bursty-channels, spawn-join-churn)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_generate_valid_traces() {
        for s in Scenario::ALL {
            let t = s.generate(12, 2_000, 7);
            assert!(t.validate().is_ok(), "{s} generated an invalid trace");
            assert_eq!(t.thread_count(), 12, "{s} lost threads");
            assert!(t.len() >= 2_000, "{s} too short");
            assert!(
                t.len() < 2_000 + 12 * 12 + 16,
                "{s} overshot the event budget: {}",
                t.len()
            );
            if s.is_sync_only() {
                assert_eq!(t.stats().sync_pct(), 100.0, "{s} emitted non-sync events");
            } else {
                assert!(
                    t.stats().sync_pct() < 100.0,
                    "{s} should mix accesses with synchronization"
                );
            }
        }
    }

    #[test]
    fn fig10_is_a_prefix_of_all() {
        assert_eq!(Scenario::ALL[..4], Scenario::FIG10);
        assert!(Scenario::FIG10.iter().all(|s| s.is_sync_only()));
        assert!(Scenario::ALL[4..].iter().all(|s| !s.is_sync_only()));
    }

    #[test]
    fn scenarios_respect_their_minimum_thread_count() {
        for s in Scenario::ALL {
            let t = s.generate(s.min_threads(), 150, 3);
            assert!(t.validate().is_ok(), "{s} invalid at min threads");
            assert_eq!(t.thread_count(), s.min_threads() as usize);
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for s in Scenario::ALL {
            let a = s.generate(8, 500, 42);
            let b = s.generate(8, 500, 42);
            let c = s.generate(8, 500, 43);
            assert_eq!(a.events(), b.events(), "{s} not deterministic");
            assert_ne!(a.events(), c.events(), "{s} ignores the seed");
        }
    }

    #[test]
    fn single_lock_uses_exactly_one_lock() {
        let t = single_lock(16, 1_000, 1);
        assert_eq!(t.lock_count(), 1);
    }

    #[test]
    fn skewed_locks_uses_requested_locks_and_prefers_hot_threads() {
        let t = skewed_locks(20, 10, 40_000, 1);
        assert_eq!(t.lock_count(), 10);
        // The 4 hot threads (20%) have weight 5: they should produce
        // roughly 5/9 of all events (20 weight of 36 total... exactly
        // 20/36 ≈ 55.6%). Allow generous slack.
        let mut hot_events = 0usize;
        for e in &t {
            if e.tid.raw() < 4 {
                hot_events += 1;
            }
        }
        let share = hot_events as f64 / t.len() as f64;
        assert!(
            (0.45..0.65).contains(&share),
            "hot thread share {share} outside expected band"
        );
    }

    #[test]
    fn star_uses_one_lock_per_client_and_server_acts_rarely() {
        let t = star(9, 8_000, 3);
        assert_eq!(t.lock_count(), 8);
        let server_events = t.iter().filter(|e| e.tid.raw() == 0).count();
        // The server is picked uniformly, i.e. ~1/9 of the time.
        let share = server_events as f64 / t.len() as f64;
        assert!(
            (0.06..0.18).contains(&share),
            "server share {share} outside the uniform-selection band"
        );
    }

    #[test]
    fn pairwise_uses_a_lock_per_pair() {
        let t = pairwise(6, 20_000, 3);
        // 6 choose 2 = 15 locks; with 20k events all pairs appear.
        assert_eq!(t.lock_count(), 15);
    }

    #[test]
    fn scenario_names_round_trip() {
        for s in Scenario::ALL {
            let parsed: Scenario = s.to_string().parse().unwrap();
            assert_eq!(parsed, s);
        }
        assert!("nope".parse::<Scenario>().is_err());
    }
}
