//! Seeded synthetic trace generators.
//!
//! Three families:
//!
//! - [`scenarios`] — the four controlled communication patterns of the
//!   paper's Figure 10 (single lock, skewed locks, star topology,
//!   pairwise communication), parameterized by thread count;
//! - [`families`] — structured workload families beyond the paper
//!   (fork/join task trees, barrier-phased SPMD rounds,
//!   producer–consumer pipelines, read-mostly contention, bursty
//!   channel traffic), registered alongside the Figure-10 patterns in
//!   [`Scenario::ALL`];
//! - [`workload`] — a general mixed read/write/lock workload
//!   ([`WorkloadSpec`]) used to simulate the paper's 153-trace benchmark
//!   suite (Tables 1 and 3): thread/lock/variable counts, the
//!   synchronization-event fraction and skew are all tunable.
//!
//! All generators are deterministic in their seed, so every experiment
//! in this repository is exactly reproducible.

pub mod families;
pub mod scenarios;
pub mod workload;

pub use families::{barrier_phases, bursty_channels, fork_join_tree, pipeline, read_mostly};
pub use scenarios::{pairwise, single_lock, skewed_locks, star, Scenario};
pub use workload::{generate, WorkloadSpec};
