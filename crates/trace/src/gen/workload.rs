//! A general mixed workload generator used to simulate the paper's
//! benchmark suite.
//!
//! The paper evaluates on 153 traces logged from Java and OpenMP
//! programs (Tables 1 and 3). Those traces are characterized by a few
//! shape parameters — thread/lock/variable counts, the fraction of
//! synchronization events (0–44%, mean 9.5%), read/write mix, and
//! activity skew — which [`WorkloadSpec`] exposes directly. Generated
//! traces follow the same event grammar (accesses inside and outside
//! critical sections, optional structured fork/join) and are always
//! well-formed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{Trace, TraceBuilder};

/// Parameters of a synthetic mixed workload.
///
/// # Example
///
/// ```rust
/// use tc_trace::gen::WorkloadSpec;
///
/// let trace = WorkloadSpec {
///     threads: 8,
///     events: 10_000,
///     sync_ratio: 0.2,
///     ..WorkloadSpec::default()
/// }
/// .generate();
/// assert!(trace.validate().is_ok());
/// assert_eq!(trace.thread_count(), 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Number of threads (the paper's `T`, 3–224 in the suite).
    pub threads: u32,
    /// Number of locks (`L`).
    pub locks: u32,
    /// Number of shared variables (`M`).
    pub vars: u32,
    /// Approximate number of events to generate (`N`).
    pub events: usize,
    /// Fraction of events that are lock operations (the paper's "Sync.
    /// Events (%)" divided by 100); accesses make up the rest.
    pub sync_ratio: f64,
    /// Among access events, the fraction that are writes.
    pub write_ratio: f64,
    /// Fraction of threads that are "hot" (more active).
    pub hot_thread_share: f64,
    /// Relative activity weight of hot threads versus cold ones.
    pub hot_thread_weight: u32,
    /// Probability that an access reuses the thread's previous variable
    /// (temporal locality, high in the OpenMP loops of the suite).
    pub locality: f64,
    /// Fraction of accesses that target the *shared* variable pool; the
    /// rest hit thread-private variables. Real programs access mostly
    /// private data (the paper's traces change only ~1-2 vector-time
    /// entries per event on average — see Figure 8), so this defaults
    /// low; set to 1.0 for a fully shared, maximally racy heap.
    pub shared_fraction: f64,
    /// Wrap the trace in structured fork/join: thread 0 forks all others
    /// up front and joins them at the end.
    pub fork_join: bool,
    /// RNG seed; generation is deterministic in the full spec.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            threads: 8,
            locks: 8,
            vars: 256,
            events: 10_000,
            sync_ratio: 0.095, // the suite's mean: 9.5% sync events
            write_ratio: 0.35,
            hot_thread_share: 0.25,
            hot_thread_weight: 3,
            locality: 0.5,
            shared_fraction: 0.2,
            fork_join: false,
            seed: 0,
        }
    }
}

impl WorkloadSpec {
    /// Generates the trace described by this spec. Convenience for
    /// [`generate`].
    pub fn generate(&self) -> Trace {
        generate(self)
    }
}

/// Generates a well-formed trace from `spec`.
///
/// # Panics
///
/// Panics if `spec.threads == 0`, or a ratio is outside `[0, 1]`.
pub fn generate(spec: &WorkloadSpec) -> Trace {
    assert!(spec.threads >= 1, "workload needs at least one thread");
    assert!(
        (0.0..=1.0).contains(&spec.sync_ratio)
            && (0.0..=1.0).contains(&spec.write_ratio)
            && (0.0..=1.0).contains(&spec.hot_thread_share)
            && (0.0..=1.0).contains(&spec.locality)
            && (0.0..=1.0).contains(&spec.shared_fraction),
        "workload ratios must lie in [0, 1]"
    );
    let locks = spec.locks.max(1);
    let vars = spec.vars.max(1);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = TraceBuilder::with_capacity(spec.events + 4 * spec.threads as usize);

    if spec.fork_join && spec.threads > 1 {
        for t in 1..spec.threads {
            b.fork(0, t);
        }
    }

    let hot = ((f64::from(spec.threads) * spec.hot_thread_share) as u32).clamp(1, spec.threads);
    let weight = u64::from(spec.hot_thread_weight.max(1));
    let total_weight = u64::from(hot) * weight + u64::from(spec.threads - hot);
    let pick_thread = move |rng: &mut StdRng| -> u32 {
        let r = rng.random_range(0..total_weight);
        if r < u64::from(hot) * weight {
            (r / weight) as u32
        } else {
            hot + (r - u64::from(hot) * weight) as u32
        }
    };

    // The variable space models realistic sharing: a shared pool at the
    // low indices, the rest partitioned into per-thread private slices.
    let shared_vars = ((f64::from(vars) * spec.shared_fraction).ceil() as u32).clamp(1, vars);
    let private_vars = vars - shared_vars; // may be 0
    let private_per_thread = (private_vars / spec.threads).max(1);
    let private_var = |t: u32, j: u32| -> u32 {
        if private_vars == 0 {
            // No private region configured: everything is shared.
            j % vars
        } else {
            shared_vars
                + (u64::from(t) * u64::from(private_per_thread) + u64::from(j))
                    .rem_euclid(u64::from(private_vars)) as u32
        }
    };

    // Last variable touched per thread, for locality.
    let mut last_var: Vec<u32> = (0..spec.threads).map(|t| private_var(t, 0)).collect();

    // Warm-up: every thread performs one access, so the configured
    // thread count is always realized.
    for t in 0..spec.threads {
        b.write_id(t, private_var(t, 0));
    }

    let body_budget = spec.events;
    while b.len() < body_budget {
        let t = pick_thread(&mut rng);
        let var = if rng.random_range(0.0..1.0) < spec.locality {
            last_var[t as usize]
        } else {
            let v = if rng.random_range(0.0..1.0) < spec.shared_fraction {
                rng.random_range(0..shared_vars)
            } else {
                private_var(t, rng.random_range(0..private_per_thread))
            };
            last_var[t as usize] = v;
            v
        };
        if rng.random_range(0.0..1.0) < spec.sync_ratio {
            // A critical section: acq, 0-2 accesses, rel. Emitted
            // contiguously, so lock discipline holds by construction.
            let l = rng.random_range(0..locks);
            b.acquire_id(t, l);
            for _ in 0..rng.random_range(0..3u32) {
                if rng.random_range(0.0..1.0) < spec.write_ratio {
                    b.write_id(t, var);
                } else {
                    b.read_id(t, var);
                }
            }
            b.release_id(t, l);
        } else if rng.random_range(0.0..1.0) < spec.write_ratio {
            b.write_id(t, var);
        } else {
            b.read_id(t, var);
        }
    }

    if spec.fork_join && spec.threads > 1 {
        for t in 1..spec.threads {
            b.join(0, t);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_generates_valid_trace() {
        let t = WorkloadSpec::default().generate();
        assert!(t.validate().is_ok());
        assert_eq!(t.thread_count(), 8);
        assert!(t.len() >= 10_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.generate().events(), spec.generate().events());
        let other = WorkloadSpec {
            seed: 1,
            ..WorkloadSpec::default()
        };
        assert_ne!(spec.generate().events(), other.generate().events());
    }

    #[test]
    fn sync_ratio_is_approximately_respected() {
        let spec = WorkloadSpec {
            threads: 16,
            events: 60_000,
            sync_ratio: 0.3,
            ..WorkloadSpec::default()
        };
        let s = spec.generate().stats();
        // Each sync decision emits acq+rel plus up to 2 accesses, so the
        // realized fraction differs from the knob; it must land in a
        // sensible band around 2*0.3/(1 + 0.3*(1+E[extra])) — just check
        // a generous window and monotonicity versus a low-sync spec.
        assert!(s.sync_pct() > 20.0, "sync% too low: {}", s.sync_pct());
        assert!(s.sync_pct() < 55.0, "sync% too high: {}", s.sync_pct());
        let low = WorkloadSpec {
            sync_ratio: 0.02,
            ..spec
        }
        .generate()
        .stats();
        assert!(low.sync_pct() < s.sync_pct());
    }

    #[test]
    fn fork_join_wraps_the_trace() {
        let spec = WorkloadSpec {
            threads: 4,
            events: 100,
            fork_join: true,
            ..WorkloadSpec::default()
        };
        let t = spec.generate();
        assert!(t.validate().is_ok());
        let s = t.stats();
        assert!(s.sync_events >= 6); // 3 forks + 3 joins at least
                                     // First events are the forks by thread 0.
        assert!(matches!(t[0].op, crate::Op::Fork(_)));
    }

    #[test]
    fn single_thread_workload_is_fine() {
        let spec = WorkloadSpec {
            threads: 1,
            events: 200,
            ..WorkloadSpec::default()
        };
        let t = spec.generate();
        assert!(t.validate().is_ok());
        assert_eq!(t.thread_count(), 1);
    }

    #[test]
    #[should_panic(expected = "ratios must lie in")]
    fn invalid_ratio_panics() {
        generate(&WorkloadSpec {
            sync_ratio: 1.5,
            ..WorkloadSpec::default()
        });
    }

    #[test]
    fn var_and_lock_counts_are_bounded_by_spec() {
        let spec = WorkloadSpec {
            threads: 8,
            locks: 3,
            vars: 10,
            events: 5_000,
            ..WorkloadSpec::default()
        };
        let t = spec.generate();
        assert!(t.lock_count() <= 3);
        assert!(t.var_count() <= 10);
    }
}

#[cfg(test)]
mod sharing_tests {
    use super::*;
    use crate::Op;

    /// Private variables must actually be private: with
    /// `shared_fraction = 0`, no variable is accessed by two threads.
    #[test]
    fn private_variables_are_thread_disjoint() {
        let trace = WorkloadSpec {
            threads: 6,
            vars: 128,
            events: 5_000,
            sync_ratio: 0.0,
            shared_fraction: 0.0,
            seed: 8,
            ..WorkloadSpec::default()
        }
        .generate();
        let mut owner = vec![None; trace.var_count()];
        for e in &trace {
            if let Op::Read(x) | Op::Write(x) = e.op {
                match owner[x.index()] {
                    None => owner[x.index()] = Some(e.tid),
                    Some(t) => assert_eq!(t, e.tid, "{x} accessed by two threads"),
                }
            }
        }
    }

    /// A fully shared heap exercises cross-thread flow on every access.
    #[test]
    fn fully_shared_heap_mixes_threads() {
        let trace = WorkloadSpec {
            threads: 4,
            vars: 2,
            events: 2_000,
            sync_ratio: 0.0,
            shared_fraction: 1.0,
            locality: 0.0,
            seed: 9,
            ..WorkloadSpec::default()
        }
        .generate();
        let mut per_var_threads = vec![std::collections::HashSet::new(); trace.var_count()];
        for e in &trace {
            if let Some(x) = e.op.variable() {
                per_var_threads[x.index()].insert(e.tid);
            }
        }
        assert!(per_var_threads.iter().any(|s| s.len() >= 3));
    }

    /// The sharing knob changes the actual information flow: lower
    /// sharing means fewer vector-time entry changes per event.
    #[test]
    fn sharing_controls_information_flow() {
        let spec = |shared: f64| WorkloadSpec {
            threads: 16,
            vars: 512,
            events: 20_000,
            sync_ratio: 0.02,
            shared_fraction: shared,
            seed: 10,
            ..WorkloadSpec::default()
        };
        use tc_core::VectorClock;
        let low = tc_orders_free_shb_changed(&spec(0.05).generate());
        let high = tc_orders_free_shb_changed(&spec(0.9).generate());
        assert!(
            low < high,
            "low sharing ({low}) should transfer less than high sharing ({high})"
        );

        // A minimal SHB-style flow counter, independent of tc-orders
        // (which depends on this crate): per-variable last-write clock.
        fn tc_orders_free_shb_changed(trace: &crate::Trace) -> u64 {
            use tc_core::{LogicalClock, ThreadId};
            let k = trace.thread_count();
            let mut threads: Vec<VectorClock> = Vec::new();
            for t in 0..k {
                let mut c = VectorClock::with_threads(k);
                c.init_root(ThreadId::new(t as u32));
                threads.push(c);
            }
            let mut lw: Vec<VectorClock> =
                (0..trace.var_count()).map(|_| VectorClock::new()).collect();
            let mut locks: Vec<VectorClock> = (0..trace.lock_count())
                .map(|_| VectorClock::new())
                .collect();
            let mut changed = 0;
            for e in trace {
                let t = e.tid.index();
                threads[t].increment(1);
                match e.op {
                    Op::Read(x) => {
                        changed += threads[t].join_counted(&lw[x.index()]).changed;
                    }
                    Op::Write(x) => {
                        changed += lw[x.index()]
                            .copy_check_monotone_counted(&threads[t])
                            .1
                            .changed;
                    }
                    Op::Acquire(l) => {
                        changed += threads[t].join_counted(&locks[l.index()]).changed;
                    }
                    Op::Release(l) => {
                        changed += locks[l.index()].monotone_copy_counted(&threads[t]).changed;
                    }
                    _ => {}
                }
            }
            changed
        }
    }
}
