//! Chunked, incremental event ingestion — the trace-layer half of the
//! streaming subsystem.
//!
//! The batch formats ([`text_format`](crate::text_format),
//! [`binary_format`]) materialize a whole
//! [`Trace`](crate::Trace) before any engine sees an event. The readers
//! here yield [`Event`]s one at a time from the same two formats, with
//! O(1) state per event (plus the interner for named text traces), so a
//! multi-gigabyte log can be analyzed at a bounded memory footprint —
//! and a live session can feed events as they happen.
//!
//! [`SessionValidator`] is the incremental twin of
//! [`Trace::validate`](crate::Trace::validate): the same
//! well-formedness rules (lock discipline, fork/join sanity), checked
//! one event at a time so a malformed session is rejected at the
//! offending event instead of at end-of-trace.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use tc_core::ThreadId;

use crate::binary_format::{self, BinaryError};
use crate::event::{Event, LockId, Op, VarId};
use crate::validate::ValidationError;

/// An error while streaming events from a source.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// A malformed text-format line (1-based line number).
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The binary input is not a valid trace stream.
    Corrupt(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "I/O error streaming trace: {e}"),
            StreamError::Parse { line, message } => {
                write!(f, "trace stream parse error at line {line}: {message}")
            }
            StreamError::Corrupt(m) => write!(f, "corrupt binary trace stream: {m}"),
        }
    }
}

impl Error for StreamError {}

impl From<BinaryError> for StreamError {
    fn from(e: BinaryError) -> Self {
        match e {
            BinaryError::Io(e) => StreamError::Io(e),
            BinaryError::Corrupt(m) => StreamError::Corrupt(m),
        }
    }
}

/// Interner state for streaming text-format input: thread/lock/variable
/// names to dense ids, in order of first appearance — exactly the ids
/// [`parse_text`](crate::text_format::parse_text) would assign.
#[derive(Clone, Debug, Default)]
pub struct StreamInterner {
    threads: Names,
    locks: Names,
    vars: Names,
}

#[derive(Clone, Debug, Default)]
struct Names {
    names: Vec<String>,
    ids: std::collections::HashMap<String, u32>,
}

impl Names {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }
}

impl StreamInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        StreamInterner::default()
    }

    /// Parses one text-format event line (`<thread> <op> <operand>`),
    /// interning names. Returns `Ok(None)` for blank and `#`-comment
    /// lines. The error is the message alone; callers supply the line
    /// number (a file reader counts lines, a network session counts
    /// protocol messages).
    pub fn parse_line(&mut self, raw: &str) -> Result<Option<Event>, String> {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        let (Some(tname), Some(op), Some(operand)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("expected `<thread> <op> <operand>`, got `{line}`"));
        };
        if let Some(extra) = parts.next() {
            return Err(format!("unexpected trailing token `{extra}`"));
        }
        let tid = ThreadId::new(self.threads.intern(tname));
        let op = match op {
            "r" => Op::Read(VarId::new(self.vars.intern(operand))),
            "w" => Op::Write(VarId::new(self.vars.intern(operand))),
            "acq" => Op::Acquire(LockId::new(self.locks.intern(operand))),
            "rel" => Op::Release(LockId::new(self.locks.intern(operand))),
            "fork" => Op::Fork(ThreadId::new(self.threads.intern(operand))),
            "join" => Op::Join(ThreadId::new(self.threads.intern(operand))),
            other => {
                return Err(format!(
                    "unknown operation `{other}` (expected r, w, acq, rel, fork, join)"
                ));
            }
        };
        Ok(Some(Event::new(tid, op)))
    }

    /// The interned name of a thread, if seen (else `t<i>` style ids
    /// apply).
    pub fn thread_name(&self, t: ThreadId) -> Option<&str> {
        self.threads.name(t.raw())
    }

    /// The id a thread name was interned to, if seen — the O(1)
    /// reverse of [`thread_name`](Self::thread_name).
    pub fn thread_id(&self, name: &str) -> Option<ThreadId> {
        self.threads.ids.get(name).copied().map(ThreadId::new)
    }

    /// Number of distinct thread names interned so far.
    pub fn thread_count(&self) -> usize {
        self.threads.names.len()
    }

    /// Captures the interner (name → dense id tables) for a streaming
    /// checkpoint, so a resumed session keeps every established name
    /// binding.
    pub fn snapshot(&self) -> InternerState {
        InternerState {
            threads: self.threads.names.clone(),
            locks: self.locks.names.clone(),
            vars: self.vars.names.clone(),
        }
    }

    /// Rebuilds an interner from a checkpointed state (ids are the
    /// positions in each name list).
    pub fn from_snapshot(state: &InternerState) -> Self {
        fn rebuild(names: &[String]) -> Names {
            Names {
                names: names.to_vec(),
                ids: names
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (n.clone(), i as u32))
                    .collect(),
            }
        }
        StreamInterner {
            threads: rebuild(&state.threads),
            locks: rebuild(&state.locks),
            vars: rebuild(&state.vars),
        }
    }
}

/// A value-level capture of a [`StreamInterner`]: the three name
/// tables, id = position.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InternerState {
    /// Thread names in id order.
    pub threads: Vec<String>,
    /// Lock names in id order.
    pub locks: Vec<String>,
    /// Variable names in id order.
    pub vars: Vec<String>,
}

/// A streaming reader over either trace format, chosen by file
/// extension (`.tctr` = binary, anything else = text).
pub struct EventReader<R> {
    inner: ReaderKind<R>,
    yielded: u64,
}

enum ReaderKind<R> {
    Text(Box<TextState<R>>),
    Binary { reader: R, remaining: u64 },
}

struct TextState<R> {
    reader: R,
    interner: StreamInterner,
    line: String,
    lineno: usize,
}

impl EventReader<BufReader<File>> {
    /// Opens `path`, choosing the format from the extension.
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Io`] when the file cannot be opened (or,
    /// for binary traces, its header cannot be read) and
    /// [`StreamError::Corrupt`] for a bad binary header.
    pub fn open(path: &str) -> Result<Self, StreamError> {
        let file = File::open(Path::new(path)).map_err(StreamError::Io)?;
        let reader = BufReader::new(file);
        if path.ends_with(".tctr") {
            EventReader::binary(reader)
        } else {
            Ok(EventReader::text(reader))
        }
    }
}

impl<R: BufRead> EventReader<R> {
    /// Streams text-format events from `reader`.
    pub fn text(reader: R) -> Self {
        EventReader {
            inner: ReaderKind::Text(Box::new(TextState {
                reader,
                interner: StreamInterner::new(),
                line: String::new(),
                lineno: 0,
            })),
            yielded: 0,
        }
    }

    /// Streams binary-format events from `reader`, consuming the header
    /// eagerly (so format errors surface at open time).
    ///
    /// # Errors
    ///
    /// Returns [`StreamError::Corrupt`] for a bad magic/version and
    /// [`StreamError::Io`] for reader failures.
    pub fn binary(mut reader: R) -> Result<Self, StreamError> {
        let mut magic = [0u8; 4];
        std::io::Read::read_exact(&mut reader, &mut magic).map_err(StreamError::Io)?;
        if &magic != binary_format::MAGIC {
            return Err(StreamError::Corrupt("bad magic (not a TCTR file)".into()));
        }
        let mut version = [0u8; 1];
        std::io::Read::read_exact(&mut reader, &mut version).map_err(StreamError::Io)?;
        if version[0] != binary_format::VERSION {
            return Err(StreamError::Corrupt(format!(
                "unsupported version {} (expected {})",
                version[0],
                binary_format::VERSION
            )));
        }
        let remaining = binary_format::read_varint(&mut reader)?;
        Ok(EventReader {
            inner: ReaderKind::Binary { reader, remaining },
            yielded: 0,
        })
    }

    /// Yields the next event, or `None` at end of stream. O(1) work and
    /// state per call; nothing is materialized.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and per-event format errors (with the line
    /// number for text input).
    pub fn next_event(&mut self) -> Result<Option<Event>, StreamError> {
        let next = match &mut self.inner {
            ReaderKind::Text(state) => loop {
                state.line.clear();
                let n = state
                    .reader
                    .read_line(&mut state.line)
                    .map_err(StreamError::Io)?;
                if n == 0 {
                    break None;
                }
                state.lineno += 1;
                match state.interner.parse_line(&state.line) {
                    Ok(Some(e)) => break Some(e),
                    Ok(None) => continue,
                    Err(message) => {
                        return Err(StreamError::Parse {
                            line: state.lineno,
                            message,
                        });
                    }
                }
            },
            ReaderKind::Binary { reader, remaining } => {
                if *remaining == 0 {
                    None
                } else {
                    *remaining -= 1;
                    let mut code = [0u8; 1];
                    std::io::Read::read_exact(reader, &mut code).map_err(StreamError::Io)?;
                    let tid = binary_format::read_varint(reader)?;
                    let operand = binary_format::read_varint(reader)?;
                    let tid = u32::try_from(tid)
                        .map_err(|_| StreamError::Corrupt("thread id overflows u32".into()))?;
                    let operand = u32::try_from(operand)
                        .map_err(|_| StreamError::Corrupt("operand overflows u32".into()))?;
                    Some(Event::new(
                        ThreadId::new(tid),
                        binary_format::decode_op(code[0], operand)?,
                    ))
                }
            }
        };
        if next.is_some() {
            self.yielded += 1;
        }
        Ok(next)
    }

    /// Number of events yielded so far.
    pub fn events_yielded(&self) -> u64 {
        self.yielded
    }

    /// Skips the next `count` events (parsing but not returning them) —
    /// the checkpoint-resume fast-forward.
    ///
    /// # Errors
    ///
    /// Fails like [`next_event`](Self::next_event); reaching end of
    /// stream early is a [`StreamError::Corrupt`].
    pub fn skip_events(&mut self, count: u64) -> Result<(), StreamError> {
        for i in 0..count {
            if self.next_event()?.is_none() {
                return Err(StreamError::Corrupt(format!(
                    "stream ended after {i} of {count} events to skip \
                     (checkpoint does not match this input)"
                )));
            }
        }
        Ok(())
    }

    /// The text interner, when streaming the text format (name lookups
    /// for reporting).
    pub fn interner(&self) -> Option<&StreamInterner> {
        match &self.inner {
            ReaderKind::Text(state) => Some(&state.interner),
            ReaderKind::Binary { .. } => None,
        }
    }
}

/// Incremental trace well-formedness validation: the same rules as
/// [`Trace::validate`](crate::Trace::validate) (lock discipline,
/// fork/join sanity), applied one event at a time. State grows with the
/// number of threads and locks, not with the number of events.
#[derive(Clone, Debug, Default)]
pub struct SessionValidator {
    held_by: Vec<Option<ThreadId>>,
    started: Vec<bool>,
    forked: Vec<bool>,
    joined: Vec<bool>,
    events: usize,
}

impl SessionValidator {
    /// Creates a validator with no observed state.
    pub fn new() -> Self {
        SessionValidator::default()
    }

    /// Number of events accepted so far.
    pub fn events(&self) -> usize {
        self.events
    }

    /// `true` once thread `t` has been the target of a `fork`.
    pub fn is_forked(&self, t: ThreadId) -> bool {
        self.forked.get(t.index()).copied().unwrap_or(false)
    }

    /// `true` once thread `t` has performed an event (or been forked).
    pub fn is_started(&self, t: ThreadId) -> bool {
        self.started.get(t.index()).copied().unwrap_or(false)
    }

    fn grow_thread(&mut self, i: usize) {
        if i >= self.started.len() {
            self.started.resize(i + 1, false);
            self.forked.resize(i + 1, false);
            self.joined.resize(i + 1, false);
        }
    }

    /// Checks `e` against the rules and, on success, records it.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] (with the running event index)
    /// naming the violation; the validator state is unchanged on error,
    /// so a session can reject one bad event and continue.
    pub fn check(&mut self, e: &Event) -> Result<(), ValidationError> {
        let at = self.events;
        let t = e.tid;
        self.grow_thread(t.index());
        if self.joined[t.index()] {
            return Err(ValidationError {
                at,
                message: format!("thread {t} performs {} after having been joined", e.op),
            });
        }
        match e.op {
            Op::Acquire(l) => {
                let slot = self.lock_slot(l);
                if let Some(holder) = self.held_by[slot] {
                    return Err(ValidationError {
                        at,
                        message: format!(
                            "{t} acquires {l} already held by {holder} (locks are not reentrant)"
                        ),
                    });
                }
                self.held_by[slot] = Some(t);
            }
            Op::Release(l) => {
                let slot = self.lock_slot(l);
                match self.held_by[slot] {
                    Some(holder) if holder == t => self.held_by[slot] = None,
                    Some(holder) => {
                        return Err(ValidationError {
                            at,
                            message: format!("{t} releases {l} held by {holder}"),
                        });
                    }
                    None => {
                        return Err(ValidationError {
                            at,
                            message: format!("{t} releases {l} which is not held"),
                        });
                    }
                }
            }
            Op::Fork(u) => {
                self.grow_thread(u.index());
                if u == t {
                    return Err(ValidationError {
                        at,
                        message: format!("{t} forks itself"),
                    });
                }
                if self.forked[u.index()] {
                    return Err(ValidationError {
                        at,
                        message: format!("thread {u} forked twice"),
                    });
                }
                if self.started[u.index()] {
                    return Err(ValidationError {
                        at,
                        message: format!("thread {u} forked after it already performed events"),
                    });
                }
                if self.joined[u.index()] {
                    return Err(ValidationError {
                        at,
                        message: format!("thread {u} forked after having been joined"),
                    });
                }
                self.forked[u.index()] = true;
                self.started[u.index()] = true;
            }
            Op::Join(u) => {
                self.grow_thread(u.index());
                if u == t {
                    return Err(ValidationError {
                        at,
                        message: format!("{t} joins itself"),
                    });
                }
                if self.joined[u.index()] {
                    return Err(ValidationError {
                        at,
                        message: format!("thread {u} joined twice"),
                    });
                }
                self.joined[u.index()] = true;
            }
            Op::Read(_) | Op::Write(_) => {}
        }
        self.started[t.index()] = true;
        self.events += 1;
        Ok(())
    }

    fn lock_slot(&mut self, l: LockId) -> usize {
        if l.index() >= self.held_by.len() {
            self.held_by.resize(l.index() + 1, None);
        }
        l.index()
    }

    /// Captures the validator's state for a streaming checkpoint.
    pub fn snapshot(&self) -> ValidatorState {
        ValidatorState {
            held_by: self.held_by.clone(),
            started: self.started.clone(),
            forked: self.forked.clone(),
            joined: self.joined.clone(),
            events: self.events as u64,
        }
    }

    /// Rebuilds a validator from a checkpointed state.
    pub fn from_snapshot(state: &ValidatorState) -> Self {
        SessionValidator {
            held_by: state.held_by.clone(),
            started: state.started.clone(),
            forked: state.forked.clone(),
            joined: state.joined.clone(),
            events: state.events as usize,
        }
    }
}

/// A value-level capture of a [`SessionValidator`] — rides along in a
/// session checkpoint so a resumed session keeps enforcing lock
/// discipline across the restore (a release of a lock acquired before
/// the checkpoint must still be accepted, a double acquire still
/// rejected).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValidatorState {
    /// Current lock holders, dense by lock index.
    pub held_by: Vec<Option<ThreadId>>,
    /// Thread-started flags, dense by thread index.
    pub started: Vec<bool>,
    /// Thread-forked flags.
    pub forked: Vec<bool>,
    /// Thread-joined flags.
    pub joined: Vec<bool>,
    /// Events accepted before the checkpoint.
    pub events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{binary_format::to_binary, text_format, Trace, TraceBuilder};

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        b.fork(0, 1);
        b.acquire(0, "m").write(0, "x").release(0, "m");
        b.acquire(1, "m").read(1, "x").release(1, "m");
        b.join(0, 1);
        b.finish()
    }

    fn drain<R: BufRead>(mut r: EventReader<R>) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(e) = r.next_event().unwrap() {
            out.push(e);
        }
        out
    }

    #[test]
    fn text_stream_yields_the_batch_parser_events() {
        let t = sample();
        let text = text_format::to_text(&t);
        let reader = EventReader::text(text.as_bytes());
        assert_eq!(drain(reader), t.events());
    }

    #[test]
    fn binary_stream_yields_the_batch_parser_events() {
        let t = sample();
        let bytes = to_binary(&t);
        let reader = EventReader::binary(bytes.as_slice()).unwrap();
        let events = drain(reader);
        assert_eq!(events, t.events());
    }

    #[test]
    fn text_stream_skips_comments_and_reports_line_numbers() {
        let input = "# header\n\nmain w x\nmain bogus x\n";
        let mut r = EventReader::text(input.as_bytes());
        assert!(r.next_event().unwrap().is_some());
        let err = r.next_event().unwrap_err();
        let StreamError::Parse { line, message } = err else {
            panic!("expected a parse error, got {err}");
        };
        assert_eq!(line, 4);
        assert!(message.contains("unknown operation"));
    }

    #[test]
    fn binary_stream_rejects_bad_headers() {
        assert!(matches!(
            EventReader::binary(&b"NOPE\x01\x00"[..]),
            Err(StreamError::Corrupt(_))
        ));
        assert!(matches!(
            EventReader::binary(&b"TCTR\x09\x00"[..]),
            Err(StreamError::Corrupt(_))
        ));
        // Truncation surfaces at the first missing event.
        let t = sample();
        let bytes = to_binary(&t);
        let mut r = EventReader::binary(&bytes[..bytes.len() - 1]).unwrap();
        let mut err = None;
        loop {
            match r.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(StreamError::Io(_))), "{err:?}");
    }

    #[test]
    fn skip_events_fast_forwards_and_detects_short_streams() {
        let t = sample();
        let text = text_format::to_text(&t);
        let mut r = EventReader::text(text.as_bytes());
        r.skip_events(3).unwrap();
        assert_eq!(r.events_yielded(), 3);
        assert_eq!(r.next_event().unwrap(), Some(t.events()[3]));

        let mut r = EventReader::text(text.as_bytes());
        let err = r.skip_events(100).unwrap_err();
        assert!(err.to_string().contains("checkpoint"));
    }

    #[test]
    fn interner_matches_batch_ids_and_names() {
        let text = "main acq m\nworker r x\nmain fork worker2\n";
        let mut r = EventReader::text(text.as_bytes());
        while r.next_event().unwrap().is_some() {}
        let interner = r.interner().unwrap();
        assert_eq!(interner.thread_name(ThreadId::new(0)), Some("main"));
        assert_eq!(interner.thread_name(ThreadId::new(1)), Some("worker"));
        assert_eq!(interner.thread_name(ThreadId::new(2)), Some("worker2"));
        assert_eq!(interner.thread_count(), 3);

        let batch = text_format::parse_text(text).unwrap();
        assert_eq!(batch.thread_name(ThreadId::new(1)), "worker");
    }

    #[test]
    fn session_validator_agrees_with_batch_validation() {
        // Valid sample: every event accepted.
        let t = sample();
        let mut v = SessionValidator::new();
        for e in &t {
            v.check(e).unwrap();
        }
        assert_eq!(v.events(), t.len());
        assert!(v.is_forked(ThreadId::new(1)));

        // The batch validator's failure cases fail at the same index.
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").acquire(1, "m");
        let bad = b.finish();
        let batch_err = bad.validate().unwrap_err();
        let mut v = SessionValidator::new();
        let mut stream_err = None;
        for e in &bad {
            if let Err(e) = v.check(e) {
                stream_err = Some(e);
                break;
            }
        }
        assert_eq!(stream_err.unwrap(), batch_err);
    }

    #[test]
    fn session_validator_rejects_and_recovers() {
        let mut v = SessionValidator::new();
        let release = Event::new(ThreadId::new(0), Op::Release(LockId::new(0)));
        assert!(v.check(&release).is_err());
        assert_eq!(v.events(), 0, "rejected events are not recorded");
        let acquire = Event::new(ThreadId::new(0), Op::Acquire(LockId::new(0)));
        v.check(&acquire).unwrap();
        v.check(&release).unwrap();
        assert_eq!(v.events(), 2);
    }

    #[test]
    fn validator_matches_batch_on_every_lifecycle_violation() {
        type Case = Box<dyn Fn(&mut TraceBuilder)>;
        let cases: Vec<Case> = vec![
            Box::new(|b| {
                b.fork(0, 1).join(0, 1).write(1, "x");
            }),
            Box::new(|b| {
                b.write(1, "x").fork(0, 1);
            }),
            Box::new(|b| {
                b.fork(0, 0);
            }),
            Box::new(|b| {
                b.fork(0, 1).fork(2, 1);
            }),
            Box::new(|b| {
                b.fork(0, 1).join(0, 1).join(2, 1);
            }),
            Box::new(|b| {
                // Forking a thread that was already joined (even one
                // that never acted) is a lifecycle violation.
                b.join(0, 1).fork(2, 1);
            }),
            Box::new(|b| {
                b.acquire(0, "m").release(1, "m");
            }),
        ];
        for (i, case) in cases.iter().enumerate() {
            let mut b = TraceBuilder::new();
            case(&mut b);
            let trace = b.finish();
            let batch = trace.validate().unwrap_err();
            let mut v = SessionValidator::new();
            let mut stream = None;
            for e in &trace {
                if let Err(e) = v.check(e) {
                    stream = Some(e);
                    break;
                }
            }
            assert_eq!(stream.expect("case must fail"), batch, "case {i}");
        }
    }
}
