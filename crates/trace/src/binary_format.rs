//! A compact binary trace format for large logged executions.
//!
//! Layout (all multi-byte integers are LEB128 varints):
//!
//! ```text
//! magic  "TCTR"            4 bytes
//! version u8               currently 1
//! count   varint           number of events
//! events  count × event
//! event  = opcode u8, tid varint, operand varint
//! ```
//!
//! The binary format stores dense ids only (no name tables); traces
//! round-trip exactly up to names. At ~3 bytes per event for typical
//! traces it is an order of magnitude denser than the text format.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use tc_core::ThreadId;

use crate::event::{Event, LockId, Op, VarId};
use crate::{Trace, TraceBuilder};

pub(crate) const MAGIC: &[u8; 4] = b"TCTR";
pub(crate) const VERSION: u8 = 1;

/// An error while reading the binary trace format.
#[derive(Debug)]
pub enum BinaryError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The input is not a valid trace file.
    Corrupt(String),
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::Io(e) => write!(f, "I/O error reading binary trace: {e}"),
            BinaryError::Corrupt(m) => write!(f, "corrupt binary trace: {m}"),
        }
    }
}

impl Error for BinaryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BinaryError::Io(e) => Some(e),
            BinaryError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for BinaryError {
    fn from(e: io::Error) -> Self {
        BinaryError::Io(e)
    }
}

pub(crate) fn opcode(op: Op) -> (u8, u32) {
    match op {
        Op::Read(x) => (0, x.raw()),
        Op::Write(x) => (1, x.raw()),
        Op::Acquire(l) => (2, l.raw()),
        Op::Release(l) => (3, l.raw()),
        Op::Fork(u) => (4, u.raw()),
        Op::Join(u) => (5, u.raw()),
    }
}

pub(crate) fn decode_op(code: u8, operand: u32) -> Result<Op, BinaryError> {
    Ok(match code {
        0 => Op::Read(VarId::new(operand)),
        1 => Op::Write(VarId::new(operand)),
        2 => Op::Acquire(LockId::new(operand)),
        3 => Op::Release(LockId::new(operand)),
        4 => Op::Fork(ThreadId::new(operand)),
        5 => Op::Join(ThreadId::new(operand)),
        other => {
            return Err(BinaryError::Corrupt(format!("unknown opcode {other}")));
        }
    })
}

pub(crate) fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

pub(crate) fn read_varint<R: Read>(r: &mut R) -> Result<u64, BinaryError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(BinaryError::Corrupt("varint overflow".into()));
        }
        out |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

/// Serializes `trace` in the binary format.
///
/// A mutable reference can be passed for `writer` (e.g. `&mut file`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_binary<W: Write>(trace: &Trace, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&[VERSION])?;
    write_varint(&mut writer, trace.len() as u64)?;
    for e in trace {
        let (code, operand) = opcode(e.op);
        writer.write_all(&[code])?;
        write_varint(&mut writer, u64::from(e.tid.raw()))?;
        write_varint(&mut writer, u64::from(operand))?;
    }
    Ok(())
}

/// Serializes `trace` to an in-memory buffer.
pub fn to_binary(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    write_binary(trace, &mut buf).expect("writing to a Vec cannot fail");
    buf
}

/// Deserializes a trace from the binary format.
///
/// A mutable reference can be passed for `reader` (e.g. `&mut file`).
///
/// # Errors
///
/// Returns [`BinaryError::Corrupt`] for bad magic/version/opcodes and
/// [`BinaryError::Io`] for reader failures (including truncation).
pub fn read_binary<R: Read>(mut reader: R) -> Result<Trace, BinaryError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinaryError::Corrupt("bad magic (not a TCTR file)".into()));
    }
    let mut version = [0u8; 1];
    reader.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(BinaryError::Corrupt(format!(
            "unsupported version {} (expected {VERSION})",
            version[0]
        )));
    }
    let count = read_varint(&mut reader)?;
    let count = usize::try_from(count)
        .map_err(|_| BinaryError::Corrupt("event count overflows usize".into()))?;
    let mut b = TraceBuilder::with_capacity(count.min(1 << 24));
    for _ in 0..count {
        let mut code = [0u8; 1];
        reader.read_exact(&mut code)?;
        let tid = read_varint(&mut reader)?;
        let operand = read_varint(&mut reader)?;
        let tid = u32::try_from(tid)
            .map_err(|_| BinaryError::Corrupt("thread id overflows u32".into()))?;
        let operand = u32::try_from(operand)
            .map_err(|_| BinaryError::Corrupt("operand overflows u32".into()))?;
        b.push(Event::new(ThreadId::new(tid), decode_op(code[0], operand)?));
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        b.fork(0, 1);
        b.acquire(0, "m").write(0, "x").release(0, "m");
        b.acquire(1, "m").read(1, "x").release(1, "m");
        b.join(0, 1);
        b.finish()
    }

    #[test]
    fn round_trips_exactly() {
        let t = sample();
        let bytes = to_binary(&t);
        let back = read_binary(bytes.as_slice()).unwrap();
        assert_eq!(t.events(), back.events());
        assert_eq!(back.thread_count(), t.thread_count());
        assert_eq!(back.lock_count(), t.lock_count());
    }

    #[test]
    fn format_is_compact() {
        let t = sample();
        let bytes = to_binary(&t);
        // 4-byte magic + version + 1-byte count varint, then 3 bytes per
        // event for small ids.
        assert_eq!(bytes.len(), 6 + 3 * t.len());
    }

    #[test]
    fn rejects_bad_magic() {
        let e = read_binary(&b"NOPE\x01\x00"[..]).unwrap_err();
        assert!(matches!(e, BinaryError::Corrupt(_)));
        assert!(e.to_string().contains("magic"));
    }

    #[test]
    fn rejects_bad_version() {
        let e = read_binary(&b"TCTR\x09\x00"[..]).unwrap_err();
        assert!(e.to_string().contains("version"));
    }

    #[test]
    fn rejects_unknown_opcode() {
        let mut bytes = b"TCTR\x01\x01".to_vec();
        bytes.extend_from_slice(&[9, 0, 0]); // opcode 9 does not exist
        let e = read_binary(bytes.as_slice()).unwrap_err();
        assert!(e.to_string().contains("opcode"));
    }

    #[test]
    fn truncated_input_is_an_io_error() {
        let t = sample();
        let bytes = to_binary(&t);
        let e = read_binary(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(e, BinaryError::Io(_)));
    }

    #[test]
    fn varint_round_trip_at_boundaries() {
        for v in [0u64, 1, 127, 128, 16384, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = TraceBuilder::new().finish();
        let back = read_binary(to_binary(&t).as_slice()).unwrap();
        assert!(back.is_empty());
    }
}
