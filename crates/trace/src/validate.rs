//! Trace well-formedness validation.
//!
//! Section 2.1 of the paper requires traces to respect lock semantics:
//! between two acquires of the same lock there must be a release by the
//! first acquiring thread. We additionally check fork/join sanity for
//! the thread-lifecycle extension.

use std::error::Error;
use std::fmt;

use tc_core::ThreadId;

use crate::event::Op;
use crate::Trace;

/// A trace well-formedness violation, reported with the offending event
/// index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidationError {
    /// Index of the offending event in the trace.
    pub at: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace at event {}: {}", self.at, self.message)
    }
}

impl Error for ValidationError {}

fn err(at: usize, message: impl Into<String>) -> ValidationError {
    ValidationError {
        at,
        message: message.into(),
    }
}

/// Validates `trace`; see [`Trace::validate`].
pub(crate) fn validate(trace: &Trace) -> Result<(), ValidationError> {
    let k = trace.thread_count();
    // Lock state: which thread currently holds each lock.
    let mut held_by: Vec<Option<ThreadId>> = vec![None; trace.lock_count()];
    // Thread lifecycle state.
    let mut started = vec![false; k]; // performed an event or was fork target
    let mut forked = vec![false; k];
    let mut joined = vec![false; k];

    for (i, e) in trace.iter().enumerate() {
        let t = e.tid;
        if joined[t.index()] {
            return Err(err(
                i,
                format!("thread {t} performs {} after having been joined", e.op),
            ));
        }
        started[t.index()] = true;
        match e.op {
            Op::Acquire(l) => {
                match held_by[l.index()] {
                    Some(holder) => {
                        return Err(err(
                        i,
                        format!("{t} acquires {l} already held by {holder} (locks are not reentrant)"),
                    ));
                    }
                    None => held_by[l.index()] = Some(t),
                }
            }
            Op::Release(l) => match held_by[l.index()] {
                Some(holder) if holder == t => held_by[l.index()] = None,
                Some(holder) => {
                    return Err(err(i, format!("{t} releases {l} held by {holder}")));
                }
                None => {
                    return Err(err(i, format!("{t} releases {l} which is not held")));
                }
            },
            Op::Fork(u) => {
                if u == t {
                    return Err(err(i, format!("{t} forks itself")));
                }
                if forked[u.index()] {
                    return Err(err(i, format!("thread {u} forked twice")));
                }
                if started[u.index()] {
                    return Err(err(
                        i,
                        format!("thread {u} forked after it already performed events"),
                    ));
                }
                if joined[u.index()] {
                    return Err(err(
                        i,
                        format!("thread {u} forked after having been joined"),
                    ));
                }
                forked[u.index()] = true;
            }
            Op::Join(u) => {
                if u == t {
                    return Err(err(i, format!("{t} joins itself")));
                }
                if joined[u.index()] {
                    return Err(err(i, format!("thread {u} joined twice")));
                }
                joined[u.index()] = true;
            }
            Op::Read(_) | Op::Write(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::TraceBuilder;

    #[test]
    fn valid_trace_passes() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").write(0, "x").release(0, "m");
        b.acquire(1, "m").read(1, "x").release(1, "m");
        assert!(b.finish().validate().is_ok());
    }

    #[test]
    fn double_acquire_is_rejected() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").acquire(1, "m");
        let e = b.finish().validate().unwrap_err();
        assert_eq!(e.at, 1);
        assert!(e.message.contains("already held"));
    }

    #[test]
    fn reentrant_acquire_is_rejected() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").acquire(0, "m");
        let e = b.finish().validate().unwrap_err();
        assert!(e.message.contains("not reentrant"));
    }

    #[test]
    fn release_without_acquire_is_rejected() {
        let mut b = TraceBuilder::new();
        b.release(0, "m");
        let e = b.finish().validate().unwrap_err();
        assert_eq!(e.at, 0);
        assert!(e.message.contains("not held"));
    }

    #[test]
    fn release_by_non_holder_is_rejected() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").release(1, "m");
        let e = b.finish().validate().unwrap_err();
        assert!(e.message.contains("held by t0"));
    }

    #[test]
    fn dangling_critical_section_is_allowed() {
        // A trace may end mid-critical-section (logging can stop anytime).
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").write(0, "x");
        assert!(b.finish().validate().is_ok());
    }

    #[test]
    fn fork_join_lifecycle_is_checked() {
        let mut b = TraceBuilder::new();
        b.fork(0, 1).write(1, "x").join(0, 1);
        assert!(b.finish().validate().is_ok());

        let mut b = TraceBuilder::new();
        b.fork(0, 1).join(0, 1).write(1, "x");
        let e = b.finish().validate().unwrap_err();
        assert!(e.message.contains("after having been joined"));
    }

    #[test]
    fn fork_after_first_event_is_rejected() {
        let mut b = TraceBuilder::new();
        b.write(1, "x").fork(0, 1);
        let e = b.finish().validate().unwrap_err();
        assert!(e.message.contains("already performed"));
    }

    #[test]
    fn self_fork_and_double_fork_are_rejected() {
        let mut b = TraceBuilder::new();
        b.fork(0, 0);
        assert!(b.finish().validate().is_err());

        let mut b = TraceBuilder::new();
        b.fork(0, 1).fork(2, 1);
        let e = b.finish().validate().unwrap_err();
        assert!(e.message.contains("forked twice"));
    }

    #[test]
    fn double_join_is_rejected() {
        let mut b = TraceBuilder::new();
        b.fork(0, 1).join(0, 1).join(2, 1);
        let e = b.finish().validate().unwrap_err();
        assert!(e.message.contains("joined twice"));
    }

    #[test]
    fn fork_after_join_is_rejected() {
        // Including the degenerate case where the joined thread never
        // performed an event of its own (its lifecycle still ended).
        let mut b = TraceBuilder::new();
        b.join(0, 1).fork(2, 1);
        let e = b.finish().validate().unwrap_err();
        assert_eq!(e.at, 1);
        assert!(e.message.contains("after having been joined"));
    }

    #[test]
    fn error_displays_with_event_index() {
        let mut b = TraceBuilder::new();
        b.release(3, "m");
        let e = b.finish().validate().unwrap_err();
        assert!(e.to_string().starts_with("invalid trace at event 0:"));
    }
}
