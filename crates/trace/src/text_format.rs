//! A human-readable, line-oriented trace format.
//!
//! This mirrors the "standard" (`.std`) format used by RAPID — the tool
//! the paper's artifact builds on — one event per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! main  acq  m
//! main  w    x
//! main  rel  m
//! main  fork worker
//! worker r   x
//! main  join worker
//! ```
//!
//! The operations are `r`, `w`, `acq`, `rel`, `fork`, `join`. Thread,
//! lock and variable tokens are arbitrary whitespace-free names, interned
//! to dense ids in order of first appearance.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::event::Op;
use crate::{Trace, TraceBuilder};

/// A syntax error while parsing the text trace format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseError {}

/// Serializes `trace` to the text format.
///
/// A mutable reference can be passed for `writer` (e.g. `&mut file`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_text<W: Write>(trace: &Trace, mut writer: W) -> io::Result<()> {
    for e in trace {
        let tname = trace.thread_name(e.tid);
        match e.op {
            Op::Read(x) => writeln!(writer, "{tname} r {}", trace.var_name(x))?,
            Op::Write(x) => writeln!(writer, "{tname} w {}", trace.var_name(x))?,
            Op::Acquire(l) => writeln!(writer, "{tname} acq {}", trace.lock_name(l))?,
            Op::Release(l) => writeln!(writer, "{tname} rel {}", trace.lock_name(l))?,
            Op::Fork(u) => writeln!(writer, "{tname} fork {}", trace.thread_name(u))?,
            Op::Join(u) => writeln!(writer, "{tname} join {}", trace.thread_name(u))?,
        }
    }
    Ok(())
}

/// Renders `trace` to a `String` in the text format.
pub fn to_text(trace: &Trace) -> String {
    let mut buf = Vec::new();
    write_text(trace, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("text format is always UTF-8")
}

/// Parses a trace from the text format.
///
/// # Errors
///
/// Returns a [`ParseError`] with the line number for malformed lines or
/// unknown operations.
pub fn parse_text(input: &str) -> Result<Trace, ParseError> {
    let mut b = TraceBuilder::new();
    let mut threads = ThreadInterner::default();
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(tname), Some(op), Some(operand)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(ParseError {
                line: lineno,
                message: format!("expected `<thread> <op> <operand>`, got `{line}`"),
            });
        };
        if let Some(extra) = parts.next() {
            return Err(ParseError {
                line: lineno,
                message: format!("unexpected trailing token `{extra}`"),
            });
        }
        let tid = threads.intern(tname, &mut b);
        match op {
            "r" => b.read(tid, operand),
            "w" => b.write(tid, operand),
            "acq" => b.acquire(tid, operand),
            "rel" => b.release(tid, operand),
            "fork" => {
                let child = threads.intern(operand, &mut b);
                b.fork(tid, child)
            }
            "join" => {
                let child = threads.intern(operand, &mut b);
                b.join(tid, child)
            }
            other => {
                return Err(ParseError {
                    line: lineno,
                    message: format!(
                        "unknown operation `{other}` (expected r, w, acq, rel, fork, join)"
                    ),
                });
            }
        };
    }
    Ok(b.finish())
}

/// Reads and parses a trace from any reader.
///
/// A mutable reference can be passed for `reader` (e.g. `&mut file`).
///
/// # Errors
///
/// Returns I/O errors as a [`ParseError`] at line 0, and syntax errors
/// with their line number.
pub fn read_text<R: Read>(mut reader: R) -> Result<Trace, ParseError> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf).map_err(|e| ParseError {
        line: 0,
        message: format!("I/O error: {e}"),
    })?;
    parse_text(&buf)
}

#[derive(Default)]
struct ThreadInterner {
    ids: std::collections::HashMap<String, u32>,
}

impl ThreadInterner {
    fn intern(&mut self, name: &str, b: &mut TraceBuilder) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.ids.len() as u32;
        self.ids.insert(name.to_owned(), id);
        b.name_thread(id, name);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::ThreadId;

    const SAMPLE: &str = "\
# a tiny racy program
main acq m
main w data
main rel m
main fork worker

worker r data
main join worker
";

    #[test]
    fn parses_sample_with_comments_and_blanks() {
        let t = parse_text(SAMPLE).unwrap();
        assert_eq!(t.len(), 6);
        assert_eq!(t.thread_count(), 2);
        assert_eq!(t.thread_name(ThreadId::new(0)), "main");
        assert_eq!(t.thread_name(ThreadId::new(1)), "worker");
        assert!(t.validate().is_ok());
    }

    #[test]
    fn round_trips_through_text() {
        let t = parse_text(SAMPLE).unwrap();
        let rendered = to_text(&t);
        let back = parse_text(&rendered).unwrap();
        assert_eq!(t.events(), back.events());
        assert_eq!(to_text(&back), rendered);
    }

    #[test]
    fn rejects_malformed_lines() {
        let e = parse_text("main acq\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expected"));
    }

    #[test]
    fn rejects_unknown_ops() {
        let e = parse_text("main cas x\n").unwrap_err();
        assert!(e.message.contains("unknown operation"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let e = parse_text("main r x junk\n").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn fork_targets_are_interned_as_threads() {
        let t = parse_text("a fork b\nb w x\n").unwrap();
        assert_eq!(t.thread_count(), 2);
        assert_eq!(t[1].tid, ThreadId::new(1));
    }

    #[test]
    fn read_text_works_over_readers() {
        let t = read_text(SAMPLE.as_bytes()).unwrap();
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn error_display_mentions_line() {
        let e = parse_text("???\n").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }
}
