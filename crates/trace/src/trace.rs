//! The [`Trace`] container and its [`TraceBuilder`].

use std::collections::HashMap;
use std::fmt;
use std::ops::Index;

use tc_core::ThreadId;

use crate::event::{Event, LockId, Op, VarId};
use crate::stats::TraceStats;
use crate::validate::ValidationError;

/// An immutable sequence of events observed from a concurrent execution.
///
/// Events are stored densely; thread, lock and variable identifiers are
/// dense indices. Human-readable names (when the trace was built by
/// name, e.g. parsed from a log) are kept in optional side tables.
///
/// The unique identifier of an event is its index in the trace, matching
/// the paper's convention that `(tid, local time)` identifies events.
#[derive(Clone, Default)]
pub struct Trace {
    events: Vec<Event>,
    thread_count: usize,
    lock_count: usize,
    var_count: usize,
    thread_names: Vec<String>,
    lock_names: Vec<String>,
    var_names: Vec<String>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of distinct threads (`max tid + 1`).
    pub fn thread_count(&self) -> usize {
        self.thread_count
    }

    /// Number of distinct locks.
    pub fn lock_count(&self) -> usize {
        self.lock_count
    }

    /// Number of distinct shared variables.
    pub fn var_count(&self) -> usize {
        self.var_count
    }

    /// The events in trace order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates over the events in trace order.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// The event at position `i`, if any.
    pub fn get(&self, i: usize) -> Option<&Event> {
        self.events.get(i)
    }

    /// The name of a thread if the trace carries names, else `t<i>`.
    pub fn thread_name(&self, t: ThreadId) -> String {
        self.thread_names
            .get(t.index())
            .filter(|s| !s.is_empty())
            .cloned()
            .unwrap_or_else(|| t.to_string())
    }

    /// The name of a lock if the trace carries names, else `l<i>`.
    pub fn lock_name(&self, l: LockId) -> String {
        self.lock_names
            .get(l.index())
            .filter(|s| !s.is_empty())
            .cloned()
            .unwrap_or_else(|| l.to_string())
    }

    /// The name of a variable if the trace carries names, else `x<i>`.
    pub fn var_name(&self, x: VarId) -> String {
        self.var_names
            .get(x.index())
            .filter(|s| !s.is_empty())
            .cloned()
            .unwrap_or_else(|| x.to_string())
    }

    /// Computes summary statistics (the columns of the paper's Tables 1
    /// and 3).
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(self)
    }

    /// Checks well-formedness (lock discipline and fork/join sanity).
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidationError`] encountered, with the event
    /// index and a description.
    pub fn validate(&self) -> Result<(), ValidationError> {
        crate::validate::validate(self)
    }

    /// Computes the local time of every event: `local_times()[i]` is
    /// `lTime(e_i)`, the 1-based count of events by `e_i`'s thread up to
    /// and including `e_i`.
    pub fn local_times(&self) -> Vec<u32> {
        let mut per_thread = vec![0u32; self.thread_count];
        self.events
            .iter()
            .map(|e| {
                let c = &mut per_thread[e.tid.index()];
                *c += 1;
                *c
            })
            .collect()
    }
}

impl Index<usize> for Trace {
    type Output = Event;

    fn index(&self, i: usize) -> &Event {
        &self.events[i]
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        let mut b = TraceBuilder::new();
        for e in iter {
            b.push(e);
        }
        b.finish()
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Trace({} events, {} threads, {} locks, {} vars)",
            self.len(),
            self.thread_count,
            self.lock_count,
            self.var_count
        )
    }
}

/// Incremental construction of a [`Trace`].
///
/// Two styles are supported and can be mixed:
///
/// - **by name** ([`read`](Self::read), [`acquire`](Self::acquire), …):
///   lock/variable names are interned to dense ids — convenient for
///   hand-written traces and parsers;
/// - **by id** ([`push`](Self::push), [`read_id`](Self::read_id), …):
///   zero-allocation, used by the synthetic generators.
///
/// # Example
///
/// ```rust
/// use tc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.fork(0, 1);
/// b.write(1, "data");
/// b.join(0, 1);
/// b.read(0, "data");
/// let trace = b.finish();
/// assert!(trace.validate().is_ok());
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Event>,
    locks: Interner,
    vars: Interner,
    thread_names: HashMap<u32, String>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Creates a builder with capacity reserved for `events` events.
    pub fn with_capacity(events: usize) -> Self {
        TraceBuilder {
            events: Vec::with_capacity(events),
            ..TraceBuilder::default()
        }
    }

    /// Appends a pre-constructed event (by-id style).
    pub fn push(&mut self, event: Event) -> &mut Self {
        self.events.push(event);
        self
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events have been appended.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    // ---- by-name API --------------------------------------------------

    /// Appends `r(var)` by thread `tid`.
    pub fn read(&mut self, tid: u32, var: &str) -> &mut Self {
        let x = self.vars.intern(var);
        self.push(Event::new(ThreadId::new(tid), Op::Read(VarId::new(x))))
    }

    /// Appends `w(var)` by thread `tid`.
    pub fn write(&mut self, tid: u32, var: &str) -> &mut Self {
        let x = self.vars.intern(var);
        self.push(Event::new(ThreadId::new(tid), Op::Write(VarId::new(x))))
    }

    /// Appends `acq(lock)` by thread `tid`.
    pub fn acquire(&mut self, tid: u32, lock: &str) -> &mut Self {
        let l = self.locks.intern(lock);
        self.push(Event::new(ThreadId::new(tid), Op::Acquire(LockId::new(l))))
    }

    /// Appends `rel(lock)` by thread `tid`.
    pub fn release(&mut self, tid: u32, lock: &str) -> &mut Self {
        let l = self.locks.intern(lock);
        self.push(Event::new(ThreadId::new(tid), Op::Release(LockId::new(l))))
    }

    /// Appends `fork(child)` by thread `tid`.
    pub fn fork(&mut self, tid: u32, child: u32) -> &mut Self {
        self.push(Event::new(
            ThreadId::new(tid),
            Op::Fork(ThreadId::new(child)),
        ))
    }

    /// Appends `join(child)` by thread `tid`.
    pub fn join(&mut self, tid: u32, child: u32) -> &mut Self {
        self.push(Event::new(
            ThreadId::new(tid),
            Op::Join(ThreadId::new(child)),
        ))
    }

    // ---- by-id API ----------------------------------------------------

    /// Appends `r(x)` by thread `tid` using raw ids.
    pub fn read_id(&mut self, tid: u32, x: u32) -> &mut Self {
        self.push(Event::new(ThreadId::new(tid), Op::Read(VarId::new(x))))
    }

    /// Appends `w(x)` by thread `tid` using raw ids.
    pub fn write_id(&mut self, tid: u32, x: u32) -> &mut Self {
        self.push(Event::new(ThreadId::new(tid), Op::Write(VarId::new(x))))
    }

    /// Appends `acq(l)` by thread `tid` using raw ids.
    pub fn acquire_id(&mut self, tid: u32, l: u32) -> &mut Self {
        self.push(Event::new(ThreadId::new(tid), Op::Acquire(LockId::new(l))))
    }

    /// Appends `rel(l)` by thread `tid` using raw ids.
    pub fn release_id(&mut self, tid: u32, l: u32) -> &mut Self {
        self.push(Event::new(ThreadId::new(tid), Op::Release(LockId::new(l))))
    }

    /// Records a human-readable name for thread `tid`.
    pub fn name_thread(&mut self, tid: u32, name: &str) -> &mut Self {
        self.thread_names.insert(tid, name.to_owned());
        self
    }

    /// Finalizes the builder into an immutable [`Trace`].
    pub fn finish(self) -> Trace {
        let mut thread_count = 0usize;
        let mut lock_count = self.locks.names.len();
        let mut var_count = self.vars.names.len();
        for e in &self.events {
            thread_count = thread_count.max(e.tid.index() + 1);
            match e.op {
                Op::Acquire(l) | Op::Release(l) => lock_count = lock_count.max(l.index() + 1),
                Op::Read(x) | Op::Write(x) => var_count = var_count.max(x.index() + 1),
                Op::Fork(u) | Op::Join(u) => thread_count = thread_count.max(u.index() + 1),
            }
        }
        let mut thread_names = vec![String::new(); thread_count];
        for (tid, name) in self.thread_names {
            if (tid as usize) < thread_count {
                thread_names[tid as usize] = name;
            }
        }
        Trace {
            events: self.events,
            thread_count,
            lock_count,
            var_count,
            thread_names,
            lock_names: self.locks.names,
            var_names: self.vars.names,
        }
    }
}

/// A simple string interner producing dense `u32` ids.
#[derive(Clone, Debug, Default)]
struct Interner {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_names_densely() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m");
        b.acquire(1, "n");
        b.release(1, "n");
        b.release(0, "m");
        b.write(0, "x");
        b.read(1, "x");
        let trace = b.finish();
        assert_eq!(trace.lock_count(), 2);
        assert_eq!(trace.var_count(), 1);
        assert_eq!(trace.lock_name(LockId::new(0)), "m");
        assert_eq!(trace.lock_name(LockId::new(1)), "n");
        assert_eq!(trace.var_name(VarId::new(0)), "x");
    }

    #[test]
    fn finish_counts_threads_including_forked_ones() {
        let mut b = TraceBuilder::new();
        b.fork(0, 7); // thread 7 never performs an event itself
        let trace = b.finish();
        assert_eq!(trace.thread_count(), 8);
    }

    #[test]
    fn by_id_and_by_name_apis_mix() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m"); // lock id 0
        b.release_id(0, 0);
        b.write_id(1, 5); // var ids up to 5 exist
        let trace = b.finish();
        assert_eq!(trace.lock_count(), 1);
        assert_eq!(trace.var_count(), 6);
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn local_times_are_per_thread_and_one_based() {
        let mut b = TraceBuilder::new();
        b.write(0, "x"); // t0 #1
        b.write(1, "x"); // t1 #1
        b.write(0, "x"); // t0 #2
        b.write(0, "x"); // t0 #3
        let trace = b.finish();
        assert_eq!(trace.local_times(), vec![1, 1, 2, 3]);
    }

    #[test]
    fn unnamed_entities_fall_back_to_dense_names() {
        let mut b = TraceBuilder::new();
        b.write_id(3, 2);
        let trace = b.finish();
        assert_eq!(trace.thread_name(ThreadId::new(3)), "t3");
        assert_eq!(trace.var_name(VarId::new(2)), "x2");
    }

    #[test]
    fn named_threads_are_preserved() {
        let mut b = TraceBuilder::new();
        b.write(0, "x");
        b.name_thread(0, "main");
        let trace = b.finish();
        assert_eq!(trace.thread_name(ThreadId::new(0)), "main");
    }

    #[test]
    fn trace_collects_from_event_iterator() {
        let events = [
            Event::new(ThreadId::new(0), Op::Write(VarId::new(0))),
            Event::new(ThreadId::new(1), Op::Read(VarId::new(0))),
        ];
        let trace: Trace = events.iter().copied().collect();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1], events[1]);
    }

    #[test]
    fn indexing_and_iteration_agree() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x");
        let trace = b.finish();
        let via_iter: Vec<Event> = trace.iter().copied().collect();
        assert_eq!(via_iter.len(), trace.len());
        assert_eq!(via_iter[0], trace[0]);
        let via_ref: Vec<&Event> = (&trace).into_iter().collect();
        assert_eq!(via_ref.len(), 2);
    }

    #[test]
    fn debug_shows_summary() {
        let mut b = TraceBuilder::new();
        b.write(0, "x");
        let s = format!("{:?}", b.finish());
        assert!(s.contains("1 events"));
        assert!(s.contains("1 threads"));
    }
}
