//! Trace summary statistics — the columns of the paper's Table 1
//! (aggregate) and Table 3 (per benchmark): events `N`, threads `T`,
//! memory locations `M`, locks `L`, and the synchronization /
//! read-write event split.

use std::fmt;

use crate::event::Op;
use crate::Trace;

/// Summary statistics of one trace.
///
/// # Example
///
/// ```rust
/// use tc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.acquire(0, "m").write(0, "x").release(0, "m").read(1, "x");
/// let stats = b.finish().stats();
/// assert_eq!(stats.events, 4);
/// assert_eq!(stats.sync_events, 2);
/// assert!((stats.sync_pct() - 50.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total number of events (the paper's `N`).
    pub events: usize,
    /// Number of distinct threads (`T`).
    pub threads: usize,
    /// Number of distinct memory locations (`M`).
    pub vars: usize,
    /// Number of distinct locks (`L`).
    pub locks: usize,
    /// Number of synchronization events (acquire/release/fork/join).
    pub sync_events: usize,
    /// Number of read events.
    pub read_events: usize,
    /// Number of write events.
    pub write_events: usize,
}

impl TraceStats {
    /// Computes the statistics of `trace`.
    pub fn of(trace: &Trace) -> TraceStats {
        let mut s = TraceStats {
            events: trace.len(),
            threads: trace.thread_count(),
            vars: trace.var_count(),
            locks: trace.lock_count(),
            ..TraceStats::default()
        };
        for e in trace {
            match e.op {
                Op::Read(_) => s.read_events += 1,
                Op::Write(_) => s.write_events += 1,
                _ => s.sync_events += 1,
            }
        }
        s
    }

    /// Percentage of synchronization events (the paper's "Sync. Events
    /// (%)" column); 0 for an empty trace.
    pub fn sync_pct(&self) -> f64 {
        percentage(self.sync_events, self.events)
    }

    /// Percentage of read/write events (the paper's "R/W Events (%)").
    pub fn rw_pct(&self) -> f64 {
        percentage(self.read_events + self.write_events, self.events)
    }
}

fn percentage(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={} T={} M={} L={} sync={:.1}% rw={:.1}%",
            self.events,
            self.threads,
            self.vars,
            self.locks,
            self.sync_pct(),
            self.rw_pct()
        )
    }
}

/// Aggregates min/max/mean over a set of per-trace statistics, as in the
/// paper's Table 1.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StatsAggregate {
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl StatsAggregate {
    /// Aggregates an iterator of values; returns zeros when empty.
    pub fn of(values: impl IntoIterator<Item = f64>) -> StatsAggregate {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut n = 0usize;
        for v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            n += 1;
        }
        if n == 0 {
            StatsAggregate::default()
        } else {
            StatsAggregate {
                min,
                max,
                mean: sum / n as f64,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    #[test]
    fn stats_count_event_kinds() {
        let mut b = TraceBuilder::new();
        b.fork(0, 1);
        b.acquire(1, "m").write(1, "x").release(1, "m");
        b.read(0, "x").read(0, "x");
        b.join(0, 1);
        let s = b.finish().stats();
        assert_eq!(s.events, 7);
        assert_eq!(s.threads, 2);
        assert_eq!(s.locks, 1);
        assert_eq!(s.vars, 1);
        assert_eq!(s.sync_events, 4); // fork, acq, rel, join
        assert_eq!(s.read_events, 2);
        assert_eq!(s.write_events, 1);
        assert!((s.sync_pct() - 4.0 / 7.0 * 100.0).abs() < 1e-9);
        assert!((s.rw_pct() - 3.0 / 7.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_has_zero_percentages() {
        let s = TraceBuilder::new().finish().stats();
        assert_eq!(s.sync_pct(), 0.0);
        assert_eq!(s.rw_pct(), 0.0);
    }

    #[test]
    fn aggregate_computes_min_max_mean() {
        let a = StatsAggregate::of([1.0, 2.0, 6.0]);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 6.0);
        assert!((a.mean - 3.0).abs() < 1e-12);
        assert_eq!(StatsAggregate::of([]), StatsAggregate::default());
    }

    #[test]
    fn display_is_one_line() {
        let mut b = TraceBuilder::new();
        b.write(0, "x");
        let s = b.finish().stats().to_string();
        assert!(s.contains("N=1"));
        assert!(!s.contains('\n'));
    }
}
