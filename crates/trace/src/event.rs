//! Events and their operations (Section 2.1 of the paper).

use std::fmt;

use tc_core::ThreadId;

/// A dense lock identifier, interned by the owning [`Trace`](crate::Trace).
///
/// # Example
///
/// ```rust
/// use tc_trace::LockId;
/// let l = LockId::new(2);
/// assert_eq!(l.index(), 2);
/// assert_eq!(l.to_string(), "l2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LockId(u32);

/// A dense shared-variable (memory location) identifier, interned by the
/// owning [`Trace`](crate::Trace).
///
/// # Example
///
/// ```rust
/// use tc_trace::VarId;
/// let x = VarId::new(0);
/// assert_eq!(x.to_string(), "x0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VarId(u32);

macro_rules! impl_id {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Creates an id from its dense index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                $ty(index)
            }

            /// The raw dense index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The dense index as a `usize`, for array indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $ty {
            #[inline]
            fn from(index: u32) -> Self {
                $ty(index)
            }
        }

        impl From<$ty> for u32 {
            #[inline]
            fn from(id: $ty) -> Self {
                id.0
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

impl_id!(LockId, "l");
impl_id!(VarId, "x");

/// The operation performed by an event.
///
/// Reads/writes target shared variables; acquires/releases target locks.
/// `Fork`/`Join` are the thread-lifecycle events the paper omits "for
/// ease of presentation" (footnote 2) — handling them is straightforward
/// and all engines in this workspace support them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `r(x)`: read of shared variable `x`.
    Read(VarId),
    /// `w(x)`: write of shared variable `x`.
    Write(VarId),
    /// `acq(ℓ)`: acquire of lock `ℓ`.
    Acquire(LockId),
    /// `rel(ℓ)`: release of lock `ℓ`.
    Release(LockId),
    /// `fork(u)`: creation of thread `u` (orders before `u`'s first
    /// event).
    Fork(ThreadId),
    /// `join(u)`: join on thread `u` (orders after `u`'s last event).
    Join(ThreadId),
}

impl Op {
    /// Returns `true` for synchronization operations (acquire/release
    /// and fork/join), the events HB is built from.
    pub fn is_sync(self) -> bool {
        matches!(
            self,
            Op::Acquire(_) | Op::Release(_) | Op::Fork(_) | Op::Join(_)
        )
    }

    /// Returns `true` for memory-access operations (read/write).
    pub fn is_access(self) -> bool {
        matches!(self, Op::Read(_) | Op::Write(_))
    }

    /// The accessed variable, for read/write operations.
    pub fn variable(self) -> Option<VarId> {
        match self {
            Op::Read(x) | Op::Write(x) => Some(x),
            _ => None,
        }
    }

    /// The lock operated on, for acquire/release operations.
    pub fn lock(self) -> Option<LockId> {
        match self {
            Op::Acquire(l) | Op::Release(l) => Some(l),
            _ => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read(x) => write!(f, "r({x})"),
            Op::Write(x) => write!(f, "w({x})"),
            Op::Acquire(l) => write!(f, "acq({l})"),
            Op::Release(l) => write!(f, "rel({l})"),
            Op::Fork(t) => write!(f, "fork({t})"),
            Op::Join(t) => write!(f, "join({t})"),
        }
    }
}

/// One event of a trace: the performing thread and its operation.
///
/// The event's unique identifier is its position in the owning
/// [`Trace`](crate::Trace); events themselves stay 8 bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Event {
    /// The thread that performed this event.
    pub tid: ThreadId,
    /// The operation performed.
    pub op: Op,
}

impl Event {
    /// Creates an event.
    pub const fn new(tid: ThreadId, op: Op) -> Self {
        Event { tid, op }
    }

    /// Returns `true` if `self` and `other` are *conflicting*: same
    /// variable, different threads, at least one write (Section 2.1).
    pub fn conflicts_with(&self, other: &Event) -> bool {
        if self.tid == other.tid {
            return false;
        }
        match (self.op.variable(), other.op.variable()) {
            (Some(x), Some(y)) if x == y => {
                matches!(self.op, Op::Write(_)) || matches!(other.op, Op::Write(_))
            }
            _ => false,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.tid, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn op_classification() {
        assert!(Op::Acquire(LockId::new(0)).is_sync());
        assert!(Op::Fork(t(1)).is_sync());
        assert!(!Op::Read(VarId::new(0)).is_sync());
        assert!(Op::Write(VarId::new(0)).is_access());
        assert!(!Op::Release(LockId::new(0)).is_access());
    }

    #[test]
    fn op_accessors() {
        assert_eq!(Op::Read(VarId::new(3)).variable(), Some(VarId::new(3)));
        assert_eq!(Op::Acquire(LockId::new(2)).lock(), Some(LockId::new(2)));
        assert_eq!(Op::Read(VarId::new(3)).lock(), None);
        assert_eq!(Op::Join(t(1)).variable(), None);
    }

    #[test]
    fn conflicting_events_require_shared_variable_and_a_write() {
        let w0 = Event::new(t(0), Op::Write(VarId::new(0)));
        let r1 = Event::new(t(1), Op::Read(VarId::new(0)));
        let r2 = Event::new(t(2), Op::Read(VarId::new(0)));
        let w_other = Event::new(t(1), Op::Write(VarId::new(1)));
        let w_same_thread = Event::new(t(0), Op::Write(VarId::new(0)));

        assert!(w0.conflicts_with(&r1));
        assert!(r1.conflicts_with(&w0)); // symmetric
        assert!(!r1.conflicts_with(&r2)); // two reads never conflict
        assert!(!w0.conflicts_with(&w_other)); // different variables
        assert!(!w0.conflicts_with(&w_same_thread)); // same thread
    }

    #[test]
    fn sync_events_never_conflict() {
        let a = Event::new(t(0), Op::Acquire(LockId::new(0)));
        let b = Event::new(t(1), Op::Release(LockId::new(0)));
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn display_uses_paper_notation() {
        let e = Event::new(t(2), Op::Acquire(LockId::new(1)));
        assert_eq!(e.to_string(), "⟨t2, acq(l1)⟩");
        assert_eq!(Op::Fork(t(4)).to_string(), "fork(t4)");
        assert_eq!(Op::Write(VarId::new(0)).to_string(), "w(x0)");
    }

    #[test]
    fn event_is_small() {
        // Events number in the hundreds of millions in the paper's
        // traces; the representation must stay compact.
        assert!(std::mem::size_of::<Event>() <= 12);
    }
}
