//! Concurrent execution traces: the input substrate for all partial-order
//! computations in this workspace.
//!
//! A [`Trace`] is a sequence of [`Event`]s — reads, writes, lock
//! acquires/releases, and (as an extension the paper calls
//! "straightforward") thread fork/join — in program observation order
//! (Section 2.1 of the tree-clock paper).
//!
//! The crate provides everything a dynamic-analysis front end needs:
//!
//! - an [`Event`]/[`Op`] model with dense interned identifiers
//!   ([`ThreadId`], [`LockId`], [`VarId`]);
//! - a [`TraceBuilder`] for programmatic construction (by name or by raw
//!   id);
//! - well-formedness [`validation`](validate) (lock discipline,
//!   fork/join sanity);
//! - [`stats`] mirroring the paper's Table 1/Table 3 columns;
//! - a line-oriented [text format](text_format) and a compact
//!   [binary format](binary_format) for logging and replaying traces;
//! - seeded synthetic [generators](gen), including the four controlled
//!   scenarios of the paper's Figure 10 and a general mixed workload
//!   used to simulate the paper's 153-trace benchmark suite;
//! - [transformations](transform) — well-formedness-preserving slicing,
//!   thread projection and per-variable focusing.
//!
//! # Example
//!
//! ```rust
//! use tc_trace::{Op, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! b.acquire(0, "m");
//! b.write(0, "x");
//! b.release(0, "m");
//! b.acquire(1, "m");
//! b.read(1, "x");
//! b.release(1, "m");
//! let trace = b.finish();
//!
//! assert_eq!(trace.len(), 6);
//! assert_eq!(trace.thread_count(), 2);
//! trace.validate()?;
//! assert!(matches!(trace[1].op, Op::Write(_)));
//! # Ok::<(), tc_trace::ValidationError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binary_format;
pub mod event;
pub mod gen;
pub mod stats;
pub mod stream;
pub mod text_format;
pub mod trace;
pub mod transform;
pub mod validate;
pub mod wire;

pub use event::{Event, LockId, Op, VarId};
pub use stats::TraceStats;
pub use stream::{
    EventReader, InternerState, SessionValidator, StreamError, StreamInterner, ValidatorState,
};
pub use trace::{Trace, TraceBuilder};
pub use validate::ValidationError;
pub use wire::{ClusterMsg, Frame, WireError};

pub use tc_core::{LocalTime, ThreadId};
