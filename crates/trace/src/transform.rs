//! Trace transformations: slicing, projection and filtering.
//!
//! These are the utilities a dynamic-analysis workflow needs around the
//! core algorithms — cutting a failing trace down to a window, focusing
//! on one variable, or projecting onto a subset of threads — while
//! always producing *well-formed* traces (lock discipline repaired
//! where a cut would break it).

use std::collections::HashSet;

use tc_core::ThreadId;

use crate::event::Op;
use crate::{Trace, TraceBuilder, VarId};

/// Returns the prefix of `trace` with the first `n` events.
///
/// A prefix of a well-formed trace is always well-formed (critical
/// sections may dangle open, which validation permits — logging can
/// stop at any point).
pub fn prefix(trace: &Trace, n: usize) -> Trace {
    trace.iter().take(n).copied().collect()
}

/// Returns the suffix of `trace` starting at event `from`, with lock
/// discipline repaired: releases of locks whose acquire fell before the
/// cut are dropped, and re-acquires of locks still "held" from before
/// the cut are dropped along with their critical sections' releases.
///
/// The result is well-formed and contains every event of the suffix
/// that does not depend on pre-cut lock state.
pub fn suffix(trace: &Trace, from: usize) -> Trace {
    let mut held_before: HashSet<u32> = HashSet::new();
    for e in trace.iter().take(from) {
        match e.op {
            Op::Acquire(l) => {
                held_before.insert(l.raw());
            }
            Op::Release(l) => {
                held_before.remove(&l.raw());
            }
            _ => {}
        }
    }
    let mut b = TraceBuilder::with_capacity(trace.len().saturating_sub(from));
    // Locks that were held across the cut: their first post-cut release
    // has no matching acquire and must be dropped (after which the lock
    // becomes usable again).
    let mut pending_release = held_before;
    // Threads joined before the cut would make post-cut events invalid;
    // forks before the cut simply vanish (threads appear spontaneously,
    // which the model allows).
    let mut joined: HashSet<u32> = HashSet::new();
    for e in trace.iter().take(from) {
        if let Op::Join(u) = e.op {
            joined.insert(u.raw());
        }
    }
    for e in trace.iter().skip(from) {
        if joined.contains(&e.tid.raw()) {
            continue; // thread logically terminated before the cut
        }
        match e.op {
            Op::Release(l) if pending_release.contains(&l.raw()) => {
                pending_release.remove(&l.raw());
            }
            Op::Fork(u) | Op::Join(u) if joined.contains(&u.raw()) => {}
            _ => {
                b.push(*e);
            }
        }
    }
    b.finish()
}

/// Keeps only the events of the given `threads` (plus fork/join events
/// whose *target* is kept, when the forking thread is kept too).
///
/// Lock discipline is preserved automatically: a critical section
/// belongs to one thread, so dropping whole threads never splits one.
pub fn project_threads(trace: &Trace, threads: &[ThreadId]) -> Trace {
    let keep: HashSet<u32> = threads.iter().map(|t| t.raw()).collect();
    let mut b = TraceBuilder::with_capacity(trace.len());
    for e in trace {
        if !keep.contains(&e.tid.raw()) {
            continue;
        }
        match e.op {
            Op::Fork(u) | Op::Join(u) if !keep.contains(&u.raw()) => {
                // Lifecycle event for a dropped thread: drop it too.
            }
            _ => {
                b.push(*e);
            }
        }
    }
    b.finish()
}

/// Keeps synchronization events and only the accesses to variable `x`
/// — the "checking for data races on a specific variable" analysis the
/// paper mentions as a lighter-weight client (Section 6).
pub fn focus_variable(trace: &Trace, x: VarId) -> Trace {
    let mut b = TraceBuilder::with_capacity(trace.len());
    for e in trace {
        match e.op {
            Op::Read(y) | Op::Write(y) if y != x => {}
            _ => {
                b.push(*e);
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadSpec;

    fn sample() -> Trace {
        WorkloadSpec {
            threads: 5,
            locks: 3,
            vars: 8,
            events: 2_000,
            sync_ratio: 0.25,
            fork_join: true,
            seed: 12,
            ..WorkloadSpec::default()
        }
        .generate()
    }

    #[test]
    fn prefixes_are_well_formed_at_every_cut() {
        let t = sample();
        for n in [0, 1, 7, 100, t.len() / 2, t.len()] {
            let p = prefix(&t, n);
            assert_eq!(p.len(), n.min(t.len()));
            p.validate().expect("prefix must stay well-formed");
        }
    }

    #[test]
    fn suffixes_are_well_formed_at_every_cut() {
        let t = sample();
        for from in [0, 1, 13, 500, t.len() / 2, t.len()] {
            let s = suffix(&t, from);
            s.validate()
                .unwrap_or_else(|e| panic!("suffix at {from} invalid: {e}"));
            assert!(s.len() <= t.len() - from.min(t.len()));
        }
    }

    #[test]
    fn suffix_drops_orphan_releases_only() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m"); // before the cut
        b.write(0, "x"); // before the cut
        b.release(0, "m"); // after: orphan, dropped
        b.acquire(1, "m"); // after: valid again
        b.release(1, "m");
        let t = b.finish();
        let s = suffix(&t, 2);
        assert_eq!(s.len(), 2);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn projection_keeps_only_selected_threads() {
        let t = sample();
        let keep = [ThreadId::new(0), ThreadId::new(2)];
        let p = project_threads(&t, &keep);
        assert!(p.validate().is_ok());
        assert!(p.iter().all(|e| e.tid.raw() == 0 || e.tid.raw() == 2));
        assert!(!p.is_empty());
    }

    #[test]
    fn projection_drops_lifecycle_of_dropped_threads() {
        let mut b = TraceBuilder::new();
        b.fork(0, 1).fork(0, 2);
        b.write(1, "x").write(2, "x");
        b.join(0, 1).join(0, 2);
        let t = b.finish();
        let p = project_threads(&t, &[ThreadId::new(0), ThreadId::new(1)]);
        assert!(p.validate().is_ok());
        // fork(2)/join(2) gone; fork(1)/join(1) kept.
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn focus_keeps_sync_and_one_variable() {
        let t = sample();
        let f = focus_variable(&t, VarId::new(0));
        assert!(f.validate().is_ok());
        for e in &f {
            if let Some(x) = e.op.variable() {
                assert_eq!(x, VarId::new(0));
            }
        }
        let s = f.stats();
        assert_eq!(s.sync_events, t.stats().sync_events);
    }

    #[test]
    fn focus_preserves_the_targeted_accesses_and_their_sync_context() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").write(0, "y");
        b.acquire(0, "m").release(0, "m");
        b.acquire(1, "m").release(1, "m");
        b.write(1, "x").write(1, "y");
        let t = b.finish();
        let f = focus_variable(&t, VarId::new(0));
        // Both x-writes survive, both critical sections survive, the
        // y-writes are gone: HB ordering between the x-accesses (through
        // the lock) is computable from the focused trace alone.
        assert_eq!(f.iter().filter(|e| e.op.variable().is_some()).count(), 2);
        assert_eq!(f.stats().sync_events, 4);
        assert_eq!(f.len(), 6);
    }
}
