//! The schedulable-happens-before (SHB) engine: Algorithm 4 of the
//! paper, after Mathur, Kini and Viswanathan (OOPSLA 2018).
//!
//! SHB strengthens HB with, for every read `r`, an order from the last
//! write `lw(r)` of the same variable to `r`. The engine additionally
//! maintains one last-write clock `LW_x` per variable: reads join it,
//! writes store their timestamp into it with `CopyCheckMonotone` — the
//! tree clock tests monotonicity in O(1) and deep-copies only when the
//! write races with a read (Section 5.1).

use tc_core::{ClockPool, CopyMode, LazyClock, LogicalClock, ThreadId, VectorTime};
use tc_trace::{Event, LockId, Op, Trace, VarId};

use crate::metrics::RunMetrics;
use crate::sync_core::SyncCore;

/// A streaming SHB timestamping engine.
///
/// # Example
///
/// ```rust
/// use tc_core::{LogicalClock, ThreadId, TreeClock};
/// use tc_orders::ShbEngine;
/// use tc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.write(0, "x");
/// b.read(1, "x"); // ordered after t0's write under SHB (not under HB)
/// let trace = b.finish();
///
/// let mut shb = ShbEngine::<TreeClock>::new(&trace);
/// for e in &trace {
///     shb.process(e);
/// }
/// assert_eq!(shb.clock_of(ThreadId::new(1)).unwrap().get(ThreadId::new(0)), 1);
/// ```
pub struct ShbEngine<C> {
    core: SyncCore<C>,
    /// Lazy `LW_x` slots: a variable that is never written costs one
    /// `Option` discriminant; the clock materializes (from the pool) at
    /// the first write.
    last_write: Vec<LazyClock<C>>,
}

impl<C: LogicalClock> ShbEngine<C> {
    /// Creates an engine sized for `trace`.
    pub fn new(trace: &Trace) -> Self {
        Self::with_pool(trace, ClockPool::new())
    }

    /// Creates an engine sized for `trace` that draws its clocks from
    /// `pool`; reclaim it with [`into_pool`](Self::into_pool).
    pub fn with_pool(trace: &Trace, pool: ClockPool<C>) -> Self {
        ShbEngine {
            core: SyncCore::for_trace_with_pool(trace, pool),
            last_write: (0..trace.var_count()).map(|_| LazyClock::empty()).collect(),
        }
    }

    /// Tears the engine down, releasing every clock it created into its
    /// pool for the next run to reuse.
    pub fn into_pool(self) -> ClockPool<C> {
        let mut pool = self.core.into_pool();
        for mut lw in self.last_write {
            lw.release_into(&mut pool);
        }
        pool
    }

    /// Heap bytes currently owned by the engine's clocks (thread, lock
    /// and materialized last-write clocks).
    pub fn clock_bytes(&self) -> usize {
        self.core.clock_bytes()
            + self
                .last_write
                .iter()
                .map(LazyClock::heap_bytes)
                .sum::<usize>()
    }

    /// Creates an engine with capacity hints that draws its clocks
    /// from `pool` — the streaming constructor, where no [`Trace`] is
    /// ever materialized.
    pub fn with_capacity(threads: usize, locks: usize, vars: usize, pool: ClockPool<C>) -> Self {
        ShbEngine {
            core: SyncCore::with_pool(threads, locks, pool),
            last_write: (0..vars).map(|_| LazyClock::empty()).collect(),
        }
    }

    /// Releases thread `t`'s clock into the pool; see
    /// [`HbEngine::retire_thread`](crate::HbEngine::retire_thread).
    pub fn retire_thread(&mut self, t: ThreadId) -> bool {
        self.core.retire_thread(t)
    }

    /// `true` once [`retire_thread`](Self::retire_thread) released `t`.
    pub fn is_retired(&self, t: ThreadId) -> bool {
        self.core.is_retired(t)
    }

    /// Re-arms a retired (or never-seen) thread slot for a recycled
    /// occupant; see [`HbEngine::adopt_thread`](crate::HbEngine::adopt_thread).
    pub fn adopt_thread(&mut self, t: ThreadId, base: tc_core::LocalTime) {
        self.core.adopt_thread(t, base);
    }

    /// Pointwise minimum over live thread clocks; see
    /// [`HbEngine::live_floor`](crate::HbEngine::live_floor).
    pub fn live_floor(&self, floor: &mut Vec<tc_core::LocalTime>) -> bool {
        self.core.live_floor(floor)
    }

    /// Number of threads retired so far.
    pub fn retired_count(&self) -> usize {
        self.core.retired_count()
    }

    /// Evicts every materialized lock and last-write clock dominated by
    /// the pointwise minimum over live thread clocks; returns the
    /// number evicted. Value-preserving only under fork discipline —
    /// see [`HbEngine::evict_dominated`](crate::HbEngine::evict_dominated).
    pub fn evict_dominated(&mut self) -> usize {
        let mut floor = Vec::new();
        if !self.core.live_floor(&mut floor) {
            return 0;
        }
        let mut evicted = self.core.evict_dominated_locks(&floor);
        for lw in &mut self.last_write {
            let dominated = lw
                .get()
                .is_some_and(|c| crate::sync_core::clock_dominated(c, &floor));
            if dominated {
                lw.release_into(&mut self.core.pool);
                evicted += 1;
            }
        }
        evicted
    }

    /// Read-only access to the engine's clock pool (telemetry).
    pub fn pool(&self) -> &ClockPool<C> {
        self.core.pool_ref()
    }

    /// Captures the engine's value-level state for a checkpoint.
    pub fn export_state(&self) -> crate::snapshot::EngineState {
        crate::snapshot::EngineState {
            core: self.core.export_core(),
            vars: self
                .last_write
                .iter()
                .map(|lw| crate::snapshot::VarClocks {
                    last_write: lw.get().map(crate::snapshot::ClockValue::capture),
                    reads: Vec::new(),
                    lrds: Vec::new(),
                })
                .collect(),
        }
    }

    /// Rebuilds an engine from a checkpointed state, drawing clocks
    /// from `pool`. Work metrics restart at zero.
    pub fn from_state(state: &crate::snapshot::EngineState, pool: ClockPool<C>) -> Self {
        let mut core = SyncCore::from_core_state(&state.core, pool);
        let last_write = state
            .vars
            .iter()
            .map(|v| match &v.last_write {
                Some(value) => LazyClock::from_clock(value.restore_from_pool(&mut core.pool)),
                None => LazyClock::empty(),
            })
            .collect();
        ShbEngine { core, last_write }
    }

    fn ensure_var(&mut self, x: VarId) {
        if x.index() >= self.last_write.len() {
            self.last_write.resize_with(x.index() + 1, LazyClock::empty);
        }
    }

    /// Moves one conflict-free partition (threads, locks, and the
    /// partition variables' `LW_x` clocks) into a shard engine that can
    /// process the partition's events independently; see
    /// [`HbEngine::extract_epoch_shard`](crate::HbEngine::extract_epoch_shard).
    pub fn extract_epoch_shard(
        &mut self,
        tids: &[ThreadId],
        locks: &[LockId],
        vars: &[VarId],
        pool: ClockPool<C>,
    ) -> Self {
        let core = self.core.extract_shard(tids, locks, pool);
        let mut last_write: Vec<LazyClock<C>> = (0..self.last_write.len())
            .map(|_| LazyClock::empty())
            .collect();
        for &x in vars {
            if x.index() < self.last_write.len() {
                std::mem::swap(&mut last_write[x.index()], &mut self.last_write[x.index()]);
            }
        }
        ShbEngine { core, last_write }
    }

    /// Moves a partition's state back from a shard produced by
    /// [`extract_epoch_shard`](Self::extract_epoch_shard); returns the
    /// shard's pool for reuse.
    pub fn absorb_epoch_shard(
        &mut self,
        mut shard: Self,
        tids: &[ThreadId],
        locks: &[LockId],
        vars: &[VarId],
    ) -> ClockPool<C> {
        if shard.last_write.len() > self.last_write.len() {
            self.last_write
                .resize_with(shard.last_write.len(), LazyClock::empty);
        }
        for &x in vars {
            std::mem::swap(
                &mut self.last_write[x.index()],
                &mut shard.last_write[x.index()],
            );
        }
        let mut pool = self.core.absorb_shard(shard.core, tids, locks);
        for mut lw in shard.last_write {
            lw.release_into(&mut pool);
        }
        pool
    }

    /// Processes one event (events must be fed in trace order).
    pub fn process(&mut self, e: &Event) {
        self.process_impl::<false>(e);
    }

    /// Like [`process`](Self::process), with exact per-entry work
    /// accounting in [`metrics`](Self::metrics).
    pub fn process_counted(&mut self, e: &Event) {
        self.process_impl::<true>(e);
    }

    fn process_impl<const COUNT: bool>(&mut self, e: &Event) {
        self.core.begin_event(e.tid);
        if self.core.process_sync::<COUNT>(e) {
            return;
        }
        match e.op {
            Op::Read(x) => {
                self.ensure_var(x);
                // Lazy: reading a never-written variable orders nothing —
                // skip the join entirely (no operation, no work).
                if let Some(lw) = self.last_write[x.index()].get() {
                    let clock = self.core.clock_mut(e.tid);
                    if COUNT {
                        let s = clock.join_counted(lw);
                        self.core.metrics.record_join(s);
                    } else {
                        clock.join(lw);
                        self.core.metrics.record_join_uncounted();
                    }
                }
            }
            Op::Write(x) => {
                self.ensure_var(x);
                let (pool, clock) = self.core.pool_and_clock(e.tid);
                let lw = self.last_write[x.index()].get_or_acquire(pool);
                let mode = if COUNT {
                    let (mode, s) = lw.copy_check_monotone_counted(clock);
                    self.core.metrics.record_copy(s);
                    mode
                } else {
                    let mode = lw.copy_check_monotone(clock);
                    self.core.metrics.record_copy_uncounted();
                    mode
                };
                if mode == CopyMode::Deep {
                    self.core.metrics.record_deep_copy();
                }
            }
            _ => unreachable!("process_sync handled synchronization events"),
        }
    }

    /// The current clock of thread `t`, if `t` has appeared.
    pub fn clock_of(&self, t: ThreadId) -> Option<&C> {
        self.core.clock(t)
    }

    /// The current last-write clock of variable `x`, if any write
    /// occurred.
    pub fn last_write_clock(&self, x: VarId) -> Option<&C> {
        self.last_write.get(x.index()).and_then(LazyClock::get)
    }

    /// The current vector timestamp of thread `t`.
    pub fn timestamp_of(&self, t: ThreadId) -> VectorTime {
        self.core.timestamp(t)
    }

    /// The work metrics accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.core.metrics
    }

    /// Runs the whole trace (fast path) and returns the metrics; only
    /// the operation counts are populated.
    pub fn run(trace: &Trace) -> RunMetrics {
        Self::run_pooled(trace, &mut ClockPool::new())
    }

    /// [`run`](Self::run) drawing clocks from (and returning them to)
    /// `pool` — the steady-state, allocation-free entry point.
    pub fn run_pooled(trace: &Trace, pool: &mut ClockPool<C>) -> RunMetrics {
        let mut engine = ShbEngine::<C>::with_pool(trace, std::mem::take(pool));
        for e in trace {
            engine.process(e);
        }
        let metrics = engine.core.metrics;
        *pool = engine.into_pool();
        metrics
    }

    /// Runs the whole trace with exact work accounting.
    pub fn run_counted(trace: &Trace) -> RunMetrics {
        Self::run_counted_pooled(trace, &mut ClockPool::new())
    }

    /// [`run_counted`](Self::run_counted) with pooled clocks.
    pub fn run_counted_pooled(trace: &Trace, pool: &mut ClockPool<C>) -> RunMetrics {
        let mut engine = ShbEngine::<C>::with_pool(trace, std::mem::take(pool));
        for e in trace {
            engine.process_counted(e);
        }
        let metrics = engine.core.metrics;
        *pool = engine.into_pool();
        metrics
    }

    /// Runs the whole trace collecting each event's SHB timestamp.
    pub fn collect_timestamps(trace: &Trace) -> Vec<VectorTime> {
        Self::collect_timestamps_pooled(trace, &mut ClockPool::new())
    }

    /// [`collect_timestamps`](Self::collect_timestamps) with pooled
    /// clocks.
    pub fn collect_timestamps_pooled(trace: &Trace, pool: &mut ClockPool<C>) -> Vec<VectorTime> {
        let mut engine = ShbEngine::<C>::with_pool(trace, std::mem::take(pool));
        let mut out = Vec::with_capacity(trace.len());
        for e in trace {
            engine.process(e);
            out.push(engine.timestamp_of(e.tid));
        }
        *pool = engine.into_pool();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::{TreeClock, VectorClock};
    use tc_trace::TraceBuilder;

    fn vt(v: &[u32]) -> VectorTime {
        VectorTime::from(v.to_vec())
    }

    #[test]
    fn read_is_ordered_after_its_last_write() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x").write(1, "y").read(2, "y");
        let trace = b.finish();
        let ts = ShbEngine::<TreeClock>::collect_timestamps(&trace);
        assert_eq!(ts[1], vt(&[1, 1])); // r(x) sees w(x)
        assert_eq!(ts[3], vt(&[1, 2, 1])); // r(y) sees w(y) and, transitively, w(x)
    }

    #[test]
    fn writes_are_not_ordered_after_conflicting_accesses() {
        // SHB adds only lw(r) -> r edges: a later write is ordered after
        // neither the previous write nor the previous read (both pairs
        // are SHB races).
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x").write(2, "x");
        let trace = b.finish();
        let ts = ShbEngine::<TreeClock>::collect_timestamps(&trace);
        assert_eq!(ts[2], vt(&[0, 0, 1]));
    }

    #[test]
    fn racy_write_triggers_deep_copy_only_for_tree_clocks() {
        // t0 writes x; t1 reads x (ordered); t1 writes x while t0's
        // LW still knows... construct a genuinely racy write:
        // t0: w(x); t1: w(x) — the second write is concurrent with the
        // first, so LW_x ⋢ C_t1 and CopyCheckMonotone must deep-copy.
        let mut b = TraceBuilder::new();
        b.write(0, "x").write(1, "x");
        let trace = b.finish();
        let m = ShbEngine::<TreeClock>::run(&trace);
        assert_eq!(m.deep_copies, 1);
    }

    #[test]
    fn ordered_writes_use_monotone_copy() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x").write(1, "x");
        let trace = b.finish();
        let m = ShbEngine::<TreeClock>::run(&trace);
        // t1's write is SHB-after t0's write (through the read join), so
        // the copy is monotone.
        assert_eq!(m.deep_copies, 0);
    }

    #[test]
    fn shb_contains_hb() {
        use crate::hb::HbEngine;
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").write(0, "x").release(0, "m");
        b.acquire(1, "m").read(1, "x").release(1, "m");
        b.write(2, "x");
        let trace = b.finish();
        let hb = HbEngine::<TreeClock>::collect_timestamps(&trace);
        let shb = ShbEngine::<TreeClock>::collect_timestamps(&trace);
        for (h, s) in hb.iter().zip(shb.iter()) {
            assert!(h.leq(s), "SHB timestamp must dominate HB timestamp");
        }
    }

    #[test]
    fn pooled_reruns_are_allocation_free() {
        let mut b = TraceBuilder::new();
        for i in 0..40u32 {
            let t = i % 4;
            b.write_id(t, i % 3);
            b.read_id((t + 1) % 4, i % 3);
            b.acquire_id(t, 0);
            b.release_id(t, 0);
        }
        let trace = b.finish();
        let mut pool = ClockPool::<TreeClock>::new();
        let first = ShbEngine::<TreeClock>::run_pooled(&trace, &mut pool);
        let fresh_after_first = pool.fresh();
        assert!(fresh_after_first > 0, "first run must allocate clocks");
        let second = ShbEngine::<TreeClock>::run_pooled(&trace, &mut pool);
        assert_eq!(
            pool.fresh(),
            fresh_after_first,
            "steady state must allocate no new clocks"
        );
        assert!(pool.recycled() >= fresh_after_first);
        assert_eq!(first, second, "pooling must not change any metric");
    }

    #[test]
    fn tree_and_vector_agree_on_shb() {
        let mut b = TraceBuilder::new();
        for i in 0..20u32 {
            let t = i % 4;
            b.write_id(t, i % 3);
            b.read_id((t + 1) % 4, i % 3);
            b.acquire_id(t, 0);
            b.release_id(t, 0);
        }
        let trace = b.finish();
        assert_eq!(
            ShbEngine::<TreeClock>::collect_timestamps(&trace),
            ShbEngine::<VectorClock>::collect_timestamps(&trace)
        );
    }
}
