//! Per-run work accounting: the `VTWork`/`TCWork`/`VCWork` metrics of
//! Section 4 and Figures 8 and 9 of the paper.

use std::fmt;
use std::ops::AddAssign;

use tc_core::OpStats;

/// Work counters accumulated over one engine run.
///
/// Terminology (Section 4 of the paper):
///
/// - **`vt_work`** — the number of vector-time entry *changes*, summed
///   over all events. This is independent of the data structure used and
///   lower-bounds the time any implementation must spend (it is the
///   `VTWork(σ)` of Theorem 1). Computed as `op_changed + increments`.
/// - **`ds_work`** — entries *touched* by the concrete data structure:
///   `op_examined + increments`. For a [`VectorClock`] run this is the
///   paper's `VCWork` (every join/copy touches all k entries); for a
///   [`TreeClock`] run it is `TCWork` (only the light-gray nodes of
///   Figures 4/5 are touched). Theorem 1 shows `TCWork ≤ 3·VTWork`.
///
/// [`VectorClock`]: tc_core::VectorClock
/// [`TreeClock`]: tc_core::TreeClock
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Number of events processed.
    pub events: u64,
    /// Number of local-clock increments (= events).
    pub increments: u64,
    /// Number of join operations performed.
    pub joins: u64,
    /// Number of copy operations performed (monotone or deep).
    pub copies: u64,
    /// Number of `CopyCheckMonotone` calls that fell back to a deep
    /// copy. Meaningful for tree clocks (Section 5.1 links each fallback
    /// to a write-read race); flat representations always report deep.
    pub deep_copies: u64,
    /// Total entries examined/compared by joins and copies.
    pub op_examined: u64,
    /// Total entries whose value changed (representation independent).
    pub op_changed: u64,
    /// Total entries physically moved/rewritten.
    pub op_moved: u64,
}

impl RunMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        RunMetrics::default()
    }

    /// Records one processed event's implicit increment.
    #[inline]
    pub fn record_event(&mut self) {
        self.events += 1;
        self.increments += 1;
    }

    /// Records a join operation's statistics.
    #[inline]
    pub fn record_join(&mut self, stats: OpStats) {
        self.joins += 1;
        self.record_op(stats);
    }

    /// Records a join on the uncounted (timed) path: one counter
    /// increment and nothing else — the per-entry accumulators are not
    /// touched, so the instrumentation plumbing is zero-cost by
    /// construction when counting is off.
    #[inline]
    pub fn record_join_uncounted(&mut self) {
        self.joins += 1;
    }

    /// Records a copy operation's statistics.
    #[inline]
    pub fn record_copy(&mut self, stats: OpStats) {
        self.copies += 1;
        self.record_op(stats);
    }

    /// [`record_join_uncounted`](Self::record_join_uncounted)'s copy
    /// twin.
    #[inline]
    pub fn record_copy_uncounted(&mut self) {
        self.copies += 1;
    }

    /// Records a deep-copy fallback of `CopyCheckMonotone`.
    #[inline]
    pub fn record_deep_copy(&mut self) {
        self.deep_copies += 1;
    }

    #[inline]
    fn record_op(&mut self, stats: OpStats) {
        self.op_examined += stats.examined;
        self.op_changed += stats.changed;
        self.op_moved += stats.moved;
    }

    /// The representation-independent vector-time work `VTWork(σ)`:
    /// entry changes plus one change per event (the local increment).
    pub fn vt_work(&self) -> u64 {
        self.op_changed + self.increments
    }

    /// The representation-dependent work: entries examined plus the
    /// per-event increment. For a vector-clock run this is `VCWork(σ)`;
    /// for a tree-clock run, `TCWork(σ)`.
    pub fn ds_work(&self) -> u64 {
        self.op_examined + self.increments
    }

    /// `ds_work / vt_work`, the inefficiency ratio plotted in Figure 8
    /// (≤ 3 for tree clocks by Theorem 1; up to ~k for vector clocks).
    pub fn work_ratio(&self) -> f64 {
        self.ds_work() as f64 / self.vt_work().max(1) as f64
    }
}

impl AddAssign for RunMetrics {
    fn add_assign(&mut self, rhs: Self) {
        self.events += rhs.events;
        self.increments += rhs.increments;
        self.joins += rhs.joins;
        self.copies += rhs.copies;
        self.deep_copies += rhs.deep_copies;
        self.op_examined += rhs.op_examined;
        self.op_changed += rhs.op_changed;
        self.op_moved += rhs.op_moved;
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "events={} joins={} copies={} vt_work={} ds_work={} ratio={:.2}",
            self.events,
            self.joins,
            self.copies,
            self.vt_work(),
            self.ds_work(),
            self.work_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vt_and_ds_work_formulas() {
        let mut m = RunMetrics::new();
        m.record_event();
        m.record_join(OpStats::new(5, 2, 2));
        m.record_event();
        m.record_copy(OpStats::new(3, 1, 2));
        assert_eq!(m.events, 2);
        assert_eq!(m.vt_work(), 3 + 2); // changed + increments
        assert_eq!(m.ds_work(), 8 + 2); // examined + increments
        assert!((m.work_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_accumulate() {
        let mut a = RunMetrics::new();
        a.record_event();
        a.record_join(OpStats::new(1, 1, 1));
        let mut b = RunMetrics::new();
        b.record_event();
        b.record_deep_copy();
        a += b;
        assert_eq!(a.events, 2);
        assert_eq!(a.deep_copies, 1);
        assert_eq!(a.joins, 1);
    }

    #[test]
    fn empty_metrics_have_safe_ratio() {
        assert_eq!(RunMetrics::new().work_ratio(), 0.0);
    }

    #[test]
    fn display_is_single_line() {
        let s = RunMetrics::new().to_string();
        assert!(s.contains("events=0"));
        assert!(!s.contains('\n'));
    }
}
