//! Streaming partial-order engines, generic over the clock data
//! structure.
//!
//! This crate implements the three vector-clock algorithms the paper
//! studies, each as a single-pass engine parameterized by
//! `C: LogicalClock` — instantiate with [`TreeClock`](tc_core::TreeClock)
//! or [`VectorClock`](tc_core::VectorClock) to reproduce the paper's
//! drop-in-replacement comparison:
//!
//! - [`HbEngine`] — Lamport happens-before (Algorithms 1 and 3);
//! - [`ShbEngine`] — schedulable happens-before (Algorithm 4);
//! - [`MazEngine`] — the Mazurkiewicz partial order (Algorithm 5).
//!
//! Every engine tallies [`RunMetrics`]: the number of data-structure
//! entries examined/changed/moved by each operation. These drive the
//! paper's `VTWork` (the representation-independent lower bound),
//! `TCWork` and `VCWork` measurements (Figures 8 and 9) and the
//! vt-optimality property tests (Theorem 1).
//!
//! For validation, the [`dag`] module provides an explicit event graph
//! with precomputed reachability, and [`spec`] builds the three partial
//! orders directly from their definitions — an executable specification
//! the streaming engines are differentially tested against.
//!
//! # Example
//!
//! ```rust
//! use tc_core::{TreeClock, VectorClock};
//! use tc_orders::HbEngine;
//! use tc_trace::TraceBuilder;
//!
//! let mut b = TraceBuilder::new();
//! b.acquire(0, "m").release(0, "m").acquire(1, "m").release(1, "m");
//! let trace = b.finish();
//!
//! // The two representations compute identical timestamps...
//! let tc = HbEngine::<TreeClock>::collect_timestamps(&trace);
//! let vc = HbEngine::<VectorClock>::collect_timestamps(&trace);
//! assert_eq!(tc, vc);
//!
//! // ...and identical VTWork (it is representation independent).
//! let m_tc = HbEngine::<TreeClock>::run(&trace);
//! let m_vc = HbEngine::<VectorClock>::run(&trace);
//! assert_eq!(m_tc.vt_work(), m_vc.vt_work());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dag;
pub mod hb;
pub mod maz;
pub mod metrics;
pub mod shb;
pub mod snapshot;
pub mod spec;
mod sync_core;

pub use dag::{EventDag, Reachability};
pub use hb::HbEngine;
pub use maz::MazEngine;
pub use metrics::RunMetrics;
pub use shb::ShbEngine;
pub use snapshot::{ClockValue, CoreState, EngineState, ThreadSlot, VarClocks};
pub use spec::PartialOrderKind;

// Every engine, over every clock backend, is a movable value: the
// streaming service's work-stealing core depends on being able to ship
// an engine (inside a session) to whichever worker thread is free.
// Compile-time assertion — three backends × three orders.
const _: () = {
    const fn assert_send<T: Send>() {}
    use tc_core::{HybridClock, TreeClock, VectorClock};
    assert_send::<HbEngine<TreeClock>>();
    assert_send::<HbEngine<VectorClock>>();
    assert_send::<HbEngine<HybridClock>>();
    assert_send::<ShbEngine<TreeClock>>();
    assert_send::<ShbEngine<VectorClock>>();
    assert_send::<ShbEngine<HybridClock>>();
    assert_send::<MazEngine<TreeClock>>();
    assert_send::<MazEngine<VectorClock>>();
    assert_send::<MazEngine<HybridClock>>();
};
