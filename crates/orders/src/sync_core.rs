//! Shared engine plumbing: per-thread and per-lock clock stores and the
//! transfer functions for the synchronization events common to HB, SHB
//! and MAZ (acquire, release, fork, join).
//!
//! Clocks are drawn from a [`ClockPool`] so that repeated runs (timing
//! repetitions, conformance sweeps, both backends of a differential
//! check) reuse buffers instead of allocating; lock clocks are
//! [`LazyClock`] slots that materialize on the first release, so an
//! untouched lock costs O(1).

use tc_core::{ClockPool, LazyClock, LogicalClock, ThreadId, VectorTime};
use tc_trace::{Event, LockId, Op, Trace};

use crate::metrics::RunMetrics;

/// Clock state shared by every partial-order engine.
pub(crate) struct SyncCore<C> {
    threads: Vec<C>,
    rooted: Vec<bool>,
    /// Threads whose clock has been released back to the pool by
    /// [`retire_thread`](Self::retire_thread); any further event by a
    /// retired thread is a caller bug (well-formed traces cannot
    /// produce one — a joined thread performs no more events).
    retired: Vec<bool>,
    locks: Vec<LazyClock<C>>,
    thread_hint: usize,
    pub(crate) pool: ClockPool<C>,
    pub(crate) metrics: RunMetrics,
}

impl<C: LogicalClock> SyncCore<C> {
    pub(crate) fn new(threads: usize, locks: usize) -> Self {
        SyncCore::with_pool(threads, locks, ClockPool::new())
    }

    pub(crate) fn with_pool(threads: usize, locks: usize, mut pool: ClockPool<C>) -> Self {
        SyncCore {
            threads: (0..threads)
                .map(|_| {
                    let mut c = pool.acquire();
                    c.reserve_threads(threads);
                    c
                })
                .collect(),
            rooted: vec![false; threads],
            retired: vec![false; threads],
            // Lock clocks are lazy: they materialize (from the pool) on
            // the first release that publishes a time into them.
            locks: (0..locks).map(|_| LazyClock::empty()).collect(),
            thread_hint: threads,
            pool,
            metrics: RunMetrics::new(),
        }
    }

    pub(crate) fn for_trace(trace: &Trace) -> Self {
        SyncCore::new(trace.thread_count(), trace.lock_count())
    }

    pub(crate) fn for_trace_with_pool(trace: &Trace, pool: ClockPool<C>) -> Self {
        SyncCore::with_pool(trace.thread_count(), trace.lock_count(), pool)
    }

    /// Tears the core down, releasing every clock it created back into
    /// its pool (buffers kept warm for the next engine).
    pub(crate) fn into_pool(self) -> ClockPool<C> {
        let mut pool = self.pool;
        for clock in self.threads {
            pool.release(clock);
        }
        for mut lock in self.locks {
            lock.release_into(&mut pool);
        }
        pool
    }

    /// Heap bytes currently owned by the thread and lock clocks.
    pub(crate) fn clock_bytes(&self) -> usize {
        self.threads.iter().map(C::heap_bytes).sum::<usize>()
            + self.locks.iter().map(LazyClock::heap_bytes).sum::<usize>()
    }

    /// Split borrow used by the engines' write paths: the pool (to
    /// materialize a lazy per-variable clock) together with the acting
    /// thread's clock (the copy source).
    pub(crate) fn pool_and_clock(&mut self, t: ThreadId) -> (&mut ClockPool<C>, &C) {
        (&mut self.pool, &self.threads[t.index()])
    }

    /// Moves one conflict-free partition's state (the given threads and
    /// locks) out of this core into a same-shaped shard core that
    /// processes the partition's events independently. Slots outside
    /// the partition are value-empty placeholders — the partition's
    /// events never touch them (that is what conflict-free means), so
    /// the shard computes exactly the values the sequential core would.
    /// `pool` seeds the shard's own clock pool; [`absorb_shard`]
    /// (`Self::absorb_shard`) is the inverse.
    pub(crate) fn extract_shard(
        &mut self,
        tids: &[ThreadId],
        locks: &[LockId],
        pool: ClockPool<C>,
    ) -> SyncCore<C> {
        let mut shard = SyncCore::with_pool(0, 0, pool);
        shard.thread_hint = self.thread_hint;
        shard.threads.resize_with(self.threads.len(), C::default);
        shard.rooted = self.rooted.clone();
        shard.retired = self.retired.clone();
        shard.locks.resize_with(self.locks.len(), LazyClock::empty);
        for &t in tids {
            if t.index() < self.threads.len() {
                std::mem::swap(&mut shard.threads[t.index()], &mut self.threads[t.index()]);
            }
        }
        for &l in locks {
            if l.index() < self.locks.len() {
                std::mem::swap(&mut shard.locks[l.index()], &mut self.locks[l.index()]);
            }
        }
        shard
    }

    /// Moves a partition's state back from `shard` (as produced by
    /// [`extract_shard`](Self::extract_shard) and then fed the
    /// partition's events): thread and lock clocks plus the partition
    /// threads' rooted/retired flags return by index, metrics merge
    /// additively. Returns the shard's pool (with any clocks it still
    /// held released into it) for reuse on the next frame.
    pub(crate) fn absorb_shard(
        &mut self,
        mut shard: SyncCore<C>,
        tids: &[ThreadId],
        locks: &[LockId],
    ) -> ClockPool<C> {
        if shard.threads.len() > self.threads.len() {
            self.threads.resize_with(shard.threads.len(), C::default);
            self.rooted.resize(shard.threads.len(), false);
            self.retired.resize(shard.threads.len(), false);
        }
        if shard.locks.len() > self.locks.len() {
            self.locks.resize_with(shard.locks.len(), LazyClock::empty);
        }
        for &t in tids {
            let i = t.index();
            std::mem::swap(&mut self.threads[i], &mut shard.threads[i]);
            self.rooted[i] = shard.rooted[i];
            self.retired[i] = shard.retired[i];
        }
        for &l in locks {
            std::mem::swap(&mut self.locks[l.index()], &mut shard.locks[l.index()]);
        }
        self.metrics += shard.metrics;
        // What's left in the shard are placeholders (and clocks a
        // retire released); recycle them through its pool.
        shard.metrics = RunMetrics::new();
        shard.into_pool()
    }

    fn ensure_thread(&mut self, t: ThreadId) {
        let i = t.index();
        if i >= self.threads.len() {
            let hint = self.thread_hint.max(i + 1);
            let (threads, pool) = (&mut self.threads, &mut self.pool);
            threads.resize_with(i + 1, || {
                let mut c = pool.acquire();
                c.reserve_threads(hint);
                c
            });
            self.rooted.resize(i + 1, false);
            self.retired.resize(i + 1, false);
        }
        if !self.rooted[i] {
            // The check lives inside the un-rooted branch so the hot
            // path (thread already rooted) pays nothing for it.
            assert!(
                !self.retired[i],
                "thread {t} performs an event after being retired \
                 (retirement requires the thread's last event to have been ingested)"
            );
            self.threads[i].init_root(t);
            self.rooted[i] = true;
        }
    }

    fn ensure_lock(&mut self, l: LockId) {
        if l.index() >= self.locks.len() {
            self.locks.resize_with(l.index() + 1, LazyClock::empty);
        }
    }

    /// Starts processing an event: roots the thread clock if needed and
    /// performs the implicit `Increment` of Algorithm 1.
    pub(crate) fn begin_event(&mut self, t: ThreadId) {
        self.ensure_thread(t);
        self.threads[t.index()].increment(1);
        self.metrics.record_event();
    }

    /// Handles the four synchronization operations; returns `false` for
    /// read/write operations, which the caller's algorithm must handle.
    ///
    /// The `COUNT` parameter selects the instrumented clock operations;
    /// timed runs use `COUNT = false` so the per-entry work counters
    /// cost nothing.
    pub(crate) fn process_sync<const COUNT: bool>(&mut self, e: &Event) -> bool {
        match e.op {
            Op::Acquire(l) => {
                self.ensure_lock(l);
                // Lazy: a lock nobody has released yet orders nothing —
                // skip the join entirely (no operation, no work).
                if let Some(lock) = self.locks[l.index()].get() {
                    let thread = &mut self.threads[e.tid.index()];
                    if COUNT {
                        let s = thread.join_counted(lock);
                        self.metrics.record_join(s);
                    } else {
                        thread.join(lock);
                        self.metrics.record_join_uncounted();
                    }
                }
                true
            }
            Op::Release(l) => {
                self.ensure_lock(l);
                let thread = &self.threads[e.tid.index()];
                let lock = self.locks[l.index()].get_or_acquire(&mut self.pool);
                if COUNT {
                    let s = lock.monotone_copy_counted(thread);
                    self.metrics.record_copy(s);
                } else {
                    lock.monotone_copy(thread);
                    self.metrics.record_copy_uncounted();
                }
                true
            }
            Op::Fork(u) => {
                // fork(u) ≤ first event of u: the child inherits the
                // parent's knowledge.
                self.ensure_thread(u);
                let (child, parent) = borrow_two(&mut self.threads, u.index(), e.tid.index());
                if COUNT {
                    let s = child.join_counted(parent);
                    self.metrics.record_join(s);
                } else {
                    child.join(parent);
                    self.metrics.record_join_uncounted();
                }
                true
            }
            Op::Join(u) => {
                // last event of u ≤ join(u): the parent learns
                // everything the child knew.
                self.ensure_thread(u);
                let (parent, child) = borrow_two(&mut self.threads, e.tid.index(), u.index());
                if COUNT {
                    let s = parent.join_counted(child);
                    self.metrics.record_join(s);
                } else {
                    parent.join(child);
                    self.metrics.record_join_uncounted();
                }
                true
            }
            Op::Read(_) | Op::Write(_) => false,
        }
    }

    /// Releases thread `t`'s clock back into the pool — the streaming
    /// subsystem's thread-retirement hook. Sound once `t`'s last event
    /// has been ingested and its time has been joined everywhere it can
    /// still matter (in a well-formed trace, after `join(_, t)`: the
    /// joining thread absorbed everything `t` knew, and `t`'s clock is
    /// only ever read again by another `join(_, t)` — which
    /// well-formedness forbids). Returns `false` if `t` never started
    /// or was already retired.
    ///
    /// After retirement the slot holds an empty placeholder clock; a
    /// later event by `t` panics (see [`ensure_thread`]).
    pub(crate) fn retire_thread(&mut self, t: ThreadId) -> bool {
        let i = t.index();
        if i >= self.threads.len() || !self.rooted[i] || self.retired[i] {
            return false;
        }
        let clock = std::mem::take(&mut self.threads[i]);
        self.pool.release(clock);
        self.rooted[i] = false;
        self.retired[i] = true;
        true
    }

    /// Re-arms a retired (or never-seen) thread slot for a recycled
    /// occupant: the slot's clock is drawn fresh from the pool and
    /// rooted at `t` with its own time pre-advanced to `base` — the
    /// previous occupant's final time, as tracked by the identity
    /// layer's [`IdentityMap`](tc_core::IdentityMap). Keeping slot
    /// times monotone across occupants is what makes the stale entries
    /// other clocks still hold for this slot value-harmless.
    ///
    /// # Panics
    ///
    /// Panics if the slot currently has a live (rooted) clock — the
    /// identity layer must only hand out slots whose previous occupant
    /// was retired and reclaimed.
    pub(crate) fn adopt_thread(&mut self, t: ThreadId, base: tc_core::LocalTime) {
        let i = t.index();
        if i >= self.threads.len() {
            let hint = self.thread_hint.max(i + 1);
            let (threads, pool) = (&mut self.threads, &mut self.pool);
            threads.resize_with(i + 1, || {
                let mut c = pool.acquire();
                c.reserve_threads(hint);
                c
            });
            self.rooted.resize(i + 1, false);
            self.retired.resize(i + 1, false);
        }
        assert!(
            !self.rooted[i],
            "adopt_thread: slot {t} still has a live occupant"
        );
        if self.retired[i] {
            // The retired slot holds an empty placeholder; draw a warm
            // clock from the pool like ensure_thread would have.
            let mut c = self.pool.acquire();
            c.reserve_threads(self.thread_hint.max(i + 1));
            self.threads[i] = c;
            self.retired[i] = false;
        }
        self.threads[i].adopt_slot(t, base);
        self.rooted[i] = true;
    }

    /// `true` once [`retire_thread`](Self::retire_thread) released `t`.
    pub(crate) fn is_retired(&self, t: ThreadId) -> bool {
        self.retired.get(t.index()).copied().unwrap_or(false)
    }

    /// Number of threads retired so far.
    pub(crate) fn retired_count(&self) -> usize {
        self.retired.iter().filter(|&&r| r).count()
    }

    /// Computes the pointwise minimum over all *live* (rooted,
    /// unretired) thread clocks into `floor`, returning `false` (and an
    /// empty floor) when no thread is live. Any clock value dominated
    /// by this floor can never again change a join's outcome — every
    /// live thread already knows at least as much, and (under fork
    /// discipline) every future thread inherits a live thread's
    /// knowledge at birth.
    pub(crate) fn live_floor(&self, floor: &mut Vec<tc_core::LocalTime>) -> bool {
        floor.clear();
        let mut any = false;
        for (i, clock) in self.threads.iter().enumerate() {
            if !self.rooted[i] {
                continue;
            }
            let width = clock.num_threads();
            if !any {
                floor.resize(width, 0);
                for (j, slot) in floor.iter_mut().enumerate() {
                    *slot = clock.get(ThreadId::new(j as u32));
                }
                any = true;
            } else {
                // The floor can only shrink: entries past a clock's
                // width are 0 there, so the min truncates the floor.
                floor.truncate(width);
                for (j, slot) in floor.iter_mut().enumerate() {
                    *slot = (*slot).min(clock.get(ThreadId::new(j as u32)));
                }
            }
        }
        any
    }

    /// Evicts every materialized lock clock dominated by `floor`,
    /// releasing it into the pool; returns the number evicted. A
    /// dominated lock clock's future joins are value no-ops, so the
    /// eviction is invisible to timestamps and reports (metrics may
    /// legitimately skip the no-op joins).
    pub(crate) fn evict_dominated_locks(&mut self, floor: &[tc_core::LocalTime]) -> usize {
        let mut evicted = 0;
        for lock in &mut self.locks {
            let dominated = lock.get().is_some_and(|c| clock_dominated(c, floor));
            if dominated {
                lock.release_into(&mut self.pool);
                evicted += 1;
            }
        }
        evicted
    }

    /// Read-only access to the engine's clock pool (telemetry).
    pub(crate) fn pool_ref(&self) -> &ClockPool<C> {
        &self.pool
    }

    /// The current clock of thread `t` (zero clock if `t` has not acted).
    pub(crate) fn clock(&self, t: ThreadId) -> Option<&C> {
        self.threads.get(t.index())
    }

    pub(crate) fn clock_mut(&mut self, t: ThreadId) -> &mut C {
        &mut self.threads[t.index()]
    }

    pub(crate) fn timestamp(&self, t: ThreadId) -> VectorTime {
        self.clock(t).map(C::vector_time).unwrap_or_default()
    }
}

/// `true` when every entry of `clock` is at most the corresponding
/// floor entry (entries past the floor count as 0).
pub(crate) fn clock_dominated<C: LogicalClock>(clock: &C, floor: &[tc_core::LocalTime]) -> bool {
    (0..clock.num_threads() as u32)
        .all(|i| clock.get(ThreadId::new(i)) <= floor.get(i as usize).copied().unwrap_or(0))
}

impl<C: LogicalClock> SyncCore<C> {
    /// Captures the clock-visible state (thread and lock clock values,
    /// retirement flags) for a checkpoint.
    pub(crate) fn export_core(&self) -> crate::snapshot::CoreState {
        crate::snapshot::CoreState {
            threads: self
                .threads
                .iter()
                .enumerate()
                .map(|(i, c)| crate::snapshot::ThreadSlot {
                    retired: self.retired[i],
                    clock: self.rooted[i].then(|| crate::snapshot::ClockValue::capture(c)),
                })
                .collect(),
            locks: self
                .locks
                .iter()
                .map(|l| l.get().map(crate::snapshot::ClockValue::capture))
                .collect(),
        }
    }

    /// Rebuilds a core from a checkpointed [`CoreState`], drawing
    /// clocks from `pool`.
    ///
    /// [`CoreState`]: crate::snapshot::CoreState
    pub(crate) fn from_core_state(state: &crate::snapshot::CoreState, pool: ClockPool<C>) -> Self {
        let mut core = SyncCore::with_pool(0, 0, pool);
        core.thread_hint = state.threads.len();
        for slot in &state.threads {
            match &slot.clock {
                Some(value) => {
                    let mut c = core.pool.acquire();
                    c.reserve_threads(core.thread_hint);
                    value.restore_into(&mut c);
                    core.threads.push(c);
                    core.rooted.push(true);
                }
                None => {
                    core.threads.push(C::new());
                    core.rooted.push(false);
                }
            }
            core.retired.push(slot.retired);
        }
        for lock in &state.locks {
            let slot = match lock {
                Some(value) => {
                    let mut c = core.pool.acquire();
                    value.restore_into(&mut c);
                    LazyClock::from_clock(c)
                }
                None => LazyClock::empty(),
            };
            core.locks.push(slot);
        }
        core
    }
}

/// Mutable access to index `i` alongside shared access to index `j`.
pub(crate) fn borrow_two<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &T) {
    assert_ne!(i, j, "cannot borrow the same slot twice");
    if i < j {
        let (a, b) = v.split_at_mut(j);
        (&mut a[i], &b[0])
    } else {
        let (a, b) = v.split_at_mut(i);
        (&mut b[0], &a[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::TreeClock;
    use tc_trace::TraceBuilder;

    #[test]
    fn borrow_two_returns_disjoint_references() {
        let mut v = vec![1, 2, 3];
        let (a, b) = borrow_two(&mut v, 2, 0);
        *a += *b;
        assert_eq!(v, vec![1, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "same slot twice")]
    fn borrow_two_rejects_equal_indices() {
        let mut v = vec![1];
        let _ = borrow_two(&mut v, 0, 0);
    }

    #[test]
    fn fork_transfers_parent_knowledge_to_child() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").release(0, "m").fork(0, 1).acquire(1, "m");
        let trace = b.finish();
        let mut core = SyncCore::<TreeClock>::for_trace(&trace);
        for e in &trace {
            core.begin_event(e.tid);
            core.process_sync::<true>(e);
        }
        // t1 knows t0's time up to the fork (3 events).
        assert_eq!(core.timestamp(ThreadId::new(1)).get(ThreadId::new(0)), 3);
    }

    #[test]
    fn join_transfers_child_knowledge_to_parent() {
        let mut b = TraceBuilder::new();
        b.fork(0, 1);
        b.acquire(1, "m").release(1, "m");
        b.join(0, 1);
        let trace = b.finish();
        let mut core = SyncCore::<TreeClock>::for_trace(&trace);
        for e in &trace {
            core.begin_event(e.tid);
            core.process_sync::<false>(e);
        }
        assert_eq!(core.timestamp(ThreadId::new(0)).get(ThreadId::new(1)), 2);
    }

    #[test]
    fn unseen_threads_grow_the_store() {
        let mut core = SyncCore::<TreeClock>::new(1, 0);
        core.begin_event(ThreadId::new(9));
        assert_eq!(core.timestamp(ThreadId::new(9)).get(ThreadId::new(9)), 1);
    }
}
