//! The Mazurkiewicz (MAZ) partial-order engine: Algorithm 5 of the
//! paper.
//!
//! MAZ extends HB with an order between every pair of conflicting
//! events, in trace order — the canonical algebraic representation of a
//! concurrent execution (Shasha–Snir traces). Besides the last-write
//! clock `LW_x`, the engine keeps a clock `R_{t,x}` for the last read of
//! `x` by each thread `t`, and the set `LRDs_x` of threads that read `x`
//! since the last write. A write joins the last write and all reads in
//! `LRDs_x`; later writes inherit those orderings transitively via the
//! write-to-write edge, which keeps the total time O(n·k).

use tc_core::{LogicalClock, OpStats, ThreadId, VectorTime};
use tc_trace::{Event, Op, Trace, VarId};

use crate::metrics::RunMetrics;
use crate::sync_core::SyncCore;

/// Per-variable access state: the last-write clock, the per-thread
/// last-read clocks, and the readers since the last write.
struct VarState<C> {
    last_write: C,
    /// `R_{t,x}` clocks, keyed linearly by thread id (sparse, append
    /// ordered by first read).
    reads: Vec<(ThreadId, C)>,
    /// Threads with a read since the last write (`LRDs_x`).
    lrds: Vec<ThreadId>,
}

impl<C: LogicalClock> VarState<C> {
    fn new() -> Self {
        VarState {
            // Clocks size themselves on first use.
            last_write: C::new(),
            reads: Vec::new(),
            lrds: Vec::new(),
        }
    }
}

/// A streaming MAZ timestamping engine.
///
/// # Example
///
/// ```rust
/// use tc_core::{LogicalClock, ThreadId, TreeClock};
/// use tc_orders::MazEngine;
/// use tc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.read(0, "x");
/// b.write(1, "x"); // conflicting: MAZ orders the read before the write
/// let trace = b.finish();
///
/// let mut maz = MazEngine::<TreeClock>::new(&trace);
/// for e in &trace {
///     maz.process(e);
/// }
/// assert_eq!(maz.clock_of(ThreadId::new(1)).unwrap().get(ThreadId::new(0)), 1);
/// ```
pub struct MazEngine<C> {
    core: SyncCore<C>,
    vars: Vec<VarState<C>>,
}

impl<C: LogicalClock> MazEngine<C> {
    /// Creates an engine sized for `trace`.
    pub fn new(trace: &Trace) -> Self {
        MazEngine {
            core: SyncCore::for_trace(trace),
            vars: (0..trace.var_count()).map(|_| VarState::new()).collect(),
        }
    }

    fn ensure_var(&mut self, x: VarId) {
        if x.index() >= self.vars.len() {
            self.vars.resize_with(x.index() + 1, VarState::new);
        }
    }

    /// Processes one event (events must be fed in trace order).
    pub fn process(&mut self, e: &Event) {
        self.process_impl::<false>(e);
    }

    /// Like [`process`](Self::process), with exact per-entry work
    /// accounting in [`metrics`](Self::metrics).
    pub fn process_counted(&mut self, e: &Event) {
        self.process_impl::<true>(e);
    }

    fn process_impl<const COUNT: bool>(&mut self, e: &Event) {
        self.core.begin_event(e.tid);
        if self.core.process_sync::<COUNT>(e) {
            return;
        }
        match e.op {
            Op::Read(x) => {
                self.ensure_var(x);
                let var = &mut self.vars[x.index()];
                let clock = self.core.clock_mut(e.tid);
                let s = if COUNT {
                    clock.join_counted(&var.last_write)
                } else {
                    clock.join(&var.last_write);
                    OpStats::NOOP
                };
                self.core.metrics.record_join(s);
                // R_{t,x} <- C_t (monotone: R was copied from C_t before).
                let entry = match var.reads.iter_mut().find(|(t, _)| *t == e.tid) {
                    Some((_, r)) => r,
                    None => {
                        var.reads.push((e.tid, C::new()));
                        &mut var.reads.last_mut().expect("just pushed").1
                    }
                };
                let clock = self.core.clock(e.tid).expect("thread clock rooted");
                let s = if COUNT {
                    entry.monotone_copy_counted(clock)
                } else {
                    entry.monotone_copy(clock);
                    OpStats::NOOP
                };
                self.core.metrics.record_copy(s);
                if !var.lrds.contains(&e.tid) {
                    var.lrds.push(e.tid);
                }
            }
            Op::Write(x) => {
                self.ensure_var(x);
                let var = &mut self.vars[x.index()];
                let clock = self.core.clock_mut(e.tid);
                let s = if COUNT {
                    clock.join_counted(&var.last_write)
                } else {
                    clock.join(&var.last_write);
                    OpStats::NOOP
                };
                self.core.metrics.record_join(s);
                // Order all reads since the last write before this write.
                for t in var.lrds.drain(..) {
                    if t == e.tid {
                        continue; // own reads are thread-ordered already
                    }
                    let read_clock = var
                        .reads
                        .iter()
                        .find(|(rt, _)| *rt == t)
                        .map(|(_, r)| r)
                        .expect("every thread in LRDs has a read clock");
                    let clock = self.core.clock_mut(e.tid);
                    let s = if COUNT {
                        clock.join_counted(read_clock)
                    } else {
                        clock.join(read_clock);
                        OpStats::NOOP
                    };
                    self.core.metrics.record_join(s);
                }
                let clock = self.core.clock(e.tid).expect("thread clock rooted");
                let s = if COUNT {
                    var.last_write.monotone_copy_counted(clock)
                } else {
                    var.last_write.monotone_copy(clock);
                    OpStats::NOOP
                };
                self.core.metrics.record_copy(s);
            }
            _ => unreachable!("process_sync handled synchronization events"),
        }
    }

    /// The current clock of thread `t`, if `t` has appeared.
    pub fn clock_of(&self, t: ThreadId) -> Option<&C> {
        self.core.clock(t)
    }

    /// The current vector timestamp of thread `t`.
    pub fn timestamp_of(&self, t: ThreadId) -> VectorTime {
        self.core.timestamp(t)
    }

    /// The work metrics accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.core.metrics
    }

    /// Runs the whole trace (fast path) and returns the metrics; only
    /// the operation counts are populated.
    pub fn run(trace: &Trace) -> RunMetrics {
        let mut engine = MazEngine::<C>::new(trace);
        for e in trace {
            engine.process(e);
        }
        engine.core.metrics
    }

    /// Runs the whole trace with exact work accounting.
    pub fn run_counted(trace: &Trace) -> RunMetrics {
        let mut engine = MazEngine::<C>::new(trace);
        for e in trace {
            engine.process_counted(e);
        }
        engine.core.metrics
    }

    /// Runs the whole trace collecting each event's MAZ timestamp.
    pub fn collect_timestamps(trace: &Trace) -> Vec<VectorTime> {
        let mut engine = MazEngine::<C>::new(trace);
        let mut out = Vec::with_capacity(trace.len());
        for e in trace {
            engine.process(e);
            out.push(engine.timestamp_of(e.tid));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::{TreeClock, VectorClock};
    use tc_trace::TraceBuilder;

    fn vt(v: &[u32]) -> VectorTime {
        VectorTime::from(v.to_vec())
    }

    #[test]
    fn conflicting_accesses_are_ordered_by_trace_order() {
        let mut b = TraceBuilder::new();
        b.write(0, "x"); // e0
        b.read(1, "x"); // e1: after e0 (w-r)
        b.write(2, "x"); // e2: after e0 (w-w) and e1 (r-w)
        let trace = b.finish();
        let ts = MazEngine::<TreeClock>::collect_timestamps(&trace);
        assert_eq!(ts[1], vt(&[1, 1]));
        assert_eq!(ts[2], vt(&[1, 1, 1]));
    }

    #[test]
    fn unrelated_variables_stay_concurrent() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").write(1, "y");
        let trace = b.finish();
        let ts = MazEngine::<TreeClock>::collect_timestamps(&trace);
        assert_eq!(ts[1], vt(&[0, 1]));
    }

    #[test]
    fn two_reads_stay_concurrent() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x").read(2, "x");
        let trace = b.finish();
        let ts = MazEngine::<TreeClock>::collect_timestamps(&trace);
        // Both reads see the write but not each other.
        assert_eq!(ts[1], vt(&[1, 1]));
        assert_eq!(ts[2], vt(&[1, 0, 1]));
    }

    #[test]
    fn read_to_write_ordering_goes_through_lrds() {
        let mut b = TraceBuilder::new();
        b.write(0, "x"); // e0
        b.read(1, "x"); // e1
        b.read(2, "x"); // e2
        b.write(3, "x"); // e3: ordered after e0, e1 and e2
        b.write(4, "x"); // e4: after e3 (and transitively everything)
        let trace = b.finish();
        let ts = MazEngine::<TreeClock>::collect_timestamps(&trace);
        assert_eq!(ts[3], vt(&[1, 1, 1, 1]));
        assert_eq!(ts[4], vt(&[1, 1, 1, 1, 1]));
    }

    #[test]
    fn lrds_is_cleared_by_writes() {
        let mut b = TraceBuilder::new();
        b.write(0, "x");
        b.read(1, "x");
        b.write(2, "x"); // clears LRDs
        b.write(3, "x"); // must not re-join t1's read clock
        let trace = b.finish();
        let mut engine = MazEngine::<TreeClock>::new(&trace);
        for e in &trace {
            engine.process(e);
        }
        // Join count: e0 joins (empty) LW; e1 joins LW; e2 joins LW +
        // R_{t1}; e3 joins LW only (LRDs was cleared by e2).
        assert_eq!(engine.metrics().joins, 1 + 1 + 2 + 1);
        // Still transitively ordered after the read, through e2.
        assert_eq!(engine.timestamp_of(ThreadId::new(3)), vt(&[1, 1, 1, 1]));
    }

    #[test]
    fn maz_contains_shb() {
        use crate::shb::ShbEngine;
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").write(0, "x").release(0, "m");
        b.read(1, "x").write(1, "x");
        b.acquire(2, "m").read(2, "x").release(2, "m");
        let trace = b.finish();
        let shb = ShbEngine::<TreeClock>::collect_timestamps(&trace);
        let maz = MazEngine::<TreeClock>::collect_timestamps(&trace);
        for (s, m) in shb.iter().zip(maz.iter()) {
            assert!(s.leq(m), "MAZ timestamp must dominate SHB timestamp");
        }
    }

    #[test]
    fn tree_and_vector_agree_on_maz() {
        let mut b = TraceBuilder::new();
        for i in 0..30u32 {
            let t = i % 5;
            match i % 4 {
                0 => b.write_id(t, i % 2),
                1 => b.read_id((t + 1) % 5, i % 2),
                2 => b.read_id((t + 2) % 5, i % 2),
                _ => {
                    b.acquire_id(t, 0);
                    b.release_id(t, 0)
                }
            };
        }
        let trace = b.finish();
        assert_eq!(
            MazEngine::<TreeClock>::collect_timestamps(&trace),
            MazEngine::<VectorClock>::collect_timestamps(&trace)
        );
    }
}
