//! The Mazurkiewicz (MAZ) partial-order engine: Algorithm 5 of the
//! paper.
//!
//! MAZ extends HB with an order between every pair of conflicting
//! events, in trace order — the canonical algebraic representation of a
//! concurrent execution (Shasha–Snir traces). Besides the last-write
//! clock `LW_x`, the engine keeps a clock `R_{t,x}` for the last read of
//! `x` by each thread `t`, and the set `LRDs_x` of threads that read `x`
//! since the last write. A write joins the last write and all reads in
//! `LRDs_x`; later writes inherit those orderings transitively via the
//! write-to-write edge, which keeps the total time O(n·k).

use tc_core::{ClockPool, LazyClock, LogicalClock, ThreadId, VectorTime};
use tc_trace::{Event, LockId, Op, Trace, VarId};

use crate::metrics::RunMetrics;
use crate::sync_core::SyncCore;

/// Per-variable access state: the last-write clock, the per-thread
/// last-read clocks, and the readers since the last write.
///
/// Both kinds of clock are lazy: an untouched variable costs two empty
/// `Vec`s and an `Option` discriminant, and every clock materializes
/// from the engine's pool only when an access actually publishes a time
/// through it.
struct VarState<C> {
    last_write: LazyClock<C>,
    /// `R_{t,x}` clocks, keyed linearly by thread id (sparse, append
    /// ordered by first read).
    reads: Vec<(ThreadId, C)>,
    /// Threads with a read since the last write (`LRDs_x`).
    lrds: Vec<ThreadId>,
}

impl<C: LogicalClock> VarState<C> {
    fn new() -> Self {
        VarState {
            last_write: LazyClock::empty(),
            reads: Vec::new(),
            lrds: Vec::new(),
        }
    }

    fn release_into(self, pool: &mut ClockPool<C>) {
        let mut lw = self.last_write;
        lw.release_into(pool);
        for (_, clock) in self.reads {
            pool.release(clock);
        }
    }

    fn heap_bytes(&self) -> usize {
        self.last_write.heap_bytes()
            + self
                .reads
                .iter()
                .map(|(_, c)| c.heap_bytes())
                .sum::<usize>()
    }
}

/// A streaming MAZ timestamping engine.
///
/// # Example
///
/// ```rust
/// use tc_core::{LogicalClock, ThreadId, TreeClock};
/// use tc_orders::MazEngine;
/// use tc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.read(0, "x");
/// b.write(1, "x"); // conflicting: MAZ orders the read before the write
/// let trace = b.finish();
///
/// let mut maz = MazEngine::<TreeClock>::new(&trace);
/// for e in &trace {
///     maz.process(e);
/// }
/// assert_eq!(maz.clock_of(ThreadId::new(1)).unwrap().get(ThreadId::new(0)), 1);
/// ```
pub struct MazEngine<C> {
    core: SyncCore<C>,
    vars: Vec<VarState<C>>,
}

impl<C: LogicalClock> MazEngine<C> {
    /// Creates an engine sized for `trace`.
    pub fn new(trace: &Trace) -> Self {
        Self::with_pool(trace, ClockPool::new())
    }

    /// Creates an engine sized for `trace` that draws its clocks from
    /// `pool`; reclaim it with [`into_pool`](Self::into_pool).
    pub fn with_pool(trace: &Trace, pool: ClockPool<C>) -> Self {
        MazEngine {
            core: SyncCore::for_trace_with_pool(trace, pool),
            vars: (0..trace.var_count()).map(|_| VarState::new()).collect(),
        }
    }

    /// Tears the engine down, releasing every clock it created into its
    /// pool for the next run to reuse.
    pub fn into_pool(self) -> ClockPool<C> {
        let mut pool = self.core.into_pool();
        for var in self.vars {
            var.release_into(&mut pool);
        }
        pool
    }

    /// Heap bytes currently owned by the engine's clocks (thread, lock
    /// and materialized per-variable clocks).
    pub fn clock_bytes(&self) -> usize {
        self.core.clock_bytes() + self.vars.iter().map(VarState::heap_bytes).sum::<usize>()
    }

    /// Creates an engine with capacity hints that draws its clocks
    /// from `pool` — the streaming constructor, where no [`Trace`] is
    /// ever materialized.
    pub fn with_capacity(threads: usize, locks: usize, vars: usize, pool: ClockPool<C>) -> Self {
        MazEngine {
            core: SyncCore::with_pool(threads, locks, pool),
            vars: (0..vars).map(|_| VarState::new()).collect(),
        }
    }

    /// Releases thread `t`'s clock into the pool; see
    /// [`HbEngine::retire_thread`](crate::HbEngine::retire_thread). The
    /// retired thread's `R_{t,x}` read clocks remain until a write
    /// drains them or [`evict_dominated`](Self::evict_dominated)
    /// reclaims them.
    pub fn retire_thread(&mut self, t: ThreadId) -> bool {
        self.core.retire_thread(t)
    }

    /// `true` once [`retire_thread`](Self::retire_thread) released `t`.
    pub fn is_retired(&self, t: ThreadId) -> bool {
        self.core.is_retired(t)
    }

    /// Re-arms a retired (or never-seen) thread slot for a recycled
    /// occupant; see [`HbEngine::adopt_thread`](crate::HbEngine::adopt_thread).
    pub fn adopt_thread(&mut self, t: ThreadId, base: tc_core::LocalTime) {
        self.core.adopt_thread(t, base);
    }

    /// Pointwise minimum over live thread clocks; see
    /// [`HbEngine::live_floor`](crate::HbEngine::live_floor).
    pub fn live_floor(&self, floor: &mut Vec<tc_core::LocalTime>) -> bool {
        self.core.live_floor(floor)
    }

    /// Number of threads retired so far.
    pub fn retired_count(&self) -> usize {
        self.core.retired_count()
    }

    /// Evicts every materialized lock, last-write and read clock
    /// dominated by the pointwise minimum over live thread clocks
    /// (dropping the corresponding `LRDs_x` membership — joining a
    /// dominated read clock is a value no-op); returns the number
    /// evicted. Value-preserving only under fork discipline — see
    /// [`HbEngine::evict_dominated`](crate::HbEngine::evict_dominated).
    pub fn evict_dominated(&mut self) -> usize {
        let mut floor = Vec::new();
        if !self.core.live_floor(&mut floor) {
            return 0;
        }
        let mut evicted = self.core.evict_dominated_locks(&floor);
        for var in &mut self.vars {
            let dominated = var
                .last_write
                .get()
                .is_some_and(|c| crate::sync_core::clock_dominated(c, &floor));
            if dominated {
                var.last_write.release_into(&mut self.core.pool);
                evicted += 1;
            }
            let mut i = 0;
            while i < var.reads.len() {
                if crate::sync_core::clock_dominated(&var.reads[i].1, &floor) {
                    let (t, clock) = var.reads.swap_remove(i);
                    self.core.pool.release(clock);
                    var.lrds.retain(|&r| r != t);
                    evicted += 1;
                } else {
                    i += 1;
                }
            }
        }
        evicted
    }

    /// Read-only access to the engine's clock pool (telemetry).
    pub fn pool(&self) -> &ClockPool<C> {
        self.core.pool_ref()
    }

    /// Captures the engine's value-level state for a checkpoint.
    pub fn export_state(&self) -> crate::snapshot::EngineState {
        crate::snapshot::EngineState {
            core: self.core.export_core(),
            vars: self
                .vars
                .iter()
                .map(|v| crate::snapshot::VarClocks {
                    last_write: v.last_write.get().map(crate::snapshot::ClockValue::capture),
                    reads: v
                        .reads
                        .iter()
                        .map(|(t, c)| (*t, crate::snapshot::ClockValue::capture(c)))
                        .collect(),
                    lrds: v.lrds.clone(),
                })
                .collect(),
        }
    }

    /// Rebuilds an engine from a checkpointed state, drawing clocks
    /// from `pool`. Work metrics restart at zero.
    pub fn from_state(state: &crate::snapshot::EngineState, pool: ClockPool<C>) -> Self {
        let mut core = SyncCore::from_core_state(&state.core, pool);
        let vars = state
            .vars
            .iter()
            .map(|v| VarState {
                last_write: match &v.last_write {
                    Some(value) => {
                        tc_core::LazyClock::from_clock(value.restore_from_pool(&mut core.pool))
                    }
                    None => LazyClock::empty(),
                },
                reads: v
                    .reads
                    .iter()
                    .map(|(t, value)| (*t, value.restore_from_pool(&mut core.pool)))
                    .collect(),
                lrds: v.lrds.clone(),
            })
            .collect();
        MazEngine { core, vars }
    }

    fn ensure_var(&mut self, x: VarId) {
        if x.index() >= self.vars.len() {
            self.vars.resize_with(x.index() + 1, VarState::new);
        }
    }

    /// Moves one conflict-free partition (threads, locks, and the
    /// partition variables' full access state — `LW_x`, `R_{t,x}` and
    /// `LRDs_x`) into a shard engine that can process the partition's
    /// events independently; see
    /// [`HbEngine::extract_epoch_shard`](crate::HbEngine::extract_epoch_shard).
    pub fn extract_epoch_shard(
        &mut self,
        tids: &[ThreadId],
        locks: &[LockId],
        vars: &[VarId],
        pool: ClockPool<C>,
    ) -> Self {
        let core = self.core.extract_shard(tids, locks, pool);
        let mut shard_vars: Vec<VarState<C>> =
            (0..self.vars.len()).map(|_| VarState::new()).collect();
        for &x in vars {
            if x.index() < self.vars.len() {
                std::mem::swap(&mut shard_vars[x.index()], &mut self.vars[x.index()]);
            }
        }
        MazEngine {
            core,
            vars: shard_vars,
        }
    }

    /// Moves a partition's state back from a shard produced by
    /// [`extract_epoch_shard`](Self::extract_epoch_shard); returns the
    /// shard's pool for reuse.
    pub fn absorb_epoch_shard(
        &mut self,
        mut shard: Self,
        tids: &[ThreadId],
        locks: &[LockId],
        vars: &[VarId],
    ) -> ClockPool<C> {
        if shard.vars.len() > self.vars.len() {
            self.vars.resize_with(shard.vars.len(), VarState::new);
        }
        for &x in vars {
            std::mem::swap(&mut self.vars[x.index()], &mut shard.vars[x.index()]);
        }
        let mut pool = self.core.absorb_shard(shard.core, tids, locks);
        for var in shard.vars {
            var.release_into(&mut pool);
        }
        pool
    }

    /// Processes one event (events must be fed in trace order).
    pub fn process(&mut self, e: &Event) {
        self.process_impl::<false>(e);
    }

    /// Like [`process`](Self::process), with exact per-entry work
    /// accounting in [`metrics`](Self::metrics).
    pub fn process_counted(&mut self, e: &Event) {
        self.process_impl::<true>(e);
    }

    fn process_impl<const COUNT: bool>(&mut self, e: &Event) {
        self.core.begin_event(e.tid);
        if self.core.process_sync::<COUNT>(e) {
            return;
        }
        match e.op {
            Op::Read(x) => {
                self.ensure_var(x);
                let var = &mut self.vars[x.index()];
                // Lazy: reading a never-written variable orders nothing —
                // skip the join entirely (no operation, no work).
                if let Some(lw) = var.last_write.get() {
                    let clock = self.core.clock_mut(e.tid);
                    if COUNT {
                        let s = clock.join_counted(lw);
                        self.core.metrics.record_join(s);
                    } else {
                        clock.join(lw);
                        self.core.metrics.record_join_uncounted();
                    }
                }
                // R_{t,x} <- C_t (monotone: R was copied from C_t before).
                let (pool, clock) = self.core.pool_and_clock(e.tid);
                let entry = match var.reads.iter_mut().find(|(t, _)| *t == e.tid) {
                    Some((_, r)) => r,
                    None => {
                        var.reads.push((e.tid, pool.acquire()));
                        &mut var.reads.last_mut().expect("just pushed").1
                    }
                };
                if COUNT {
                    let s = entry.monotone_copy_counted(clock);
                    self.core.metrics.record_copy(s);
                } else {
                    entry.monotone_copy(clock);
                    self.core.metrics.record_copy_uncounted();
                }
                if !var.lrds.contains(&e.tid) {
                    var.lrds.push(e.tid);
                }
            }
            Op::Write(x) => {
                self.ensure_var(x);
                let var = &mut self.vars[x.index()];
                if let Some(lw) = var.last_write.get() {
                    let clock = self.core.clock_mut(e.tid);
                    if COUNT {
                        let s = clock.join_counted(lw);
                        self.core.metrics.record_join(s);
                    } else {
                        clock.join(lw);
                        self.core.metrics.record_join_uncounted();
                    }
                }
                // Order all reads since the last write before this write.
                for t in var.lrds.drain(..) {
                    if t == e.tid {
                        continue; // own reads are thread-ordered already
                    }
                    let read_clock = var
                        .reads
                        .iter()
                        .find(|(rt, _)| *rt == t)
                        .map(|(_, r)| r)
                        .expect("every thread in LRDs has a read clock");
                    let clock = self.core.clock_mut(e.tid);
                    if COUNT {
                        let s = clock.join_counted(read_clock);
                        self.core.metrics.record_join(s);
                    } else {
                        clock.join(read_clock);
                        self.core.metrics.record_join_uncounted();
                    }
                }
                let (pool, clock) = self.core.pool_and_clock(e.tid);
                let lw = var.last_write.get_or_acquire(pool);
                if COUNT {
                    let s = lw.monotone_copy_counted(clock);
                    self.core.metrics.record_copy(s);
                } else {
                    lw.monotone_copy(clock);
                    self.core.metrics.record_copy_uncounted();
                }
            }
            _ => unreachable!("process_sync handled synchronization events"),
        }
    }

    /// The current clock of thread `t`, if `t` has appeared.
    pub fn clock_of(&self, t: ThreadId) -> Option<&C> {
        self.core.clock(t)
    }

    /// The current vector timestamp of thread `t`.
    pub fn timestamp_of(&self, t: ThreadId) -> VectorTime {
        self.core.timestamp(t)
    }

    /// The work metrics accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.core.metrics
    }

    /// Runs the whole trace (fast path) and returns the metrics; only
    /// the operation counts are populated.
    pub fn run(trace: &Trace) -> RunMetrics {
        Self::run_pooled(trace, &mut ClockPool::new())
    }

    /// [`run`](Self::run) drawing clocks from (and returning them to)
    /// `pool` — the steady-state, allocation-free entry point.
    pub fn run_pooled(trace: &Trace, pool: &mut ClockPool<C>) -> RunMetrics {
        let mut engine = MazEngine::<C>::with_pool(trace, std::mem::take(pool));
        for e in trace {
            engine.process(e);
        }
        let metrics = engine.core.metrics;
        *pool = engine.into_pool();
        metrics
    }

    /// Runs the whole trace with exact work accounting.
    pub fn run_counted(trace: &Trace) -> RunMetrics {
        Self::run_counted_pooled(trace, &mut ClockPool::new())
    }

    /// [`run_counted`](Self::run_counted) with pooled clocks.
    pub fn run_counted_pooled(trace: &Trace, pool: &mut ClockPool<C>) -> RunMetrics {
        let mut engine = MazEngine::<C>::with_pool(trace, std::mem::take(pool));
        for e in trace {
            engine.process_counted(e);
        }
        let metrics = engine.core.metrics;
        *pool = engine.into_pool();
        metrics
    }

    /// Runs the whole trace collecting each event's MAZ timestamp.
    pub fn collect_timestamps(trace: &Trace) -> Vec<VectorTime> {
        Self::collect_timestamps_pooled(trace, &mut ClockPool::new())
    }

    /// [`collect_timestamps`](Self::collect_timestamps) with pooled
    /// clocks.
    pub fn collect_timestamps_pooled(trace: &Trace, pool: &mut ClockPool<C>) -> Vec<VectorTime> {
        let mut engine = MazEngine::<C>::with_pool(trace, std::mem::take(pool));
        let mut out = Vec::with_capacity(trace.len());
        for e in trace {
            engine.process(e);
            out.push(engine.timestamp_of(e.tid));
        }
        *pool = engine.into_pool();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::{TreeClock, VectorClock};
    use tc_trace::TraceBuilder;

    fn vt(v: &[u32]) -> VectorTime {
        VectorTime::from(v.to_vec())
    }

    #[test]
    fn conflicting_accesses_are_ordered_by_trace_order() {
        let mut b = TraceBuilder::new();
        b.write(0, "x"); // e0
        b.read(1, "x"); // e1: after e0 (w-r)
        b.write(2, "x"); // e2: after e0 (w-w) and e1 (r-w)
        let trace = b.finish();
        let ts = MazEngine::<TreeClock>::collect_timestamps(&trace);
        assert_eq!(ts[1], vt(&[1, 1]));
        assert_eq!(ts[2], vt(&[1, 1, 1]));
    }

    #[test]
    fn unrelated_variables_stay_concurrent() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").write(1, "y");
        let trace = b.finish();
        let ts = MazEngine::<TreeClock>::collect_timestamps(&trace);
        assert_eq!(ts[1], vt(&[0, 1]));
    }

    #[test]
    fn two_reads_stay_concurrent() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x").read(2, "x");
        let trace = b.finish();
        let ts = MazEngine::<TreeClock>::collect_timestamps(&trace);
        // Both reads see the write but not each other.
        assert_eq!(ts[1], vt(&[1, 1]));
        assert_eq!(ts[2], vt(&[1, 0, 1]));
    }

    #[test]
    fn read_to_write_ordering_goes_through_lrds() {
        let mut b = TraceBuilder::new();
        b.write(0, "x"); // e0
        b.read(1, "x"); // e1
        b.read(2, "x"); // e2
        b.write(3, "x"); // e3: ordered after e0, e1 and e2
        b.write(4, "x"); // e4: after e3 (and transitively everything)
        let trace = b.finish();
        let ts = MazEngine::<TreeClock>::collect_timestamps(&trace);
        assert_eq!(ts[3], vt(&[1, 1, 1, 1]));
        assert_eq!(ts[4], vt(&[1, 1, 1, 1, 1]));
    }

    #[test]
    fn lrds_is_cleared_by_writes() {
        let mut b = TraceBuilder::new();
        b.write(0, "x");
        b.read(1, "x");
        b.write(2, "x"); // clears LRDs
        b.write(3, "x"); // must not re-join t1's read clock
        let trace = b.finish();
        let mut engine = MazEngine::<TreeClock>::new(&trace);
        for e in &trace {
            engine.process(e);
        }
        // Join count: e0 skips the not-yet-materialized LW (lazy); e1
        // joins LW; e2 joins LW + R_{t1}; e3 joins LW only (LRDs was
        // cleared by e2).
        assert_eq!(engine.metrics().joins, 1 + 2 + 1);
        // Still transitively ordered after the read, through e2.
        assert_eq!(engine.timestamp_of(ThreadId::new(3)), vt(&[1, 1, 1, 1]));
    }

    #[test]
    fn maz_contains_shb() {
        use crate::shb::ShbEngine;
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").write(0, "x").release(0, "m");
        b.read(1, "x").write(1, "x");
        b.acquire(2, "m").read(2, "x").release(2, "m");
        let trace = b.finish();
        let shb = ShbEngine::<TreeClock>::collect_timestamps(&trace);
        let maz = MazEngine::<TreeClock>::collect_timestamps(&trace);
        for (s, m) in shb.iter().zip(maz.iter()) {
            assert!(s.leq(m), "MAZ timestamp must dominate SHB timestamp");
        }
    }

    #[test]
    fn pooled_reruns_are_allocation_free_and_lazy_vars_cost_nothing() {
        let mut b = TraceBuilder::new();
        for i in 0..30u32 {
            b.write_id(i % 5, 0);
            b.read_id((i + 1) % 5, 0);
        }
        let trace = b.finish();
        let mut pool = ClockPool::<VectorClock>::new();
        let first = MazEngine::<VectorClock>::run_pooled(&trace, &mut pool);
        let fresh_after_first = pool.fresh();
        let second = MazEngine::<VectorClock>::run_pooled(&trace, &mut pool);
        assert_eq!(pool.fresh(), fresh_after_first);
        assert_eq!(first, second);

        // An engine over a trace that never touches its variables keeps
        // every per-variable slot unmaterialized.
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").release(0, "m");
        let sync_only = b.finish();
        let engine = MazEngine::<TreeClock>::new(&sync_only);
        assert_eq!(
            engine.vars.iter().map(VarState::heap_bytes).sum::<usize>(),
            0,
            "untouched variables must not own clock memory"
        );
    }

    #[test]
    fn epoch_shard_moves_variable_state_and_matches_sequential() {
        // Two closed partitions: {t0, t1, x} and {t2, t3, y} — the
        // shard must carry LW_x, R_{t,x} and LRDs_x along.
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x").write(1, "x").read(0, "x");
        b.write(2, "y").read(3, "y").write(3, "y").read(2, "y");
        let trace = b.finish();

        let mut seq = MazEngine::<TreeClock>::with_capacity(4, 0, 2, ClockPool::new());
        let mut par = MazEngine::<TreeClock>::with_capacity(4, 0, 2, ClockPool::new());
        for e in &trace {
            seq.process(e);
        }

        let part_a: Vec<Event> = trace
            .iter()
            .copied()
            .filter(|e| e.tid.index() < 2)
            .collect();
        let part_b: Vec<Event> = trace
            .iter()
            .copied()
            .filter(|e| e.tid.index() >= 2)
            .collect();
        let tids_a = [ThreadId::new(0), ThreadId::new(1)];
        let tids_b = [ThreadId::new(2), ThreadId::new(3)];
        let vars_a = [VarId::new(0)];
        let vars_b = [VarId::new(1)];

        let mut shard_a = par.extract_epoch_shard(&tids_a, &[], &vars_a, ClockPool::new());
        let mut shard_b = par.extract_epoch_shard(&tids_b, &[], &vars_b, ClockPool::new());
        for e in &part_b {
            shard_b.process(e);
        }
        for e in &part_a {
            shard_a.process(e);
        }
        let _ = par.absorb_epoch_shard(shard_b, &tids_b, &[], &vars_b);
        let _ = par.absorb_epoch_shard(shard_a, &tids_a, &[], &vars_a);

        for t in 0..4u32 {
            assert_eq!(
                par.timestamp_of(ThreadId::new(t)),
                seq.timestamp_of(ThreadId::new(t)),
                "thread {t}"
            );
        }
        // A later cross-partition write still sees the moved-back state.
        let late = Event::new(ThreadId::new(2), Op::Write(VarId::new(0)));
        seq.process(&late);
        par.process(&late);
        assert_eq!(
            par.timestamp_of(ThreadId::new(2)),
            seq.timestamp_of(ThreadId::new(2))
        );
    }

    #[test]
    fn tree_and_vector_agree_on_maz() {
        let mut b = TraceBuilder::new();
        for i in 0..30u32 {
            let t = i % 5;
            match i % 4 {
                0 => b.write_id(t, i % 2),
                1 => b.read_id((t + 1) % 5, i % 2),
                2 => b.read_id((t + 2) % 5, i % 2),
                _ => {
                    b.acquire_id(t, 0);
                    b.release_id(t, 0)
                }
            };
        }
        let trace = b.finish();
        assert_eq!(
            MazEngine::<TreeClock>::collect_timestamps(&trace),
            MazEngine::<VectorClock>::collect_timestamps(&trace)
        );
    }
}
