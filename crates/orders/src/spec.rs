//! Executable *definitions* of the three partial orders.
//!
//! Each order is built as an explicit [`EventDag`] straight from its
//! defining rules (no clocks, no streaming, no cleverness), giving an
//! unambiguous oracle the engines are differentially tested against:
//!
//! - **HB** (Section 2.3): thread order; every release before every
//!   later acquire of the same lock; fork before the child's first
//!   event; the child's last event before join.
//! - **SHB** (Section 5.1): HB plus `lw(r) -> r` for every read.
//! - **MAZ** (Section 5.2): HB plus `e1 -> e2` for every conflicting
//!   pair in trace order.
//!
//! Complexity is O(n²)-ish by design; use on small traces.

use std::fmt;
use std::str::FromStr;

use tc_core::VectorTime;
use tc_trace::{Op, Trace};

use crate::dag::{EventDag, Reachability};

/// The partial orders studied in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PartialOrderKind {
    /// Lamport happens-before.
    Hb,
    /// Schedulable happens-before (HB + last-write-to-read).
    Shb,
    /// Mazurkiewicz (HB + all conflicting pairs).
    Maz,
}

impl PartialOrderKind {
    /// All three kinds, in the paper's MAZ/SHB/HB presentation order.
    pub const ALL: [PartialOrderKind; 3] = [
        PartialOrderKind::Maz,
        PartialOrderKind::Shb,
        PartialOrderKind::Hb,
    ];
}

impl fmt::Display for PartialOrderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PartialOrderKind::Hb => "HB",
            PartialOrderKind::Shb => "SHB",
            PartialOrderKind::Maz => "MAZ",
        })
    }
}

impl FromStr for PartialOrderKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "hb" => Ok(PartialOrderKind::Hb),
            "shb" => Ok(PartialOrderKind::Shb),
            "maz" => Ok(PartialOrderKind::Maz),
            other => Err(format!("unknown partial order `{other}` (hb, shb, maz)")),
        }
    }
}

/// Options for [`spec_dag_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SpecOptions {
    /// Drop the *conflict* edges (last-write-to-read for SHB; all
    /// conflicting-pair edges for MAZ) whose target is this event.
    ///
    /// This constructs the order "just before the direct edges at event
    /// `j` are added", which is the ordering a detector consults when it
    /// checks whether event `j` races with the accesses it is about to
    /// be ordered after — the oracle for race/reversible-pair reports.
    pub drop_conflict_edges_into: Option<usize>,
}

/// Builds the defining edge set of `kind` over `trace` as an explicit
/// DAG.
pub fn spec_dag(trace: &Trace, kind: PartialOrderKind) -> EventDag {
    spec_dag_with(trace, kind, SpecOptions::default())
}

/// Builds the defining edge set of `kind` with [`SpecOptions`].
pub fn spec_dag_with(trace: &Trace, kind: PartialOrderKind, options: SpecOptions) -> EventDag {
    let n = trace.len();
    let skip_into = options.drop_conflict_edges_into;
    let mut dag = EventDag::new(n);

    // Thread order: consecutive events of the same thread.
    let mut last_of_thread = vec![None::<usize>; trace.thread_count()];
    // Lock edges: every release -> every later acquire (the definition).
    let mut releases_of_lock: Vec<Vec<usize>> = vec![Vec::new(); trace.lock_count()];
    // Fork/join bookkeeping.
    let mut first_of_thread = vec![None::<usize>; trace.thread_count()];
    let mut pending_forks: Vec<Vec<usize>> = vec![Vec::new(); trace.thread_count()];
    // SHB: last write per variable. MAZ: all accesses per variable.
    let mut last_write = vec![None::<usize>; trace.var_count()];
    let mut accesses: Vec<Vec<(usize, bool)>> = vec![Vec::new(); trace.var_count()];

    for (i, e) in trace.iter().enumerate() {
        let t = e.tid.index();
        if let Some(p) = last_of_thread[t] {
            dag.add_edge(p, i);
        }
        last_of_thread[t] = Some(i);
        if first_of_thread[t].is_none() {
            first_of_thread[t] = Some(i);
            for &f in &pending_forks[t] {
                dag.add_edge(f, i);
            }
        }
        match e.op {
            Op::Acquire(l) => {
                for &r in &releases_of_lock[l.index()] {
                    dag.add_edge(r, i);
                }
            }
            Op::Release(l) => releases_of_lock[l.index()].push(i),
            Op::Fork(u) => {
                // Normally the child starts later; if the trace is
                // malformed the edge is simply dropped.
                if first_of_thread[u.index()].is_none() {
                    pending_forks[u.index()].push(i);
                }
            }
            Op::Join(u) => {
                if let Some(last) = last_of_thread[u.index()] {
                    dag.add_edge(last, i);
                }
            }
            Op::Read(x) => {
                let keep = skip_into != Some(i);
                if kind != PartialOrderKind::Hb && keep {
                    if let Some(w) = last_write[x.index()] {
                        dag.add_edge(w, i);
                    }
                }
                if kind == PartialOrderKind::Maz {
                    if keep {
                        for &(j, is_write) in &accesses[x.index()] {
                            if is_write && trace[j].tid != e.tid {
                                dag.add_edge(j, i);
                            }
                        }
                    }
                    accesses[x.index()].push((i, false));
                }
            }
            Op::Write(x) => {
                if kind == PartialOrderKind::Maz && skip_into != Some(i) {
                    for &(j, _) in &accesses[x.index()] {
                        if trace[j].tid != e.tid {
                            dag.add_edge(j, i);
                        }
                    }
                }
                if kind == PartialOrderKind::Maz {
                    accesses[x.index()].push((i, true));
                }
                last_write[x.index()] = Some(i);
            }
        }
    }
    dag
}

/// Precomputed reachability for `kind` over `trace`.
pub fn spec_reachability(trace: &Trace, kind: PartialOrderKind) -> Reachability {
    spec_dag(trace, kind).reachability()
}

/// The per-event timestamps of `kind` computed straight from the
/// definition — the oracle for Lemma 4-style correctness tests.
pub fn spec_timestamps(trace: &Trace, kind: PartialOrderKind) -> Vec<VectorTime> {
    spec_reachability(trace, kind).timestamps(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_trace::TraceBuilder;

    fn racy_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.write(0, "x"); // e0
        b.acquire(0, "m").release(0, "m"); // e1 e2
        b.acquire(1, "m").release(1, "m"); // e3 e4
        b.read(1, "x"); // e5: HB-ordered after e0 via the lock
        b.write(2, "x"); // e6: racy with everything
        b.finish()
    }

    #[test]
    fn hb_orders_through_locks_only() {
        let trace = racy_trace();
        let r = spec_reachability(&trace, PartialOrderKind::Hb);
        assert!(r.ordered(0, 5)); // via the critical sections
        assert!(r.concurrent(0, 6)); // w-w race
        assert!(r.concurrent(5, 6)); // r-w race
    }

    #[test]
    fn shb_adds_last_write_to_read() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x");
        let trace = b.finish();
        let hb = spec_reachability(&trace, PartialOrderKind::Hb);
        let shb = spec_reachability(&trace, PartialOrderKind::Shb);
        assert!(hb.concurrent(0, 1));
        assert!(shb.ordered(0, 1));
    }

    #[test]
    fn maz_orders_every_conflicting_pair() {
        let trace = racy_trace();
        let r = spec_reachability(&trace, PartialOrderKind::Maz);
        assert!(r.ordered(0, 6));
        assert!(r.ordered(5, 6));
        // Non-conflicting events of different threads stay concurrent.
        assert!(r.concurrent(1, 3) || r.ordered(1, 3)); // lock edges may order them
    }

    #[test]
    fn orders_are_nested_hb_shb_maz() {
        let trace = racy_trace();
        let n = trace.len();
        let hb = spec_reachability(&trace, PartialOrderKind::Hb);
        let shb = spec_reachability(&trace, PartialOrderKind::Shb);
        let maz = spec_reachability(&trace, PartialOrderKind::Maz);
        for i in 0..n {
            for j in 0..n {
                if i < j {
                    if hb.ordered(i, j) {
                        assert!(shb.ordered(i, j), "HB ⊆ SHB violated at ({i},{j})");
                    }
                    if shb.ordered(i, j) {
                        assert!(maz.ordered(i, j), "SHB ⊆ MAZ violated at ({i},{j})");
                    }
                }
            }
        }
    }

    #[test]
    fn fork_and_join_edges_exist() {
        let mut b = TraceBuilder::new();
        b.fork(0, 1); // e0
        b.write(1, "y"); // e1
        b.join(0, 1); // e2
        b.write(0, "y"); // e3
        let trace = b.finish();
        let r = spec_reachability(&trace, PartialOrderKind::Hb);
        assert!(r.ordered(0, 1));
        assert!(r.ordered(1, 2));
        assert!(r.ordered(1, 3));
    }

    #[test]
    fn kind_parses_and_displays() {
        for kind in PartialOrderKind::ALL {
            let s = kind.to_string();
            assert_eq!(s.parse::<PartialOrderKind>().unwrap(), kind);
        }
        assert!("cp".parse::<PartialOrderKind>().is_err());
    }
}
