//! An explicit event graph with precomputed reachability — the "naïve
//! approach" of Section 2.2 of the paper, used here as a test oracle for
//! the streaming engines.
//!
//! Edges always point forward in trace order, so the event indices are a
//! topological order and reachability is a single backward sweep over
//! bitset rows. Memory is Θ(n²/64); intended for traces up to a few
//! thousand events.

use tc_core::VectorTime;
use tc_trace::Trace;

/// A DAG over the events `0..n` of a trace, with edges from earlier to
/// later events.
///
/// # Example
///
/// ```rust
/// use tc_orders::EventDag;
///
/// let mut dag = EventDag::new(3);
/// dag.add_edge(0, 1);
/// dag.add_edge(1, 2);
/// let reach = dag.reachability();
/// assert!(reach.ordered(0, 2)); // transitive
/// assert!(!reach.ordered(2, 0));
/// ```
#[derive(Clone, Debug)]
pub struct EventDag {
    n: usize,
    succs: Vec<Vec<u32>>,
}

impl EventDag {
    /// Creates a DAG over `n` events with no edges.
    pub fn new(n: usize) -> Self {
        EventDag {
            n,
            succs: vec![Vec::new(); n],
        }
    }

    /// Number of events (nodes).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the ordering edge `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics unless `from < to < n` (edges must follow trace order).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(
            from < to && to < self.n,
            "edge {from} -> {to} violates trace order (n = {})",
            self.n
        );
        self.succs[from].push(to as u32);
    }

    /// Precomputes all-pairs reachability.
    pub fn reachability(&self) -> Reachability {
        let words = self.n.div_ceil(64);
        let mut rows = vec![0u64; self.n * words];
        for i in (0..self.n).rev() {
            for &s in &self.succs[i] {
                let s = s as usize;
                // Merge row s into row i; s > i, so split cleanly.
                let (head, tail) = rows.split_at_mut(s * words);
                let row_i = &mut head[i * words..i * words + words];
                let row_s = &tail[..words];
                for (a, b) in row_i.iter_mut().zip(row_s) {
                    *a |= *b;
                }
                rows[i * words + s / 64] |= 1u64 << (s % 64);
            }
        }
        Reachability {
            n: self.n,
            words,
            rows,
        }
    }
}

/// Precomputed reachability over an [`EventDag`].
#[derive(Clone, Debug)]
pub struct Reachability {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl Reachability {
    /// Returns `true` iff event `from` is ordered at-or-before event
    /// `to` (reflexive: `ordered(i, i)` holds).
    pub fn ordered(&self, from: usize, to: usize) -> bool {
        assert!(from < self.n && to < self.n, "event index out of range");
        from == to || (self.rows[from * self.words + to / 64] >> (to % 64)) & 1 == 1
    }

    /// Returns `true` iff the two events are incomparable (the paper's
    /// `e1 ∥ e2`).
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        !self.ordered(a, b) && !self.ordered(b, a)
    }

    /// Computes the timestamp of every event from reachability alone:
    /// `C_e(u) = max { lTime(f) | f ≤ e, tid(f) = u }` — the definition
    /// the engines' clocks must match (Lemma 4).
    pub fn timestamps(&self, trace: &Trace) -> Vec<VectorTime> {
        let ltimes = trace.local_times();
        let mut out = Vec::with_capacity(self.n);
        for j in 0..self.n {
            let mut vt = VectorTime::with_threads(trace.thread_count());
            for i in 0..=j {
                if self.ordered(i, j) {
                    let t = trace[i].tid;
                    if ltimes[i] > vt.get(t) {
                        vt.set(t, ltimes[i]);
                    }
                }
            }
            out.push(vt);
        }
        out
    }

    /// Enumerates all unordered conflicting pairs `(i, j)` with `i < j`
    /// — the races / concurrency queries of the paper's analysis phase.
    pub fn concurrent_conflicting_pairs(&self, trace: &Trace) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for j in 0..self.n {
            for i in 0..j {
                if trace[i].conflicts_with(&trace[j]) && self.concurrent(i, j) {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_trace::TraceBuilder;

    #[test]
    fn reachability_is_reflexive_and_transitive() {
        let mut dag = EventDag::new(4);
        dag.add_edge(0, 1);
        dag.add_edge(1, 3);
        let r = dag.reachability();
        assert!(r.ordered(0, 0));
        assert!(r.ordered(0, 3));
        assert!(!r.ordered(0, 2));
        assert!(r.concurrent(2, 3));
    }

    #[test]
    #[should_panic(expected = "violates trace order")]
    fn backward_edges_are_rejected() {
        let mut dag = EventDag::new(2);
        dag.add_edge(1, 0);
    }

    #[test]
    fn wide_graphs_cross_word_boundaries() {
        // 130 nodes forces multi-word bitset rows.
        let n = 130;
        let mut dag = EventDag::new(n);
        for i in 0..n - 1 {
            dag.add_edge(i, i + 1);
        }
        let r = dag.reachability();
        assert!(r.ordered(0, n - 1));
        assert!(r.ordered(63, 64));
        assert!(r.ordered(0, 127));
        assert!(!r.ordered(n - 1, 0));
    }

    #[test]
    fn timestamps_match_definition_on_a_chain() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").write(1, "x").write(0, "x");
        let trace = b.finish();
        let mut dag = EventDag::new(3);
        dag.add_edge(0, 2); // pretend only e0 -> e2 is ordered (plus TO)
        let r = dag.reachability();
        let ts = r.timestamps(&trace);
        assert_eq!(ts[0], VectorTime::from(vec![1]));
        assert_eq!(ts[1], VectorTime::from(vec![0, 1]));
        assert_eq!(ts[2], VectorTime::from(vec![2]));
    }

    #[test]
    fn concurrent_conflicting_pairs_are_enumerated() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").write(1, "x").read(0, "x");
        let trace = b.finish();
        let dag = EventDag::new(3); // no ordering at all
        let r = dag.reachability();
        let pairs = r.concurrent_conflicting_pairs(&trace);
        // (0,1) w-w race, (1,2) w-r race; (0,2) same thread.
        assert_eq!(pairs, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn empty_dag_is_fine() {
        let dag = EventDag::new(0);
        assert!(dag.is_empty());
        let _ = dag.reachability();
    }
}
