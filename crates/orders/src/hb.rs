//! The happens-before (HB) engine: Algorithm 1 of the paper (and
//! Algorithm 3 when instantiated with tree clocks).
//!
//! HB is the smallest partial order containing the thread order and, for
//! every lock, the order from each release to every later acquire. The
//! engine maintains one clock per thread and per lock; acquires join,
//! releases monotone-copy. Read/write events only advance the local
//! clock.

use tc_core::{ClockPool, LogicalClock, ThreadId, VectorTime};
use tc_trace::{Event, LockId, Trace, VarId};

use crate::metrics::RunMetrics;
use crate::sync_core::SyncCore;

/// A streaming HB timestamping engine.
///
/// Process events with [`process`](Self::process); after an event, the
/// clock of its thread holds the event's HB timestamp (Lemma 4 of the
/// paper).
///
/// # Example
///
/// ```rust
/// use tc_core::{LogicalClock, ThreadId, TreeClock};
/// use tc_orders::HbEngine;
/// use tc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.acquire(0, "m").release(0, "m").acquire(1, "m");
/// let trace = b.finish();
///
/// let mut hb = HbEngine::<TreeClock>::new(&trace);
/// for e in &trace {
///     hb.process(e);
/// }
/// // t1's acquire is ordered after t0's release:
/// assert_eq!(hb.clock_of(ThreadId::new(1)).unwrap().get(ThreadId::new(0)), 2);
/// ```
pub struct HbEngine<C> {
    core: SyncCore<C>,
}

impl<C: LogicalClock> HbEngine<C> {
    /// Creates an engine sized for `trace`.
    pub fn new(trace: &Trace) -> Self {
        HbEngine {
            core: SyncCore::for_trace(trace),
        }
    }

    /// Creates an engine sized for `trace` that draws its clocks from
    /// `pool`, so a pool recycled from a previous run makes this run
    /// allocation-free. Reclaim the pool with
    /// [`into_pool`](Self::into_pool).
    pub fn with_pool(trace: &Trace, pool: ClockPool<C>) -> Self {
        HbEngine {
            core: SyncCore::for_trace_with_pool(trace, pool),
        }
    }

    /// Creates an engine with explicit thread/lock capacity hints (the
    /// stores grow on demand if exceeded).
    pub fn with_counts(threads: usize, locks: usize) -> Self {
        HbEngine {
            core: SyncCore::new(threads, locks),
        }
    }

    /// Creates an engine with capacity hints that draws its clocks
    /// from `pool` — the streaming constructor, where no [`Trace`] is
    /// ever materialized. The `vars` hint is unused by HB and accepted
    /// for signature uniformity with the other engines.
    pub fn with_capacity(threads: usize, locks: usize, vars: usize, pool: ClockPool<C>) -> Self {
        let _ = vars;
        HbEngine {
            core: SyncCore::with_pool(threads, locks, pool),
        }
    }

    /// Releases thread `t`'s clock into the pool once its last event
    /// has been ingested and its knowledge has been absorbed (after
    /// `join(_, t)` in a well-formed trace). Returns `false` if `t`
    /// never started or was already retired. A later event by a retired
    /// thread panics.
    pub fn retire_thread(&mut self, t: ThreadId) -> bool {
        self.core.retire_thread(t)
    }

    /// `true` once [`retire_thread`](Self::retire_thread) released `t`.
    pub fn is_retired(&self, t: ThreadId) -> bool {
        self.core.is_retired(t)
    }

    /// Re-arms a retired (or never-seen) thread slot for a recycled
    /// occupant, rooting a fresh clock at `t` with its own time
    /// pre-advanced to `base` — the identity layer's slot-recycling
    /// hook (see [`IdentityMap`](tc_core::IdentityMap)).
    pub fn adopt_thread(&mut self, t: ThreadId, base: tc_core::LocalTime) {
        self.core.adopt_thread(t, base);
    }

    /// Computes the pointwise minimum over all live thread clocks into
    /// `floor`; `false` (and an empty floor) when no thread is live.
    /// This is the slot-reclamation predicate of the identity layer: a
    /// retired slot whose final time the floor dominates can never
    /// again change any value.
    pub fn live_floor(&self, floor: &mut Vec<tc_core::LocalTime>) -> bool {
        self.core.live_floor(floor)
    }

    /// Number of threads retired so far.
    pub fn retired_count(&self) -> usize {
        self.core.retired_count()
    }

    /// Evicts every materialized lock clock dominated by the pointwise
    /// minimum over live thread clocks, releasing it into the pool;
    /// returns the number evicted. Value-preserving **only under fork
    /// discipline** (every future thread inherits a live thread's
    /// knowledge at birth) — the streaming layer gates it accordingly.
    pub fn evict_dominated(&mut self) -> usize {
        let mut floor = Vec::new();
        if !self.core.live_floor(&mut floor) {
            return 0;
        }
        self.core.evict_dominated_locks(&floor)
    }

    /// Read-only access to the engine's clock pool (telemetry: fresh /
    /// recycled / parked-bytes counters).
    pub fn pool(&self) -> &ClockPool<C> {
        self.core.pool_ref()
    }

    /// Captures the engine's value-level state for a checkpoint.
    pub fn export_state(&self) -> crate::snapshot::EngineState {
        crate::snapshot::EngineState {
            core: self.core.export_core(),
            vars: Vec::new(),
        }
    }

    /// Rebuilds an engine from a checkpointed state, drawing clocks
    /// from `pool`. Work metrics restart at zero.
    pub fn from_state(state: &crate::snapshot::EngineState, pool: ClockPool<C>) -> Self {
        HbEngine {
            core: SyncCore::from_core_state(&state.core, pool),
        }
    }

    /// Tears the engine down, releasing every clock it created into its
    /// pool for the next run to reuse.
    pub fn into_pool(self) -> ClockPool<C> {
        self.core.into_pool()
    }

    /// Moves one conflict-free partition of the engine's state — the
    /// given threads and locks; `vars` is accepted for signature
    /// uniformity (HB keeps no per-variable clocks) — into a shard
    /// engine that can process the partition's events independently.
    /// The partition must be *closed*: no event fed to the shard may
    /// name a thread, lock or variable outside it. `pool` seeds the
    /// shard's clock pool. Reverse with
    /// [`absorb_epoch_shard`](Self::absorb_epoch_shard).
    pub fn extract_epoch_shard(
        &mut self,
        tids: &[ThreadId],
        locks: &[LockId],
        vars: &[VarId],
        pool: ClockPool<C>,
    ) -> Self {
        let _ = vars;
        HbEngine {
            core: self.core.extract_shard(tids, locks, pool),
        }
    }

    /// Moves a partition's state back from a shard produced by
    /// [`extract_epoch_shard`](Self::extract_epoch_shard); returns the
    /// shard's pool for reuse. Clock values and rooted/retired flags of
    /// the partition's threads come back verbatim, so the merged state
    /// is exactly what sequential processing would have produced.
    pub fn absorb_epoch_shard(
        &mut self,
        shard: Self,
        tids: &[ThreadId],
        locks: &[LockId],
        vars: &[VarId],
    ) -> ClockPool<C> {
        let _ = vars;
        self.core.absorb_shard(shard.core, tids, locks)
    }

    /// Heap bytes currently owned by the engine's clocks (the
    /// `peak_clock_bytes` of the perf baseline — clocks only grow, so
    /// the value after a run is the run's peak).
    pub fn clock_bytes(&self) -> usize {
        self.core.clock_bytes()
    }

    /// Processes one event (events must be fed in trace order).
    pub fn process(&mut self, e: &Event) {
        self.core.begin_event(e.tid);
        self.core.process_sync::<false>(e);
    }

    /// Like [`process`](Self::process), with exact per-entry work
    /// accounting in [`metrics`](Self::metrics) (slower; use for the
    /// `VTWork`/`TCWork`/`VCWork` measurements, not for timing).
    pub fn process_counted(&mut self, e: &Event) {
        self.core.begin_event(e.tid);
        self.core.process_sync::<true>(e);
    }

    /// The current clock of thread `t`, if `t` has appeared.
    pub fn clock_of(&self, t: ThreadId) -> Option<&C> {
        self.core.clock(t)
    }

    /// The current vector timestamp of thread `t`.
    pub fn timestamp_of(&self, t: ThreadId) -> VectorTime {
        self.core.timestamp(t)
    }

    /// The work metrics accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.core.metrics
    }

    /// Runs the whole trace (fast path) and returns the metrics; only
    /// the operation counts are populated.
    pub fn run(trace: &Trace) -> RunMetrics {
        Self::run_pooled(trace, &mut ClockPool::new())
    }

    /// [`run`](Self::run) drawing clocks from (and returning them to)
    /// `pool` — the steady-state, allocation-free entry point.
    pub fn run_pooled(trace: &Trace, pool: &mut ClockPool<C>) -> RunMetrics {
        let mut engine = HbEngine::<C>::with_pool(trace, std::mem::take(pool));
        for e in trace {
            engine.process(e);
        }
        let metrics = engine.core.metrics;
        *pool = engine.into_pool();
        metrics
    }

    /// Runs the whole trace with exact work accounting.
    pub fn run_counted(trace: &Trace) -> RunMetrics {
        Self::run_counted_pooled(trace, &mut ClockPool::new())
    }

    /// [`run_counted`](Self::run_counted) with pooled clocks.
    pub fn run_counted_pooled(trace: &Trace, pool: &mut ClockPool<C>) -> RunMetrics {
        let mut engine = HbEngine::<C>::with_pool(trace, std::mem::take(pool));
        for e in trace {
            engine.process_counted(e);
        }
        let metrics = engine.core.metrics;
        *pool = engine.into_pool();
        metrics
    }

    /// Runs the whole trace collecting each event's HB timestamp
    /// (O(n·k) memory — intended for tests and small traces).
    pub fn collect_timestamps(trace: &Trace) -> Vec<VectorTime> {
        Self::collect_timestamps_pooled(trace, &mut ClockPool::new())
    }

    /// [`collect_timestamps`](Self::collect_timestamps) with pooled
    /// clocks.
    pub fn collect_timestamps_pooled(trace: &Trace, pool: &mut ClockPool<C>) -> Vec<VectorTime> {
        let mut engine = HbEngine::<C>::with_pool(trace, std::mem::take(pool));
        let mut out = Vec::with_capacity(trace.len());
        for e in trace {
            engine.process(e);
            out.push(engine.timestamp_of(e.tid));
        }
        *pool = engine.into_pool();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::{TreeClock, VectorClock, VectorTime};
    use tc_trace::TraceBuilder;

    fn vt(v: &[u32]) -> VectorTime {
        VectorTime::from(v.to_vec())
    }

    /// The paper's Figure 1 numbers, scaled down: a join at an acquire
    /// updates exactly the entries the releaser knew better.
    #[test]
    fn acquire_joins_release_clock() {
        let mut b = TraceBuilder::new();
        b.acquire(1, "m"); // t1: [0,1]
        b.release(1, "m"); // t1: [0,2], lock = [0,2]
        b.acquire(0, "m"); // t0: [1,2]
        let trace = b.finish();
        let ts = HbEngine::<TreeClock>::collect_timestamps(&trace);
        assert_eq!(ts, vec![vt(&[0, 1]), vt(&[0, 2]), vt(&[1, 2])]);
    }

    #[test]
    fn reads_and_writes_only_advance_local_time() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x").write(1, "x");
        let trace = b.finish();
        let ts = HbEngine::<VectorClock>::collect_timestamps(&trace);
        // No synchronization: each thread only knows itself.
        assert_eq!(ts, vec![vt(&[1]), vt(&[0, 1]), vt(&[0, 2])]);
    }

    #[test]
    fn two_critical_sections_order_transitively() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").release(0, "m"); // t0: 1,2
        b.acquire(1, "m").release(1, "m"); // t1 learns t0@2
        b.acquire(2, "n"); // unrelated lock: t2 learns nothing
        let trace = b.finish();
        let ts = HbEngine::<TreeClock>::collect_timestamps(&trace);
        assert_eq!(ts[3], vt(&[2, 2]));
        assert_eq!(ts[4], vt(&[0, 0, 1]));
    }

    #[test]
    fn tree_and_vector_agree_on_fork_join_traces() {
        let mut b = TraceBuilder::new();
        b.fork(0, 1).fork(0, 2);
        b.acquire(1, "m").release(1, "m");
        b.acquire(2, "m").release(2, "m");
        b.join(0, 1).join(0, 2);
        b.acquire(0, "m");
        let trace = b.finish();
        assert_eq!(
            HbEngine::<TreeClock>::collect_timestamps(&trace),
            HbEngine::<VectorClock>::collect_timestamps(&trace)
        );
    }

    #[test]
    fn metrics_count_joins_and_copies() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m")
            .release(0, "m")
            .acquire(1, "m")
            .release(1, "m");
        let m = HbEngine::<TreeClock>::run_counted(&b.finish());
        assert_eq!(m.events, 4);
        // t0's acquire targets a lock nobody has released yet: the lazy
        // lock clock has not materialized, so no join is performed (or
        // counted). Only t1's acquire joins.
        assert_eq!(m.joins, 1);
        assert_eq!(m.copies, 2);
        // VTWork: 4 increments + 1 (t0's release publishes its time)
        // + 1 (t1's acquire learns t0@2) + 1 (t1's release updates the
        // lock's t1 entry).
        assert_eq!(m.vt_work(), 7);
    }

    #[test]
    fn retirement_releases_the_clock_and_keeps_values_elsewhere() {
        let mut b = TraceBuilder::new();
        b.fork(0, 1);
        b.acquire(1, "m").release(1, "m");
        b.join(0, 1);
        b.acquire(0, "m");
        let trace = b.finish();
        let mut hb = HbEngine::<TreeClock>::new(&trace);
        for (i, e) in trace.iter().enumerate() {
            hb.process(e);
            if i == 3 {
                assert!(hb.retire_thread(ThreadId::new(1)));
                assert!(!hb.retire_thread(ThreadId::new(1)), "double retire");
            }
        }
        // The parent absorbed the child's knowledge before retirement.
        assert_eq!(hb.timestamp_of(ThreadId::new(0)).get(ThreadId::new(1)), 2);
        assert_eq!(hb.retired_count(), 1);
        assert!(hb.pool().recycled() + hb.pool().free_len() as u64 >= 1);
    }

    #[test]
    #[should_panic(expected = "after being retired")]
    fn events_after_retirement_panic() {
        let mut b = TraceBuilder::new();
        b.fork(0, 1).join(0, 1).acquire(1, "m");
        let trace = b.finish(); // invalid, but engines don't validate
        let mut hb = HbEngine::<TreeClock>::new(&trace);
        for (i, e) in trace.iter().enumerate() {
            hb.process(e);
            if i == 1 {
                hb.retire_thread(ThreadId::new(1));
            }
        }
    }

    #[test]
    fn eviction_releases_dominated_locks_without_changing_values() {
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").release(0, "m");
        b.acquire(1, "m"); // both threads now dominate m's clock [2]
        b.acquire(0, "n").release(0, "n"); // n = [4]: t1 does not know t0@4
        b.release(1, "m");
        b.acquire(0, "m"); // re-learns m after its eviction
        let trace = b.finish();
        let mut hb = HbEngine::<TreeClock>::new(&trace);
        let mut reference = HbEngine::<TreeClock>::new(&trace);
        for (i, e) in trace.iter().enumerate() {
            hb.process(e);
            reference.process(e);
            if i == 4 {
                // Only m ([2] ⊑ floor [2,0]) is dominated; n ([4]) is not.
                assert_eq!(hb.evict_dominated(), 1);
            }
        }
        // Eviction is invisible to every subsequent timestamp.
        for t in 0..2u32 {
            assert_eq!(
                hb.timestamp_of(ThreadId::new(t)),
                reference.timestamp_of(ThreadId::new(t))
            );
        }
    }

    #[test]
    fn export_import_round_trips_mid_run() {
        let mut b = TraceBuilder::new();
        for i in 0..24u32 {
            let t = i % 3;
            b.acquire_id(t, i % 2);
            b.release_id(t, i % 2);
        }
        b.fork(0, 3);
        b.acquire_id(3, 0);
        b.release_id(3, 0);
        let trace = b.finish();
        let half = trace.len() / 2;

        let mut original = HbEngine::<TreeClock>::new(&trace);
        for e in trace.iter().take(half) {
            original.process(e);
        }
        let state = original.export_state();
        let mut restored = HbEngine::<VectorClock>::from_state(&state, ClockPool::new());
        // Cross-backend restore: values are representation independent.
        for e in trace.iter().skip(half) {
            original.process(e);
            restored.process(e);
        }
        for t in 0..4u32 {
            assert_eq!(
                original.timestamp_of(ThreadId::new(t)),
                restored.timestamp_of(ThreadId::new(t)),
                "thread {t}"
            );
        }
    }

    #[test]
    fn epoch_shard_round_trip_matches_sequential() {
        // Two closed partitions: {t0, t1, lock m} and {t2, t3, lock n}.
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").release(0, "m").acquire(1, "m");
        b.acquire(2, "n").release(2, "n").acquire(3, "n");
        let trace = b.finish();

        let mut seq = HbEngine::<TreeClock>::with_counts(4, 2);
        let mut par = HbEngine::<TreeClock>::with_counts(4, 2);
        for e in &trace {
            seq.process(e);
        }

        let part_a: Vec<Event> = trace
            .iter()
            .copied()
            .filter(|e| e.tid.index() < 2)
            .collect();
        let part_b: Vec<Event> = trace
            .iter()
            .copied()
            .filter(|e| e.tid.index() >= 2)
            .collect();
        let tids_a = [ThreadId::new(0), ThreadId::new(1)];
        let tids_b = [ThreadId::new(2), ThreadId::new(3)];
        let locks_a = [LockId::new(0)];
        let locks_b = [LockId::new(1)];

        let mut shard_a = par.extract_epoch_shard(&tids_a, &locks_a, &[], ClockPool::new());
        let mut shard_b = par.extract_epoch_shard(&tids_b, &locks_b, &[], ClockPool::new());
        // Feed partition B first: cross-shard order must not matter.
        for e in &part_b {
            shard_b.process(e);
        }
        for e in &part_a {
            shard_a.process(e);
        }
        let _ = par.absorb_epoch_shard(shard_b, &tids_b, &locks_b, &[]);
        let _ = par.absorb_epoch_shard(shard_a, &tids_a, &locks_a, &[]);

        for t in 0..4u32 {
            assert_eq!(
                par.timestamp_of(ThreadId::new(t)),
                seq.timestamp_of(ThreadId::new(t)),
                "thread {t}"
            );
        }
    }

    #[test]
    fn vt_work_is_representation_independent() {
        let mut b = TraceBuilder::new();
        for round in 0..4u32 {
            for t in 0..6u32 {
                b.acquire_id(t, (t + round) % 3);
                b.release_id(t, (t + round) % 3);
            }
        }
        let trace = b.finish();
        let m_tc = HbEngine::<TreeClock>::run_counted(&trace);
        let m_vc = HbEngine::<VectorClock>::run_counted(&trace);
        assert_eq!(m_tc.vt_work(), m_vc.vt_work());
        // And the tree does no more touching than the vector.
        assert!(m_tc.ds_work() <= m_vc.ds_work());
    }
}
