//! Value-level engine state capture for the streaming subsystem's
//! checkpoints.
//!
//! A checkpoint stores clock *values*, not clock representations: all
//! future values (and therefore all future race reports) of an engine
//! are determined by the current values alone, so a restored engine may
//! rebuild each clock in whatever shape its backend prefers (the tree
//! backend re-materializes the O(present) star; see
//! [`LogicalClock::restore_value`]). Work metrics are intentionally
//! *not* part of the state — a resumed run's counters restart at zero,
//! which keeps the format small and representation-independent.

use tc_core::{ClockPool, LocalTime, LogicalClock, ThreadId};

/// A clock captured as its represented vector time plus its owner.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClockValue {
    /// The owning (root) thread, `None` only for all-zero clocks.
    pub root: Option<ThreadId>,
    /// The represented times, dense by thread index (trailing zeros
    /// insignificant).
    pub times: Vec<LocalTime>,
}

impl ClockValue {
    /// Captures `clock`'s value.
    pub fn capture<C: LogicalClock>(clock: &C) -> ClockValue {
        ClockValue {
            root: clock.root_tid(),
            times: clock.vector_time().into_inner(),
        }
    }

    /// Restores this value into an *empty* clock.
    pub fn restore_into<C: LogicalClock>(&self, clock: &mut C) {
        clock.restore_value(&self.times, self.root);
    }

    /// Restores this value into a clock drawn from `pool`.
    pub fn restore_from_pool<C: LogicalClock>(&self, pool: &mut ClockPool<C>) -> C {
        let mut c = pool.acquire();
        self.restore_into(&mut c);
        c
    }
}

/// One thread slot of the shared engine core.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadSlot {
    /// The thread was retired (its clock released) before the snapshot.
    pub retired: bool,
    /// The thread's clock value; `None` when the thread never started
    /// (or was retired).
    pub clock: Option<ClockValue>,
}

/// The shared core state: per-thread and per-lock clocks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoreState {
    /// Thread slots, dense by thread index.
    pub threads: Vec<ThreadSlot>,
    /// Materialized lock clocks, dense by lock index (`None` = lazy).
    pub locks: Vec<Option<ClockValue>>,
}

/// Per-variable state of the SHB/MAZ engines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VarClocks {
    /// The last-write clock `LW_x`, if materialized.
    pub last_write: Option<ClockValue>,
    /// MAZ `R_{t,x}` read clocks (empty for HB/SHB).
    pub reads: Vec<(ThreadId, ClockValue)>,
    /// MAZ `LRDs_x` reader set (empty for HB/SHB).
    pub lrds: Vec<ThreadId>,
}

/// The complete value-level state of one partial-order engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineState {
    /// Thread and lock clocks.
    pub core: CoreState,
    /// Per-variable clocks, dense by variable index (empty for HB).
    pub vars: Vec<VarClocks>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::{TreeClock, VectorClock};

    #[test]
    fn clock_value_round_trips_across_backends() {
        let mut src = TreeClock::new();
        src.init_root(ThreadId::new(2));
        src.increment(5);
        let mut other = TreeClock::new();
        other.init_root(ThreadId::new(0));
        other.increment(3);
        src.join(&other);

        let value = ClockValue::capture(&src);
        assert_eq!(value.root, Some(ThreadId::new(2)));

        let mut tree = TreeClock::new();
        value.restore_into(&mut tree);
        assert_eq!(tree.vector_time(), src.vector_time());
        assert_eq!(tree.root_tid(), src.root_tid());

        let mut vector = VectorClock::new();
        value.restore_into(&mut vector);
        assert_eq!(vector.vector_time(), src.vector_time());
        assert_eq!(vector.root_tid(), src.root_tid());
    }

    #[test]
    fn empty_clock_value_restores_empty() {
        let value = ClockValue::capture(&TreeClock::new());
        assert_eq!(value.root, None);
        let mut pool = ClockPool::<VectorClock>::new();
        let c = value.restore_from_pool(&mut pool);
        assert!(c.is_empty());
    }
}
