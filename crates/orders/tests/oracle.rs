//! Differential tests of the streaming engines against the executable
//! specification (`tc_orders::spec`), plus empirical checks of the
//! paper's two headline theorems:
//!
//! - **Lemma 4** (correctness): the clock of an event's thread right
//!   after processing equals the definitional timestamp `C_e`, for HB —
//!   and the analogous statements for SHB and MAZ.
//! - **Theorem 1** (vt-optimality): tree-clock work stays within 3× of
//!   the representation-independent lower bound `VTWork`, on *every*
//!   input; vector clocks have no such bound (star topologies drive
//!   their ratio to Θ(k)).

use proptest::prelude::*;

use tc_core::{TreeClock, VectorClock};
use tc_orders::spec::spec_timestamps;
use tc_orders::{HbEngine, MazEngine, PartialOrderKind, ShbEngine};
use tc_trace::gen::{scenarios, WorkloadSpec};
use tc_trace::Trace;

fn small_workload(seed: u64, threads: u32, sync_pct: u8) -> Trace {
    WorkloadSpec {
        threads,
        locks: 3,
        vars: 4,
        events: 120,
        sync_ratio: f64::from(sync_pct) / 100.0,
        write_ratio: 0.4,
        fork_join: seed.is_multiple_of(2),
        seed,
        ..WorkloadSpec::default()
    }
    .generate()
}

fn check_against_spec(trace: &Trace) {
    let cases: [(PartialOrderKind, Vec<_>, Vec<_>); 3] = [
        (
            PartialOrderKind::Hb,
            HbEngine::<TreeClock>::collect_timestamps(trace),
            HbEngine::<VectorClock>::collect_timestamps(trace),
        ),
        (
            PartialOrderKind::Shb,
            ShbEngine::<TreeClock>::collect_timestamps(trace),
            ShbEngine::<VectorClock>::collect_timestamps(trace),
        ),
        (
            PartialOrderKind::Maz,
            MazEngine::<TreeClock>::collect_timestamps(trace),
            MazEngine::<VectorClock>::collect_timestamps(trace),
        ),
    ];
    for (kind, tc, vc) in cases {
        let oracle = spec_timestamps(trace, kind);
        assert_eq!(tc.len(), oracle.len());
        for i in 0..oracle.len() {
            assert_eq!(
                tc[i], oracle[i],
                "{kind}: tree clock timestamp of event {i} diverges from the definition"
            );
            assert_eq!(
                vc[i], oracle[i],
                "{kind}: vector clock timestamp of event {i} diverges from the definition"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 4 and its SHB/MAZ analogues, on random mixed workloads,
    /// for both representations.
    #[test]
    fn engines_match_the_definitions(
        seed in 0u64..10_000,
        threads in 2u32..7,
        sync_pct in 0u8..60,
    ) {
        let trace = small_workload(seed, threads, sync_pct);
        check_against_spec(&trace);
    }

    /// HB ⊆ SHB ⊆ MAZ, observed through timestamps.
    #[test]
    fn partial_orders_are_nested(seed in 0u64..10_000) {
        let trace = small_workload(seed, 5, 25);
        let hb = HbEngine::<TreeClock>::collect_timestamps(&trace);
        let shb = ShbEngine::<TreeClock>::collect_timestamps(&trace);
        let maz = MazEngine::<TreeClock>::collect_timestamps(&trace);
        for i in 0..trace.len() {
            prop_assert!(hb[i].leq(&shb[i]), "HB ⊆ SHB violated at event {i}");
            prop_assert!(shb[i].leq(&maz[i]), "SHB ⊆ MAZ violated at event {i}");
        }
    }

    /// Theorem 1, empirically: TCWork ≤ 3·VTWork on random inputs, and
    /// VTWork agrees across representations.
    #[test]
    fn tree_clock_work_is_vt_optimal(
        seed in 0u64..10_000,
        threads in 2u32..10,
        sync_pct in 1u8..80,
    ) {
        let trace = small_workload(seed, threads, sync_pct);
        let tc = HbEngine::<TreeClock>::run_counted(&trace);
        let vc = HbEngine::<VectorClock>::run_counted(&trace);
        prop_assert_eq!(tc.vt_work(), vc.vt_work(), "VTWork must be representation independent");
        prop_assert!(
            tc.ds_work() <= 3 * tc.vt_work(),
            "TCWork {} exceeds 3·VTWork {} (Theorem 1)",
            tc.ds_work(),
            tc.vt_work()
        );
    }
}

/// Theorem 1 on the adversarial scenarios of Figure 10 as well.
#[test]
fn tree_clock_work_bound_holds_on_all_scenarios() {
    for s in scenarios::Scenario::ALL {
        for threads in [4u32, 16, 48] {
            let trace = s.generate(threads, 6_000, 11);
            let tc = HbEngine::<TreeClock>::run_counted(&trace);
            assert!(
                tc.ds_work() <= 3 * tc.vt_work(),
                "{s}/{threads}: TCWork {} > 3·VTWork {}",
                tc.ds_work(),
                tc.vt_work()
            );
        }
    }
}

/// Vector clocks are *not* vt-optimal: on the star topology their work
/// ratio grows linearly with the thread count while tree clocks stay
/// bounded by 3 (the contrast of Figure 8).
#[test]
fn vector_clocks_are_not_vt_optimal_on_star() {
    let mut last_ratio = 0.0;
    for threads in [8u32, 32, 128] {
        let trace = scenarios::star(threads, 20_000, 5);
        let tc = HbEngine::<TreeClock>::run_counted(&trace);
        let vc = HbEngine::<VectorClock>::run_counted(&trace);
        assert!(tc.work_ratio() <= 3.0, "tree ratio {} > 3", tc.work_ratio());
        assert!(
            vc.work_ratio() > last_ratio,
            "vector ratio should grow with threads"
        );
        last_ratio = vc.work_ratio();
    }
    // With 128 threads the vector clock does over an order of magnitude
    // more work than necessary.
    assert!(last_ratio > 10.0, "vector ratio only reached {last_ratio}");
}

/// The Figure 10 scenarios validated end-to-end against the spec at
/// small scale (both representations, all partial orders).
#[test]
fn scenarios_match_spec_at_small_scale() {
    for s in scenarios::Scenario::ALL {
        let trace = s.generate(5, 160, 23);
        check_against_spec(&trace);
    }
}
