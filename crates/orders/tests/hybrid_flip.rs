//! Representation-flip coverage for the adaptive [`HybridClock`]: the
//! hybrid must stay *value-identical* to the tree clock through
//! arbitrary dense↔sparse phase changes — after every single event, not
//! just at the end — while actually exercising both representations and
//! the migrations between them.

use proptest::prelude::*;

use tc_core::{HybridClock, ThreadId, TreeClock};
use tc_orders::{HbEngine, MazEngine, ShbEngine};
use tc_trace::gen::Scenario;
use tc_trace::{Trace, TraceBuilder};

/// Runs `trace` through the hybrid and tree HB engines in lockstep,
/// asserting equal timestamps after every event, and returns the total
/// (tree→flat, flat→tree) migrations the hybrid's thread clocks
/// performed.
fn assert_stepwise_equal(trace: &Trace, label: &str) -> (u32, u32) {
    let mut hybrid = HbEngine::<HybridClock>::new(trace);
    let mut tree = HbEngine::<TreeClock>::new(trace);
    for (i, e) in trace.iter().enumerate() {
        hybrid.process(e);
        tree.process(e);
        assert_eq!(
            hybrid.timestamp_of(e.tid),
            tree.timestamp_of(e.tid),
            "{label}: hybrid diverged from tree at event {i} ({e})"
        );
    }
    let mut flips = (0, 0);
    for t in 0..trace.thread_count() as u32 {
        if let Some(c) = hybrid.clock_of(ThreadId::new(t)) {
            let f = c.flips();
            flips.0 += f.0;
            flips.1 += f.1;
        }
    }
    flips
}

/// A synthetic workload with hard phase boundaries: dense all-through-
/// one-lock bursts alternating with sparse self-sync stretches.
/// `dense_rounds` is the per-thread sync count of a dense phase and
/// `sparse_rounds` the per-thread sync count of a sparse phase — size
/// them past the hysteresis windows (sparse observations are sampled
/// at probe frequency, so flipping back needs several hundred quiet
/// joins per clock) to force actual migrations.
fn phase_change_trace(
    threads: u32,
    phases: usize,
    dense_rounds: u32,
    sparse_rounds: u32,
    seed: u64,
) -> Trace {
    let mut b = TraceBuilder::new();
    let mut state = seed | 1;
    let mut rand = move |n: u32| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % u64::from(n)) as u32
    };
    for phase in 0..phases {
        if phase % 2 == 0 {
            // Dense phase: everyone churns through one shared lock.
            for round in 0..dense_rounds {
                for t in 0..threads {
                    b.acquire_id(t, 0);
                    b.release_id(t, 0);
                    let _ = round;
                }
            }
        } else {
            // Sparse phase: each thread syncs on its own lock, with a
            // rare random cross-sync to keep the ordering interesting.
            for _ in 0..sparse_rounds * threads {
                let t = rand(threads);
                let l = if rand(16) == 0 { rand(threads) } else { t } + 1;
                b.acquire_id(t, l);
                b.release_id(t, l);
            }
        }
    }
    b.finish()
}

#[test]
fn phase_changes_keep_hybrid_and_tree_value_identical() {
    // The thread count must exceed the calibrated dense cutoff (128
    // entries): at or below it the arena is flat-cheap by fiat and the
    // sparse phases would (correctly) never migrate anything back.
    let trace = phase_change_trace(136, 4, 30, 400, 0xF00D);
    let (to_flat, to_tree) = assert_stepwise_equal(&trace, "phase-change");
    assert!(
        to_flat > 0,
        "the dense phases must actually drive tree→flat migrations"
    );
    assert!(
        to_tree > 0,
        "the sparse phases must actually drive flat→tree migrations"
    );
}

#[test]
fn hybrid_matches_tree_on_every_engine_for_phase_changes() {
    let trace = phase_change_trace(12, 6, 30, 60, 0xBEEF);
    assert_eq!(
        ShbEngine::<HybridClock>::collect_timestamps(&trace),
        ShbEngine::<TreeClock>::collect_timestamps(&trace),
        "SHB timestamps must be representation independent"
    );
    assert_eq!(
        MazEngine::<HybridClock>::collect_timestamps(&trace),
        MazEngine::<TreeClock>::collect_timestamps(&trace),
        "MAZ timestamps must be representation independent"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The bursty-channels family alternates communication-heavy bursts
    /// with quiet stretches — the adversarial input for the density
    /// window. Whatever the shape, the hybrid must track the tree
    /// exactly, event by event.
    #[test]
    fn bursty_channels_stay_value_identical(
        threads in 3u32..17,
        events in 120usize..400,
        seed in 0u64..1_000,
    ) {
        let trace = Scenario::BurstyChannels.generate(threads, events, seed);
        assert_stepwise_equal(&trace, "bursty-channels");
    }

    /// The pipeline family's stage-to-stage hand-offs produce mid-range
    /// densities — right around the flip threshold for small thread
    /// counts, which is exactly where a representation bug would hide.
    #[test]
    fn pipeline_stays_value_identical(
        threads in 3u32..17,
        events in 120usize..400,
        seed in 0u64..1_000,
    ) {
        let trace = Scenario::Pipeline.generate(threads, events, seed);
        assert_stepwise_equal(&trace, "pipeline");
    }

    /// Random phase-change shapes: threads × phase count × seed.
    #[test]
    fn random_phase_changes_stay_value_identical(
        threads in 4u32..20,
        phases in 2usize..7,
        seed in 1u64..500,
    ) {
        let trace = phase_change_trace(threads, phases, 10, 20, seed);
        assert_stepwise_equal(&trace, "random-phase-change");
    }
}
