//! Identity-recycling integration: spawn/join churn interleaved with
//! checkpoint/resume mid-reclaim must be invisible (same timestamps,
//! reports, slot assignments, and byte-identical final checkpoints),
//! and peak clock bytes must stay O(live threads) as the total-ever
//! spawn count grows 10x — with the no-recycling baseline measurably
//! growing on the same workload shape.

use proptest::prelude::*;

use tc_core::{ClockPool, HybridClock, LogicalClock, TreeClock, VectorClock};
use tc_orders::PartialOrderKind;
use tc_stream::{Checkpoint, DetectorConfig, IncrementalDetector};
use tc_trace::gen::families::spawn_join_churn_sized;
use tc_trace::Trace;

fn recycling_config(order: PartialOrderKind) -> DetectorConfig {
    DetectorConfig {
        order,
        retire_on_join: true,
        evict_every: None,
        recycle_slots: true,
    }
}

/// Runs `trace` through two recycling detectors in lockstep — one fed
/// straight through, one checkpoint/serialized/restored at `cp_at` —
/// and asserts the restored session is indistinguishable: identical
/// per-event timestamps, identical slot widths (the restored map must
/// hand out the *same* recycled slots, not merely equivalent ones),
/// identical reports and recycle counters, and byte-identical final
/// checkpoints.
fn assert_resume_invisible<C: LogicalClock>(trace: &Trace, order: PartialOrderKind, cp_at: usize) {
    let label = format!("{order}/{}/cp@{cp_at}", C::NAME);
    let mut straight = IncrementalDetector::<C>::new(recycling_config(order));
    let mut resumed = IncrementalDetector::<C>::new(recycling_config(order));
    for (i, e) in trace.iter().enumerate() {
        if i == cp_at {
            let bytes = resumed.checkpoint().to_bytes();
            let cp = Checkpoint::from_bytes(&bytes)
                .unwrap_or_else(|err| panic!("{label}: checkpoint round trip failed: {err}"));
            resumed = IncrementalDetector::from_checkpoint(&cp, ClockPool::new());
        }
        straight
            .feed(e)
            .unwrap_or_else(|err| panic!("{label}: straight feed failed at {i}: {err}"));
        resumed
            .feed(e)
            .unwrap_or_else(|err| panic!("{label}: resumed feed failed at {i}: {err}"));
        assert_eq!(
            resumed.timestamp_of(e.tid),
            straight.timestamp_of(e.tid),
            "{label}: timestamp diverges at event {i} ({})",
            trace[i]
        );
        assert_eq!(
            resumed.slot_width(),
            straight.slot_width(),
            "{label}: restored session stopped reusing the same slots at event {i}"
        );
    }
    assert_eq!(
        resumed.report(),
        straight.report(),
        "{label}: report diverges after resume"
    );
    assert_eq!(
        resumed.recycled_slots(),
        straight.recycled_slots(),
        "{label}: recycle counter diverges after resume"
    );
    assert_eq!(
        resumed.checkpoint().to_bytes(),
        straight.checkpoint().to_bytes(),
        "{label}: final checkpoints are not byte-identical"
    );
}

/// Recycling must also be invisible in the detector's *outputs*: the
/// straight recycling run must match a plain (no-recycling) run on the
/// same trace, timestamp for timestamp.
fn assert_matches_no_recycling<C: LogicalClock>(trace: &Trace, order: PartialOrderKind) {
    let label = format!("{order}/{}", C::NAME);
    let mut on = IncrementalDetector::<C>::new(recycling_config(order));
    let mut off = IncrementalDetector::<C>::new(DetectorConfig {
        recycle_slots: false,
        ..recycling_config(order)
    });
    for (i, e) in trace.iter().enumerate() {
        on.feed(e).unwrap();
        off.feed(e).unwrap();
        assert_eq!(
            on.timestamp_of(e.tid),
            off.timestamp_of(e.tid),
            "{label}: recycling changed the timestamp at event {i} ({})",
            trace[i]
        );
    }
    assert_eq!(
        on.report(),
        off.report(),
        "{label}: recycling changed the race report"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random churn shapes (total threads, live width, length, seed)
    /// with a checkpoint dropped at a random position — frequently mid
    /// wave, while retired threads sit on the pending-reclaim queue —
    /// resume invisibly on a random order x backend, and agree with a
    /// no-recycling run.
    #[test]
    fn churn_with_checkpoint_resume_mid_reclaim_is_invisible(
        total in 6u32..40,
        width in 2u32..8,
        events in 200usize..700,
        seed in 0u64..10_000,
        cp_tenths in 1usize..9,
        pick in 0usize..9,
    ) {
        let trace = spawn_join_churn_sized(total, width, events, seed);
        let order = PartialOrderKind::ALL[pick % 3];
        let cp_at = trace.len() * cp_tenths / 10;
        match pick / 3 {
            0 => {
                assert_resume_invisible::<TreeClock>(&trace, order, cp_at);
                assert_matches_no_recycling::<TreeClock>(&trace, order);
            }
            1 => {
                assert_resume_invisible::<VectorClock>(&trace, order, cp_at);
                assert_matches_no_recycling::<VectorClock>(&trace, order);
            }
            _ => {
                assert_resume_invisible::<HybridClock>(&trace, order, cp_at);
                assert_matches_no_recycling::<HybridClock>(&trace, order);
            }
        }
    }
}

struct ChurnRun {
    peak_clock_bytes: usize,
    recycled_slots: u64,
    slot_width: usize,
}

fn run_churn<C: LogicalClock>(total: u32, live: u32, events: usize, recycle: bool) -> ChurnRun {
    let trace = spawn_join_churn_sized(total, live, events, 0xB0B0);
    let mut d = IncrementalDetector::<C>::new(DetectorConfig {
        recycle_slots: recycle,
        ..DetectorConfig::default()
    });
    for e in trace.iter() {
        d.feed(e).unwrap();
    }
    assert!(
        d.report().races.is_empty(),
        "churn family is race-free by construction"
    );
    ChurnRun {
        peak_clock_bytes: d.peak_clock_bytes(),
        recycled_slots: d.recycled_slots(),
        slot_width: d.slot_width(),
    }
}

/// The tentpole's bounded-memory guarantee: with ~64 live threads,
/// peak clock bytes stay within 2x when the total-ever spawn count
/// grows 10x under recycling — while the no-recycling baseline's peak
/// grows with the total spawn count on the same workload shape.
///
/// The headline regime in ISSUE/BENCH_8.json is 50k -> 500k spawns;
/// this committed test runs the same 10x growth at debug-friendly
/// sizes (5k -> 50k recycled, 800 -> 8k direct — the direct baseline's
/// clock arenas scale with *total* threads, so its big leg is kept
/// smaller to bound test memory and time).
#[test]
fn churn_peak_clock_bytes_stay_flat_under_10x_spawn_growth() {
    const LIVE: u32 = 64;

    let on_small = run_churn::<TreeClock>(5_000, LIVE, 12_000, true);
    let on_big = run_churn::<TreeClock>(50_000, LIVE, 110_000, true);
    assert!(
        on_big.recycled_slots > 0,
        "the big recycled run must actually reclaim slots"
    );
    assert!(
        on_big.slot_width <= (LIVE as usize + 2) * 2,
        "recycled slot width must stay O(live): got {}",
        on_big.slot_width
    );
    assert!(
        on_big.peak_clock_bytes <= 2 * on_small.peak_clock_bytes,
        "recycling-on peak must stay within 2x across 10x spawn growth: \
         {} bytes at 5k spawns vs {} bytes at 50k spawns",
        on_small.peak_clock_bytes,
        on_big.peak_clock_bytes,
    );

    let off_small = run_churn::<TreeClock>(800, LIVE, 2_400, false);
    let off_big = run_churn::<TreeClock>(8_000, LIVE, 22_000, false);
    assert!(
        off_big.peak_clock_bytes >= 3 * off_small.peak_clock_bytes,
        "no-recycling baseline must measurably grow across 10x spawn growth: \
         {} bytes at 800 spawns vs {} bytes at 8k spawns",
        off_small.peak_clock_bytes,
        off_big.peak_clock_bytes,
    );
    assert_eq!(off_big.recycled_slots, 0);
}
