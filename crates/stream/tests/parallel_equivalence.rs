//! Epoch-parallel equivalence properties (the ISSUE 7 satellite): for
//! *any* interleaving of a frame's conflict-free epochs, feeding the
//! frame through the [`ParallelDetector`] must yield per-event
//! timestamps, returned races and a final report identical to feeding
//! the very same event sequence through a sequential
//! [`IncrementalDetector`] — across all three clock backends and all
//! three partial orders. The degenerate single-epoch frame (nothing to
//! split) must take the sequential fallback and still match.

use std::collections::VecDeque;
use std::sync::Arc;

use proptest::prelude::*;

use tc_analysis::Race;
use tc_core::{HybridClock, LogicalClock, TreeClock, VectorClock};
use tc_orders::PartialOrderKind;
use tc_stream::{DetectorConfig, EpochPool, IncrementalDetector, ParallelDetector};
use tc_trace::{Event, LockId, Op, ThreadId, VarId};

/// A tiny deterministic generator (splitmix-style) so event shapes and
/// interleavings derive reproducibly from proptest-chosen seeds.
struct Rng(u64);

impl Rng {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

/// One conflict-free epoch: threads `2g` and `2g+1` touching *only*
/// variable `g` and lock `g`, so distinct groups share no resource and
/// the partitioner must place them in distinct epochs. Lock discipline
/// holds by construction (acquire/write/release emitted adjacently by
/// one thread), and any cross-group interleaving preserves it because
/// interleaving keeps each group's internal order.
fn group_events(g: u32, steps: usize, rng: &mut Rng) -> Vec<Event> {
    let var = VarId::new(g);
    let lock = LockId::new(g);
    let mut events = Vec::new();
    for _ in 0..steps {
        let t = ThreadId::new(2 * g + rng.next(2) as u32);
        match rng.next(4) {
            0 => {
                events.push(Event::new(t, Op::Acquire(lock)));
                events.push(Event::new(t, Op::Write(var)));
                events.push(Event::new(t, Op::Release(lock)));
            }
            1 => events.push(Event::new(t, Op::Read(var))),
            _ => events.push(Event::new(t, Op::Write(var))),
        }
    }
    events
}

/// Merges the groups' sequences under a seed-chosen interleaving,
/// preserving each group's internal order (the only constraint a frame
/// schedule must respect).
fn interleave(groups: Vec<Vec<Event>>, rng: &mut Rng) -> Vec<Event> {
    let mut queues: Vec<VecDeque<Event>> = groups.into_iter().map(VecDeque::from).collect();
    let total = queues.iter().map(VecDeque::len).sum();
    let mut frame = Vec::with_capacity(total);
    while frame.len() < total {
        let live: Vec<usize> = (0..queues.len())
            .filter(|&q| !queues[q].is_empty())
            .collect();
        let q = live[rng.next(live.len())];
        frame.push(queues[q].pop_front().expect("picked from a live queue"));
    }
    frame
}

/// Feeds `frame` sequentially and in parallel and asserts byte-equal
/// results: per-event acting-thread timestamps, the races returned by
/// the feed, and the final report. `expect_split` pins which path the
/// scheduler must have taken.
fn assert_parallel_matches_sequential<C: LogicalClock + Send + 'static>(
    frame: &[Event],
    order: PartialOrderKind,
    workers: usize,
    expect_split: bool,
) {
    let label = format!("{order}/{}/workers={workers}", C::NAME);
    let config = DetectorConfig::for_order(order);

    let mut seq = IncrementalDetector::<C>::new(config);
    let mut seq_ts = Vec::with_capacity(frame.len());
    let mut seq_races: Vec<Race> = Vec::new();
    for e in frame {
        let found = seq.feed(e).unwrap_or_else(|err| panic!("{label}: {err}"));
        seq_races.extend(found.iter().cloned());
        seq_ts.push(seq.timestamp_of(e.tid));
    }

    let mut par = ParallelDetector::<C>::new(config, Arc::new(EpochPool::new(workers)), 2);
    let (par_races, par_ts) = par
        .feed_frame_traced(frame)
        .unwrap_or_else(|err| panic!("{label}: {err}"));

    assert_eq!(par_ts, seq_ts, "{label}: per-event timestamps diverged");
    assert_eq!(par_races, seq_races, "{label}: returned races diverged");
    assert_eq!(
        par.detector().report(),
        seq.report(),
        "{label}: final reports diverged"
    );
    if expect_split {
        assert_eq!(
            (par.parallel_frames(), par.sequential_frames()),
            (1, 0),
            "{label}: a multi-epoch frame must take the parallel path"
        );
    } else {
        assert_eq!(
            (par.parallel_frames(), par.sequential_frames()),
            (0, 1),
            "{label}: a single-epoch frame must fall back to sequential"
        );
    }
}

fn dispatch(frame: &[Event], order: PartialOrderKind, backend: usize, workers: usize, split: bool) {
    match backend {
        0 => assert_parallel_matches_sequential::<TreeClock>(frame, order, workers, split),
        1 => assert_parallel_matches_sequential::<VectorClock>(frame, order, workers, split),
        _ => assert_parallel_matches_sequential::<HybridClock>(frame, order, workers, split),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of a frame's epochs is equivalent to the
    /// sequential feed of that exact sequence, on a random order ×
    /// backend × worker count.
    #[test]
    fn epoch_interleavings_feed_identically(
        groups in 2u32..6,
        steps in 4usize..24,
        seed in 0u64..100_000,
        order_pick in 0usize..3,
        backend_pick in 0usize..3,
        workers in 1usize..5,
    ) {
        let mut rng = Rng(seed.wrapping_mul(2).wrapping_add(1));
        let sequences: Vec<Vec<Event>> =
            (0..groups).map(|g| group_events(g, steps, &mut rng)).collect();
        let frame = interleave(sequences, &mut rng);
        let order = PartialOrderKind::ALL[order_pick];
        dispatch(&frame, order, backend_pick, workers, true);
    }

    /// The same frame under two different interleavings: both must
    /// match their own sequential feed (the scheduler's merge cannot
    /// depend on arrival order of independent epochs).
    #[test]
    fn reinterleaving_a_frame_changes_nothing(
        seed in 0u64..100_000,
        reshuffle in 1u64..50,
        backend_pick in 0usize..3,
    ) {
        let mut rng = Rng(seed.wrapping_mul(2).wrapping_add(1));
        let sequences: Vec<Vec<Event>> =
            (0..4).map(|g| group_events(g, 12, &mut rng)).collect();
        let first = interleave(sequences.clone(), &mut rng);
        let mut rng2 = Rng(seed.wrapping_add(reshuffle));
        let second = interleave(sequences, &mut rng2);
        dispatch(&first, PartialOrderKind::Hb, backend_pick, 2, true);
        dispatch(&second, PartialOrderKind::Hb, backend_pick, 2, true);
    }
}

/// The forced degenerate case: every event conflicts on one variable,
/// so the partitioner finds a single epoch and the detector must take
/// the sequential fallback — with identical results.
#[test]
fn single_epoch_frames_fall_back_and_still_match() {
    let mut rng = Rng(7);
    let var = VarId::new(0);
    let frame: Vec<Event> = (0..96)
        .map(|_| {
            let t = ThreadId::new(rng.next(6) as u32);
            if rng.next(3) == 0 {
                Event::new(t, Op::Read(var))
            } else {
                Event::new(t, Op::Write(var))
            }
        })
        .collect();
    for order in PartialOrderKind::ALL {
        for backend in 0..3 {
            dispatch(&frame, order, backend, 4, false);
        }
    }
}
