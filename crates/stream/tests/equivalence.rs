//! Streaming-vs-batch equivalence: the incremental detector fed one
//! event at a time must produce reports and per-event/final timestamps
//! identical to the batch engines — across all 9 scenario families, the
//! racy mixed workloads, all 3 clock backends and all 3 partial orders
//! — and a checkpoint/restore mid-trace must change nothing.

use proptest::prelude::*;

use tc_analysis::{HbRaceDetector, MazAnalyzer, RaceReport, ShbRaceDetector};
use tc_core::{ClockPool, HybridClock, LogicalClock, TreeClock, VectorClock, VectorTime};
use tc_orders::{HbEngine, MazEngine, PartialOrderKind, ShbEngine};
use tc_stream::{Checkpoint, DetectorConfig, IncrementalDetector};
use tc_trace::gen::{Scenario, WorkloadSpec};
use tc_trace::Trace;

fn batch_reference<C: LogicalClock>(
    trace: &Trace,
    order: PartialOrderKind,
) -> (Vec<VectorTime>, RaceReport) {
    let timestamps = match order {
        PartialOrderKind::Hb => HbEngine::<C>::collect_timestamps(trace),
        PartialOrderKind::Shb => ShbEngine::<C>::collect_timestamps(trace),
        PartialOrderKind::Maz => MazEngine::<C>::collect_timestamps(trace),
    };
    let report = match order {
        PartialOrderKind::Hb => HbRaceDetector::<C>::new(trace).run(trace),
        PartialOrderKind::Shb => ShbRaceDetector::<C>::new(trace).run(trace),
        PartialOrderKind::Maz => MazAnalyzer::<C>::new(trace).run(trace),
    };
    (timestamps, report)
}

/// Streams `trace` through an [`IncrementalDetector`], checkpointing
/// and restoring at the midpoint, and asserts per-event timestamps,
/// live emission and the final report all equal the batch run.
fn assert_stream_matches_batch<C: LogicalClock>(trace: &Trace, order: PartialOrderKind) {
    let label = format!("{order}/{}", C::NAME);
    let (batch_ts, batch_report) = batch_reference::<C>(trace, order);

    let mut detector = IncrementalDetector::<C>::new(DetectorConfig::for_order(order));
    let mut live = Vec::new();
    let half = trace.len() / 2;
    for (i, e) in trace.iter().enumerate() {
        if i == half {
            // Mid-stream checkpoint: serialize, reload, resume.
            let bytes = detector.checkpoint().to_bytes();
            let cp = Checkpoint::from_bytes(&bytes)
                .unwrap_or_else(|err| panic!("{label}: checkpoint round trip failed: {err}"));
            detector = IncrementalDetector::from_checkpoint(&cp, ClockPool::new());
        }
        live.extend(
            detector
                .feed(e)
                .unwrap_or_else(|err| panic!("{label}: feed failed at {i}: {err}"))
                .iter()
                .copied(),
        );
        let got = detector.timestamp_of(e.tid);
        assert_eq!(
            got, batch_ts[i],
            "{label}: timestamp diverges at event {i} ({})",
            trace[i]
        );
    }
    assert_eq!(
        *detector.report(),
        batch_report,
        "{label}: final report diverges"
    );
    assert_eq!(
        live, batch_report.races,
        "{label}: live emission must deliver each stored race exactly once"
    );
}

fn assert_all_backends(trace: &Trace, order: PartialOrderKind) {
    assert_stream_matches_batch::<TreeClock>(trace, order);
    assert_stream_matches_batch::<VectorClock>(trace, order);
    assert_stream_matches_batch::<HybridClock>(trace, order);
}

#[test]
fn every_scenario_family_streams_identically_on_all_backends() {
    for (i, scenario) in Scenario::ALL.into_iter().enumerate() {
        let trace = scenario.generate(scenario.min_threads().max(4), 200, 40 + i as u64);
        for order in PartialOrderKind::ALL {
            assert_all_backends(&trace, order);
        }
    }
}

#[test]
fn racy_workloads_stream_identically_on_all_backends() {
    for (sync_pct, seed) in [(0u8, 1u64), (10, 2), (40, 3)] {
        let trace = WorkloadSpec {
            threads: 5,
            locks: 2,
            vars: 3,
            events: 250,
            sync_ratio: f64::from(sync_pct) / 100.0,
            shared_fraction: 0.9,
            seed,
            ..WorkloadSpec::default()
        }
        .generate();
        for order in PartialOrderKind::ALL {
            assert_all_backends(&trace, order);
        }
    }
}

#[test]
fn eviction_streams_identically_on_fork_disciplined_traces() {
    // fork-join-tree is fork-disciplined by construction, so dominance
    // eviction is value-preserving; run it aggressively and compare to
    // batch. (The detector's own guard rejects non-disciplined runs.)
    let trace = Scenario::ForkJoinTree.generate(8, 300, 9);
    for order in PartialOrderKind::ALL {
        let (batch_ts, batch_report) = batch_reference::<TreeClock>(&trace, order);
        let config = DetectorConfig {
            order,
            retire_on_join: true,
            evict_every: Some(16),
            recycle_slots: false,
        };
        let mut d = IncrementalDetector::<TreeClock>::new(config);
        for (i, e) in trace.iter().enumerate() {
            d.feed(e).unwrap();
            assert_eq!(
                d.timestamp_of(e.tid),
                batch_ts[i],
                "{order}: eviction changed event {i}"
            );
        }
        assert_eq!(
            *d.report(),
            batch_report,
            "{order}: eviction changed the report"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mixed workloads (racy and quiet, with and without
    /// fork/join structure) stream identically to batch on a random
    /// order × backend.
    #[test]
    fn random_workloads_stream_identically(
        threads in 2u32..7,
        sync_pct in 0u8..70,
        seed in 0u64..10_000,
        order_pick in 0usize..3,
        backend_pick in 0usize..3,
    ) {
        let trace = WorkloadSpec {
            threads,
            locks: 2,
            vars: 4,
            events: 160,
            sync_ratio: f64::from(sync_pct) / 100.0,
            shared_fraction: 0.85,
            fork_join: seed.is_multiple_of(2),
            seed,
            ..WorkloadSpec::default()
        }
        .generate();
        let order = PartialOrderKind::ALL[order_pick];
        match backend_pick {
            0 => assert_stream_matches_batch::<TreeClock>(&trace, order),
            1 => assert_stream_matches_batch::<VectorClock>(&trace, order),
            _ => assert_stream_matches_batch::<HybridClock>(&trace, order),
        }
    }
}
