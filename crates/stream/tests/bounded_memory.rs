//! Bounded-memory regression tests: on spawn/join-wave (thread-churn)
//! traces, thread retirement keeps the clock population proportional
//! to the number of *live* threads, not total threads.

use tc_core::{LogicalClock, TreeClock, VectorClock};
use tc_stream::{DetectorConfig, IncrementalDetector};
use tc_trace::{Trace, TraceBuilder};

/// A spawn/join-wave trace: thread 0 forks `width` fresh children per
/// wave, each does locked work on a shared variable, then all are
/// joined — so at any instant at most `width + 1` threads are live
/// while the total thread count grows with the wave count.
fn wave_trace(waves: u32, width: u32) -> Trace {
    let mut b = TraceBuilder::new();
    let mut next = 1u32;
    for _ in 0..waves {
        let kids: Vec<u32> = (0..width)
            .map(|_| {
                let k = next;
                next += 1;
                k
            })
            .collect();
        for &k in &kids {
            b.fork(0, k);
        }
        for &k in &kids {
            b.acquire(k, "m");
            b.write(k, "x");
            b.release(k, "m");
        }
        for &k in &kids {
            b.join(0, k);
        }
    }
    let trace = b.finish();
    trace.validate().expect("wave trace is well-formed");
    trace
}

struct MemoryProfile {
    /// Max over the run of the engine's live clock bytes.
    peak_live_bytes: usize,
    /// Pool high-water mark in bytes (maintained by the pool itself).
    peak_pool_bytes: usize,
    /// Max clocks parked on the free list at once.
    peak_pool_clocks: usize,
    /// Fresh clock allocations over the whole run.
    fresh: u64,
    threads_total: usize,
    retired: usize,
}

fn profile<C: LogicalClock>(trace: &Trace, retire: bool) -> MemoryProfile {
    let config = DetectorConfig {
        retire_on_join: retire,
        ..DetectorConfig::default()
    };
    let mut d = IncrementalDetector::<C>::new(config);
    let mut peak_live_bytes = 0;
    let mut peak_pool_clocks = 0;
    for e in trace {
        d.feed(e).unwrap();
        peak_live_bytes = peak_live_bytes.max(d.clock_bytes());
        peak_pool_clocks = peak_pool_clocks.max(d.pool().free_len());
    }
    assert!(d.report().is_empty(), "wave trace is race-free");
    MemoryProfile {
        peak_live_bytes,
        peak_pool_bytes: d.pool().peak_bytes(),
        peak_pool_clocks,
        fresh: d.pool().fresh(),
        threads_total: trace.thread_count(),
        retired: d.retired_count(),
    }
}

/// The acceptance criterion: with 10× more total threads than live
/// threads, peak pool bytes stay within 2× of the live-thread working
/// set.
#[test]
fn peak_pool_bytes_stay_within_2x_of_the_live_working_set() {
    const WIDTH: u32 = 8;
    const WAVES: u32 = 10; // total threads = 81 ≈ 9 live × 10
    let trace = wave_trace(WAVES, WIDTH);
    for (label, p) in [
        ("tree", profile::<TreeClock>(&trace, true)),
        ("vector", profile::<VectorClock>(&trace, true)),
    ] {
        assert_eq!(p.threads_total, (WAVES * WIDTH + 1) as usize);
        assert_eq!(p.retired, (WAVES * WIDTH) as usize, "{label}");
        assert!(
            p.peak_pool_bytes <= 2 * p.peak_live_bytes,
            "{label}: peak pool bytes {} exceed 2× the live working set {}",
            p.peak_pool_bytes,
            p.peak_live_bytes
        );
    }
}

/// The regression guard: growing the trace (more churn waves) must not
/// grow the clock *population* at all — fresh allocations and the peak
/// number of parked clocks stay flat, because every wave reuses the
/// previous wave's retired clocks. (Per-clock arena width necessarily
/// grows with the total thread dimension — entries for dead threads
/// remain meaningful — so the flat quantity is clocks, and bytes stay
/// proportional to the live working set, asserted above.)
#[test]
fn clock_population_stays_flat_as_the_trace_grows() {
    const WIDTH: u32 = 6;
    let short = profile::<TreeClock>(&wave_trace(5, WIDTH), true);
    let long = profile::<TreeClock>(&wave_trace(20, WIDTH), true);
    assert_eq!(
        short.fresh, long.fresh,
        "a 4× longer churn trace must allocate no additional clocks"
    );
    assert_eq!(
        short.peak_pool_clocks, long.peak_pool_clocks,
        "the parked-clock high-water mark must not grow with trace length"
    );
    assert!(
        long.peak_pool_bytes <= 2 * long.peak_live_bytes,
        "the byte bound holds at 20 waves too"
    );
}

/// Without retirement every child's clock stays live to the end: the
/// live working set grows with *total* threads, which is exactly what
/// retirement exists to prevent.
#[test]
fn retirement_beats_no_retirement_by_the_churn_factor() {
    let trace = wave_trace(12, 6);
    let with = profile::<TreeClock>(&trace, true);
    let without = profile::<TreeClock>(&trace, false);
    assert_eq!(without.retired, 0);
    assert!(
        without.peak_live_bytes >= 3 * with.peak_live_bytes,
        "retirement should shrink the live set by roughly the churn factor \
         (with: {}, without: {})",
        with.peak_live_bytes,
        without.peak_live_bytes
    );
    assert!(
        without.fresh >= 3 * with.fresh,
        "without retirement every thread needs a fresh clock \
         (with: {}, without: {})",
        with.fresh,
        without.fresh
    );
}
