//! End-to-end service tests over real sockets: concurrent sessions,
//! protocol behavior, checkpoint/resume across connections, and the
//! smoke driver the CI job runs.

use tc_stream::{smoke, Client, ServeConfig, Server};

fn start() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
    })
    .expect("bind on a free port")
}

#[test]
fn smoke_drives_two_concurrent_sessions_against_batch() {
    smoke().expect("the smoke run must pass");
}

#[test]
fn protocol_shutdown_terminates_the_server() {
    // Regression: a protocol-level `shutdown` must wake the blocking
    // acceptor (not just set the flag), or `tcr serve` hangs forever
    // after replying `ok shutting-down`.
    let server = start();
    let addr = server.local_addr();
    let mut client = Client::open(addr, "hb tc").unwrap();
    let reply = client.request("shutdown").unwrap();
    assert!(reply.last().unwrap().contains("shutting-down"), "{reply:?}");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.join();
        let _ = tx.send(());
    });
    rx.recv_timeout(std::time::Duration::from_secs(10))
        .expect("join() must return after a protocol shutdown");
}

#[test]
fn bad_handshakes_are_rejected_until_a_valid_open() {
    let server = start();
    let addr = server.local_addr();
    let err = Client::open(addr, "frobnicate tc").unwrap_err();
    assert!(err.contains("open failed"), "{err}");
    // The same *connection* keeps accepting handshake retries; a new
    // client with a valid open succeeds.
    let mut client = Client::open(addr, "maz vc").unwrap();
    let replies = client.request("stats").unwrap();
    assert!(replies.last().unwrap().contains("order=MAZ"), "{replies:?}");
    assert!(replies.last().unwrap().contains("backend=vector"));
    client.request("close").unwrap();
    server.shutdown();
    server.join();
}

#[test]
fn checkpoint_and_resume_across_connections() {
    let dir = std::env::temp_dir().join(format!("tc-stream-svc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cp_path = dir.join("session.tccp");
    let cp_str = cp_path.to_str().unwrap();

    let server = start();
    let addr = server.local_addr();

    // Session 1: feed half a racy workload (inside a critical section,
    // so the validator state matters), checkpoint, disconnect — without
    // ever polling, so the race is still undelivered.
    let mut c1 = Client::open(addr, "hb tc").unwrap();
    c1.send("main w x").unwrap();
    c1.send("worker w x").unwrap(); // race 1
    c1.send("main acq m").unwrap(); // still held at the checkpoint
    let reply = c1.request(&format!("checkpoint {cp_str}")).unwrap();
    assert!(
        reply.last().unwrap().starts_with("ok checkpoint"),
        "{reply:?}"
    );
    c1.request("close").unwrap();

    // Session 2: resume and continue — the held lock must still be
    // releasable (validator state traveled), old races must be stored,
    // and new races must keep arriving.
    let mut c2 = Client::open(addr, &format!("resume {cp_str}")).unwrap();
    c2.send("main rel m").unwrap(); // valid only if held_by survived
    c2.send("t2 w x").unwrap(); // races with the last write (epoch check)
    let stats = c2.request("stats").unwrap();
    let line = stats.last().unwrap();
    assert!(line.contains("events=5"), "{line}");
    assert!(line.contains("rejected=0"), "{line}");
    let races = c2.request("races").unwrap();
    let stored: Vec<&String> = races.iter().filter(|l| l.starts_with("race ")).collect();
    assert_eq!(stored.len(), 2, "{races:?}");
    // The pre-checkpoint race survived the restore; the new thread's
    // name from *this* connection resolved past the resumed tables.
    assert!(stored[0].contains("1@t0"), "{races:?}");
    assert!(stored[1].contains("1@t2"), "{races:?}");
    // The poll watermark traveled too: session 1 never polled, so the
    // resumed session's first poll delivers BOTH races (the
    // pre-checkpoint one was never handed to any consumer).
    let poll = c2.request("poll").unwrap();
    let polled = poll.iter().filter(|l| l.starts_with("race ")).count();
    assert_eq!(polled, 2, "{poll:?}");
    c2.request("close").unwrap();

    // A resume from a missing file is a handshake error.
    let err = Client::open(addr, "resume /definitely/not/here.tccp").unwrap_err();
    assert!(err.contains("cannot resume"), "{err}");

    server.shutdown();
    server.join();
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn evicting_session_rejects_spontaneous_threads_via_protocol() {
    let server = start();
    let addr = server.local_addr();
    let mut client = Client::open(addr, "hb tc evict 1").unwrap();
    client.send("main acq m").unwrap();
    client.send("main rel m").unwrap();
    client.send("main fork child").unwrap();
    client.send("child acq m").unwrap();
    client.send("child rel m").unwrap();
    // A spontaneous thread after evictions: the event errors, the
    // session survives.
    client.send("ghost w x").unwrap();
    let stats = client.request("stats").unwrap();
    assert!(
        stats.iter().any(|l| l.contains("fork discipline")),
        "{stats:?}"
    );
    let line = stats.last().unwrap();
    assert!(line.contains("events=5"), "{line}");
    assert!(line.contains("evicted="), "{line}");
    client.request("close").unwrap();
    server.shutdown();
    server.join();
}
