//! End-to-end service tests over real sockets: concurrent sessions,
//! protocol behavior, both wire protocols (text lines and batched
//! binary frames) on one port, checkpoint/resume across connections,
//! and the smoke driver the CI job runs.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use tc_stream::{smoke, Client, ServeConfig, Server};
use tc_trace::gen::WorkloadSpec;
use tc_trace::wire;
use tc_trace::{Event, Op, ThreadId, VarId};

fn start() -> Server {
    start_parallel(0)
}

fn start_parallel(epoch_workers: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        parallel: epoch_workers,
        telemetry: true,
        auth: None,
    })
    .expect("bind on a free port")
}

#[test]
fn smoke_drives_two_concurrent_sessions_against_batch() {
    smoke().expect("the smoke run must pass");
}

#[test]
fn protocol_shutdown_terminates_the_server() {
    // Regression: a protocol-level `shutdown` must wake the blocking
    // acceptor (not just set the flag), or `tcr serve` hangs forever
    // after replying `ok shutting-down`.
    let server = start();
    let addr = server.local_addr();
    let mut client = Client::open(addr, "hb tc").unwrap();
    let reply = client.request("shutdown").unwrap();
    assert!(reply.last().unwrap().contains("shutting-down"), "{reply:?}");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.join();
        let _ = tx.send(());
    });
    rx.recv_timeout(std::time::Duration::from_secs(10))
        .expect("join() must return after a protocol shutdown");
}

#[test]
fn bad_handshakes_are_rejected_until_a_valid_open() {
    let server = start();
    let addr = server.local_addr();
    let err = Client::open(addr, "frobnicate tc").unwrap_err();
    assert!(err.contains("open failed"), "{err}");
    // The same *connection* keeps accepting handshake retries; a new
    // client with a valid open succeeds.
    let mut client = Client::open(addr, "maz vc").unwrap();
    let replies = client.request("stats").unwrap();
    assert!(replies.last().unwrap().contains("order=MAZ"), "{replies:?}");
    assert!(replies.last().unwrap().contains("backend=vector"));
    client.request("close").unwrap();
    server.shutdown();
    server.join();
}

#[test]
fn checkpoint_and_resume_across_connections() {
    let dir = std::env::temp_dir().join(format!("tc-stream-svc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cp_path = dir.join("session.tccp");
    let cp_str = cp_path.to_str().unwrap();

    let server = start();
    let addr = server.local_addr();

    // Session 1: feed half a racy workload (inside a critical section,
    // so the validator state matters), checkpoint, disconnect — without
    // ever polling, so the race is still undelivered.
    let mut c1 = Client::open(addr, "hb tc").unwrap();
    c1.send("main w x").unwrap();
    c1.send("worker w x").unwrap(); // race 1
    c1.send("main acq m").unwrap(); // still held at the checkpoint
    let reply = c1.request(&format!("checkpoint {cp_str}")).unwrap();
    assert!(
        reply.last().unwrap().starts_with("ok checkpoint"),
        "{reply:?}"
    );
    c1.request("close").unwrap();

    // Session 2: resume and continue — the held lock must still be
    // releasable (validator state traveled), old races must be stored,
    // and new races must keep arriving.
    let mut c2 = Client::open(addr, &format!("resume {cp_str}")).unwrap();
    c2.send("main rel m").unwrap(); // valid only if held_by survived
    c2.send("t2 w x").unwrap(); // races with the last write (epoch check)
    let stats = c2.request("stats").unwrap();
    let line = stats.last().unwrap();
    assert!(line.contains("events=5"), "{line}");
    assert!(line.contains("rejected=0"), "{line}");
    let races = c2.request("races").unwrap();
    let stored: Vec<&String> = races.iter().filter(|l| l.starts_with("race ")).collect();
    assert_eq!(stored.len(), 2, "{races:?}");
    // The pre-checkpoint race survived the restore; the new thread's
    // name from *this* connection resolved past the resumed tables.
    assert!(stored[0].contains("1@t0"), "{races:?}");
    assert!(stored[1].contains("1@t2"), "{races:?}");
    // The poll watermark traveled too: session 1 never polled, so the
    // resumed session's first poll delivers BOTH races (the
    // pre-checkpoint one was never handed to any consumer).
    let poll = c2.request("poll").unwrap();
    let polled = poll.iter().filter(|l| l.starts_with("race ")).count();
    assert_eq!(polled, 2, "{poll:?}");
    c2.request("close").unwrap();

    // A resume from a missing file is a handshake error.
    let err = Client::open(addr, "resume /definitely/not/here.tccp").unwrap_err();
    assert!(err.contains("cannot resume"), "{err}");

    server.shutdown();
    server.join();
    std::fs::remove_dir_all(dir).unwrap();
}

/// A modest racy workload for the wire tests.
fn wire_trace(seed: u64) -> tc_trace::Trace {
    WorkloadSpec {
        threads: 6,
        locks: 2,
        vars: 4,
        events: 600,
        sync_ratio: 0.2,
        shared_fraction: 0.8,
        seed,
        ..WorkloadSpec::default()
    }
    .generate()
}

#[test]
fn shutdown_while_clients_are_mid_session() {
    // The old blocking core needed a throwaway connection to unstick
    // its acceptor and could only shut down between sessions; the
    // nonblocking loop must exit promptly even with clients connected
    // and events still arriving unsynchronized.
    let server = start();
    let addr = server.local_addr();
    let mut a = Client::open(addr, "hb tc").unwrap();
    let mut b = Client::open(addr, "shb hc").unwrap();
    for line in ["main w x", "worker w x", "main acq m"] {
        a.send(line).unwrap();
        b.send(line).unwrap();
    }
    // Deliberately no poll/close: both sessions are live, one lock is
    // still held.
    server.shutdown();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.join();
        let _ = tx.send(());
    });
    rx.recv_timeout(std::time::Duration::from_secs(10))
        .expect("join() must return while clients are still connected");
    drop((a, b));
}

#[test]
fn text_and_binary_clients_share_one_port_and_agree() {
    use tc_analysis::HbRaceDetector;
    use tc_core::TreeClock;

    let server = start();
    let addr = server.local_addr();
    let trace = wire_trace(77);

    // Binary client: dense-id frames, text `races` for synchronization.
    let text = tc_trace::text_format::to_text(&trace);
    let binary = std::thread::spawn({
        let trace = trace.clone();
        move || {
            let mut c = Client::open(addr, "hb tc").unwrap();
            let id = c.session();
            for batch in trace.events().chunks(128) {
                c.send_frame(id, batch).unwrap();
            }
            let races = c.request("races").unwrap();
            c.request("close").unwrap();
            races
        }
    });
    // Text client: same workload, line protocol, concurrently.
    let texty = std::thread::spawn(move || {
        let mut c = Client::open(addr, "hb tc").unwrap();
        for line in text.lines() {
            c.send(line).unwrap();
        }
        let races = c.request("races").unwrap();
        c.request("close").unwrap();
        races
    });

    let races_bin = binary.join().unwrap();
    let races_text = texty.join().unwrap();
    let total = |r: &[String]| {
        r.last()
            .unwrap()
            .split_whitespace()
            .nth(2)
            .unwrap()
            .parse::<u64>()
            .unwrap()
    };
    let batch = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
    assert_eq!(total(&races_bin), batch.total, "binary vs batch");
    assert_eq!(total(&races_text), batch.total, "text vs batch");

    server.shutdown();
    server.join();
}

#[test]
fn one_connection_fans_frames_into_many_sessions() {
    let server = start();
    let addr = server.local_addr();
    let traces: Vec<_> = (0..3).map(|i| wire_trace(100 + i)).collect();

    let mut client = Client::open(addr, "hb tc").unwrap();
    let mut ids = vec![client.session()];
    ids.push(client.open_session("shb vc").unwrap());
    ids.push(client.open_session("hb hc").unwrap());

    // Interleave frames across the three sessions round-robin.
    let batches: Vec<Vec<_>> = traces
        .iter()
        .map(|t| t.events().chunks(64).collect())
        .collect();
    let rounds = batches.iter().map(Vec::len).max().unwrap();
    for round in 0..rounds {
        for (s, b) in ids.iter().zip(&batches) {
            if let Some(batch) = b.get(round) {
                client.send_frame(*s, batch).unwrap();
            }
        }
    }

    // Synchronize each session in turn via `use` and check its event
    // count — per-session FIFO order must have survived the fan-in.
    for (s, t) in ids.iter().zip(&traces) {
        let attach = client.request(&format!("use {s}")).unwrap();
        assert!(attach.last().unwrap().contains("attached"), "{attach:?}");
        let stats = client.request("stats").unwrap();
        let line = stats.last().unwrap();
        assert!(
            line.contains(&format!("events={}", t.len())),
            "session {s}: {line}"
        );
        assert!(line.contains("rejected=0"), "session {s}: {line}");
    }
    client.request("close").unwrap();
    server.shutdown();
    server.join();
}

/// A dense-id frame of `reps` rounds over four independent racy pairs
/// (threads `2i`/`2i+1` on variable `i`) — four conflict-free epochs,
/// so a parallel-enabled session takes the epoch-parallel path.
fn epoch_frame(reps: usize) -> Vec<Event> {
    let mut events = Vec::with_capacity(reps * 8);
    for _ in 0..reps {
        for pair in 0..4u32 {
            events.push(Event::new(
                ThreadId::new(2 * pair),
                Op::Write(VarId::new(pair)),
            ));
            events.push(Event::new(
                ThreadId::new(2 * pair + 1),
                Op::Write(VarId::new(pair)),
            ));
        }
    }
    events
}

/// Starts a server with `epoch_workers` parallel workers, streams
/// `frames` into one `hb tc` session, and returns the full `races`
/// reply plus the `stats` line.
fn drive_frames(epoch_workers: usize, frames: &[Vec<Event>]) -> (Vec<String>, String) {
    let server = start_parallel(epoch_workers);
    let mut client = Client::open(server.local_addr(), "hb tc").unwrap();
    let id = client.session();
    for frame in frames {
        client.send_frame(id, frame).unwrap();
    }
    let races = client.request("races").unwrap();
    let stats = client.request("stats").unwrap();
    client.request("close").unwrap();
    server.shutdown();
    server.join();
    (races, stats.last().unwrap().clone())
}

#[test]
fn parallel_servers_agree_with_sequential_across_worker_counts() {
    // The worker-count matrix the CI job sweeps: the epoch-parallel
    // path must produce byte-identical race replies at any pool size,
    // including the degenerate 1-worker pool.
    let frames: Vec<Vec<Event>> = (0..4).map(|_| epoch_frame(32)).collect();
    let (reference_races, reference_stats) = drive_frames(0, &frames);
    assert!(
        reference_stats.contains("parallel_frames=0"),
        "{reference_stats}"
    );
    for epoch_workers in [1, 2, 8] {
        let (races, stats) = drive_frames(epoch_workers, &frames);
        assert_eq!(
            races, reference_races,
            "race replies diverged at {epoch_workers} epoch worker(s)"
        );
        assert!(
            stats.contains(&format!("parallel_frames={}", frames.len())),
            "{epoch_workers} worker(s): every frame has 4 epochs and \
             256 events, all should go parallel — {stats}"
        );
    }
}

#[test]
fn use_rebinding_across_connections_keeps_the_poll_cursor() {
    // Regression (poll-cursor audit): a second connection attaching to
    // a session via `use <id>` shares the session's poll watermark —
    // races already delivered to the first connection must not be
    // re-delivered, and races it drains must not reappear on the
    // first connection's next poll.
    let server = start();
    let addr = server.local_addr();

    let mut a = Client::open(addr, "hb tc").unwrap();
    let id = a.session();
    a.send("main w x").unwrap();
    a.send("worker w x").unwrap();
    let poll_a = a.request("poll").unwrap();
    let delivered_a = poll_a.iter().filter(|l| l.starts_with("race ")).count();
    assert_eq!(delivered_a, 1, "{poll_a:?}");

    // Connection B opens its own session (left idle), then attaches to
    // A's session and produces one more race there.
    let mut b = Client::open(addr, "hb tc").unwrap();
    let attach = b.request(&format!("use {id}")).unwrap();
    assert!(attach.last().unwrap().contains("attached"), "{attach:?}");
    b.send("t2 w x").unwrap();
    let poll_b = b.request("poll").unwrap();
    let delivered_b = poll_b.iter().filter(|l| l.starts_with("race ")).count();
    let total: u64 = poll_b
        .last()
        .unwrap()
        .split_whitespace()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert_eq!(
        delivered_b as u64,
        total - 1,
        "B must only see races past A's watermark: {poll_b:?}"
    );

    // A's next poll starts from B's watermark: nothing new.
    let poll_a2 = a.request("poll").unwrap();
    assert_eq!(
        poll_a2.iter().filter(|l| l.starts_with("race ")).count(),
        0,
        "{poll_a2:?}"
    );
    a.request("close").unwrap();
    drop(b);
    server.shutdown();
    server.join();
}

#[test]
fn multi_session_frames_and_stats_all_aggregate_in_one_round_trip() {
    let server = start_parallel(2);
    let addr = server.local_addr();

    // An empty connection aggregates to zero without opening anything.
    let mut bare = TcpStream::connect(addr).unwrap();
    bare.write_all(b"stats-all\n").unwrap();
    let mut line = String::new();
    BufReader::new(bare.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert_eq!(
        line.trim_end(),
        "ok stats-all sessions=0 events=0 rejected=0 races=0 recycled_slots=0 \
         peak_clock_bytes=0 live_threads=0"
    );
    drop(bare);

    // Three sessions fed round-robin through multi-session frames.
    let traces: Vec<_> = (0..3).map(|i| wire_trace(200 + i)).collect();
    let mut client = Client::open(addr, "hb tc").unwrap();
    let ids = [
        client.session(),
        client.open_session("shb vc").unwrap(),
        client.open_session("maz hc").unwrap(),
    ];
    let batches: Vec<Vec<_>> = traces
        .iter()
        .map(|t| t.events().chunks(64).collect())
        .collect();
    let rounds = batches.iter().map(Vec::len).max().unwrap();
    for round in 0..rounds {
        let groups: Vec<(u64, &[Event])> = ids
            .iter()
            .zip(&batches)
            .filter_map(|(s, b)| b.get(round).map(|batch| (*s, *batch)))
            .collect();
        client.send_multi_frame(&groups).unwrap();
    }

    // One round-trip synchronizes all three sessions.
    let (sessions, events, rejected, races) = client.stats_all().unwrap();
    assert_eq!(sessions, 3);
    assert_eq!(
        events,
        traces.iter().map(|t| t.len() as u64).sum::<u64>(),
        "per-session FIFO order must survive the multi-frame fan-in"
    );
    assert_eq!(rejected, 0);

    // The aggregate equals the sum of the per-session race totals.
    let mut per_session = 0u64;
    for s in ids {
        client.request(&format!("use {s}")).unwrap();
        let reply = client.request("races").unwrap();
        per_session += reply
            .last()
            .unwrap()
            .split_whitespace()
            .nth(2)
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap();
    }
    assert_eq!(races, per_session);
    client.request("close").unwrap();
    server.shutdown();
    server.join();
}

#[test]
fn frames_for_unknown_sessions_error_without_killing_the_connection() {
    let server = start();
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(&wire::encode_frame(4096, &[]).unwrap())
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("err unknown session 4096"), "{line}");
    // The connection survives and can still open a session.
    stream.write_all(b"open hb tc\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ok session"), "{line}");
    server.shutdown();
    server.join();
}

#[test]
fn corrupt_frames_close_the_connection() {
    let server = start();
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Magic + absurd length: the server must reply `err` and hang up
    // rather than buffer 2 GiB.
    stream.write_all(&[0xF7, 0xFF, 0xFF, 0xFF, 0x7F]).unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).unwrap(); // EOF proves the hangup
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("err"), "{text}");
    server.shutdown();
    server.join();
}

#[test]
fn recycling_session_reports_identity_telemetry() {
    let server = start();
    let addr = server.local_addr();
    let mut client = Client::open(addr, "hb tc recycle").unwrap();
    // Fork/act/join churn: once the coordinator joins a worker, its
    // slot is reclaimable, so each new wave's bind reuses it.
    for wave in 0..4 {
        let w = format!("w{wave}");
        client.send(&format!("main fork {w}")).unwrap();
        client.send(&format!("{w} w x")).unwrap();
        client.send(&format!("main join {w}")).unwrap();
    }
    let stats = client.request("stats").unwrap();
    let line = stats.last().unwrap();
    assert!(line.contains("live_threads=1"), "{line}");
    assert!(line.contains("total_threads=5"), "{line}");
    let field = |key: &str| -> u64 {
        line.split_whitespace()
            .find_map(|w| w.strip_prefix(key))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {key} in `{line}`"))
    };
    assert!(field("recycled_slots=") > 0, "{line}");
    assert!(field("peak_clock_bytes=") > 0, "{line}");

    // The aggregate reply carries the recycled count too.
    let reply = client.request("stats-all").unwrap();
    let agg = reply.last().unwrap();
    assert!(agg.contains("sessions=1"), "{agg}");
    let recycled: u64 = agg
        .split_whitespace()
        .find_map(|w| w.strip_prefix("recycled_slots="))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("missing recycled_slots in `{agg}`"));
    assert!(recycled > 0, "{agg}");
    client.request("close").unwrap();
    server.shutdown();
    server.join();
}

/// The exact value of one exposition sample — `name value` or
/// `name{labels} value`, matched on the full series name.
fn sample(scrape: &str, name: &str) -> u64 {
    scrape
        .lines()
        .find_map(|l| {
            let (n, v) = l.rsplit_once(' ')?;
            if n == name {
                v.parse::<u64>().ok()
            } else {
                None
            }
        })
        .unwrap_or_else(|| panic!("no sample `{name}` in scrape:\n{scrape}"))
}

#[test]
fn metrics_scrape_agrees_with_stats_and_counts_wire_errors() {
    let server = start();
    let addr = server.local_addr();
    let trace = wire_trace(0x0b5);

    // One text session and one binary session, each synchronized with
    // `stats`. The global counters advance *before* each reply is
    // written, so a scrape after both replies must account for every
    // event the clients know the server accepted.
    let mut text = Client::open(addr, "hb tc").unwrap();
    for line in tc_trace::text_format::to_text(&trace).lines() {
        text.send(line).unwrap();
    }
    let stats = text.request("stats").unwrap();
    let line = stats.last().unwrap().clone();
    assert!(line.contains(&format!("events={}", trace.len())), "{line}");
    // The server-scope suffix rides on every per-session stats reply.
    for field in [
        "uptime_ms=",
        "conns_accepted=",
        "conns_active=",
        "workers=2",
        "wire_errors=0",
    ] {
        assert!(line.contains(field), "missing `{field}` in `{line}`");
    }

    let mut bin = Client::open(addr, "hb tc").unwrap();
    let id = bin.session();
    let frames = trace.events().chunks(128).count() as u64;
    for batch in trace.events().chunks(128) {
        bin.send_frame(id, batch).unwrap();
    }
    bin.request("stats").unwrap();

    // Two classified wire errors: a frame for a session that never
    // existed, and an oversize length header that hangs up the
    // connection. Both are counted by the I/O thread before it
    // replies, so they are visible once the reply (or EOF) is read.
    let mut stray = TcpStream::connect(addr).unwrap();
    stray
        .write_all(&wire::encode_frame(4096, &[]).unwrap())
        .unwrap();
    let mut reply = String::new();
    BufReader::new(stray.try_clone().unwrap())
        .read_line(&mut reply)
        .unwrap();
    assert!(reply.starts_with("err unknown session"), "{reply}");
    let mut oversize = TcpStream::connect(addr).unwrap();
    oversize.write_all(&[0xF7, 0xFF, 0xFF, 0xFF, 0x7F]).unwrap();
    let mut hangup = Vec::new();
    oversize.read_to_end(&mut hangup).unwrap();

    // `metrics` works on a bound connection (it also works bare, which
    // the CI cross-check exercises with a raw socket).
    let scrape = text.metrics_scrape().unwrap();
    assert!(scrape.ends_with("# EOF\n"), "{scrape}");
    assert_eq!(sample(&scrape, "tc_events_total"), 2 * trace.len() as u64);
    // +1: the stray unknown-session frame below still *parses* as a
    // frame message before its session lookup fails.
    assert_eq!(
        sample(&scrape, "tc_messages_total{wire=\"frame\"}"),
        frames + 1
    );
    assert!(sample(&scrape, "tc_messages_total{wire=\"text\"}") >= 1);
    assert_eq!(sample(&scrape, "tc_sessions_opened_total"), 2);
    assert_eq!(
        sample(&scrape, "tc_wire_errors_total{kind=\"unknown_session\"}"),
        1
    );
    assert_eq!(
        sample(&scrape, "tc_wire_errors_total{kind=\"oversize\"}"),
        1
    );
    assert_eq!(sample(&scrape, "tc_wire_errors"), 2);
    assert_eq!(sample(&scrape, "tc_workers"), 2);
    assert!(sample(&scrape, "tc_reply_us_count") >= 2);
    assert!(sample(&scrape, "tc_peak_clock_bytes") > 0);
    assert!(sample(&scrape, "tc_batch_events_count{wire=\"frame\"}") >= frames);

    // The stats suffix reflects the wire errors too.
    let after = text.request("stats").unwrap();
    assert!(after.last().unwrap().contains("wire_errors=2"), "{after:?}");

    text.request("close").unwrap();
    bin.request("close").unwrap();
    server.shutdown();
    server.join();
}

/// A fake server that accepts `drops` connections and hangs up on each
/// immediately (the shape a dying or failing-over node presents),
/// then serves one real `open` handshake.
fn drop_after_accept_server(drops: usize) -> std::net::SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for _ in 0..drops {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // hang up before reading the handshake
        }
        if let Ok((stream, _)) = listener.accept() {
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut stream = stream;
            stream
                .write_all(b"ok session 9 order HB clock tree\n")
                .unwrap();
        }
    });
    addr
}

#[test]
fn client_open_retries_once_after_a_dropped_handshake() {
    // One drop, then a real handshake: the retry absorbs the
    // failover-window disconnect.
    let addr = drop_after_accept_server(1);
    let client = Client::open(addr, "hb tc").expect("one dropped handshake must be retried");
    assert_eq!(client.session(), 9);
}

#[test]
fn client_open_surfaces_a_second_dropped_handshake() {
    // Two drops: exactly one retry, then the error surfaces.
    let addr = drop_after_accept_server(2);
    let err = Client::open(addr, "hb tc").unwrap_err();
    assert!(
        err.contains("closed the connection") || err.contains("reset"),
        "{err}"
    );
}

#[test]
fn protocol_errors_are_not_retried() {
    // An `err` reply is a rejection, not a dead connection — the retry
    // must not re-send it (a second open would burn a session id).
    let server = start();
    let err = Client::open(server.local_addr(), "frobnicate tc").unwrap_err();
    assert!(err.contains("open failed"), "{err}");
    server.shutdown();
    server.join();
}

#[test]
fn auth_gates_shutdown_and_counts_rejections() {
    let server = Server::start(ServeConfig {
        auth: Some("sekret".to_owned()),
        ..ServeConfig::default()
    })
    .expect("bind on a free port");
    let addr = server.local_addr();
    let mut client = Client::open(addr, "hb tc").unwrap();

    // Unauthenticated shutdown: refused, server stays up.
    client.send("shutdown").unwrap();
    client.flush().unwrap();
    let reply = client.read_reply().unwrap();
    assert_eq!(reply, "err auth required for shutdown");

    // Wrong token: refused.
    client.send("auth wr0ng").unwrap();
    client.flush().unwrap();
    assert_eq!(client.read_reply().unwrap(), "err bad auth token");

    // Both rejections are classified wire errors.
    let scrape = client.metrics_scrape().unwrap();
    assert_eq!(sample(&scrape, "tc_wire_errors_total{kind=\"auth\"}"), 2);
    assert_eq!(sample(&scrape, "tc_wire_errors"), 2);

    // The right token authenticates the connection; shutdown works.
    client.send("auth sekret").unwrap();
    client.flush().unwrap();
    assert_eq!(client.read_reply().unwrap(), "ok authed");
    client.send("shutdown").unwrap();
    client.flush().unwrap();
    assert_eq!(client.read_reply().unwrap(), "ok shutting-down");
    server.join();
}

#[test]
fn constant_time_compare_is_exact() {
    use tc_stream::constant_time_eq;
    assert!(constant_time_eq(b"sekret", b"sekret"));
    assert!(constant_time_eq(b"", b""));
    assert!(!constant_time_eq(b"sekret", b"sekrer"));
    assert!(!constant_time_eq(b"sekret", b"sekre"));
    assert!(!constant_time_eq(b"sekret", b"sekrets"));
    assert!(!constant_time_eq(b"", b"x"));
}

#[test]
fn evicting_session_rejects_spontaneous_threads_via_protocol() {
    let server = start();
    let addr = server.local_addr();
    let mut client = Client::open(addr, "hb tc evict 1").unwrap();
    client.send("main acq m").unwrap();
    client.send("main rel m").unwrap();
    client.send("main fork child").unwrap();
    client.send("child acq m").unwrap();
    client.send("child rel m").unwrap();
    // A spontaneous thread after evictions: the event errors, the
    // session survives.
    client.send("ghost w x").unwrap();
    let stats = client.request("stats").unwrap();
    assert!(
        stats.iter().any(|l| l.contains("fork discipline")),
        "{stats:?}"
    );
    let line = stats.last().unwrap();
    assert!(line.contains("events=5"), "{line}");
    assert!(line.contains("evicted="), "{line}");
    client.request("close").unwrap();
    server.shutdown();
    server.join();
}
