//! The incremental detector: the batch race detectors' feed-one-event
//! twin, with bounded-memory hooks.
//!
//! [`IncrementalDetector`] wraps one partial-order engine
//! ([`HbEngine`]/[`ShbEngine`]/[`MazEngine`]) behind a single
//! [`feed`](IncrementalDetector::feed) API, performing exactly the
//! epoch checks the batch detectors perform — in the same
//! check-before-process order — so its reports and per-event
//! timestamps are *identical* to a batch run over the same events (the
//! conformance sweep enforces this on every quick-corpus case).
//!
//! On top of the batch semantics it adds what an online service needs:
//!
//! - **Thread retirement** — at `join(t, u)` the child `u`'s clock has
//!   just been absorbed by `t` and (in a well-formed trace) can never
//!   be read again, so it is released to the [`ClockPool`] immediately.
//!   On spawn/join-churn workloads this bounds the number of live
//!   clocks by the number of *live* threads, not total threads.
//! - **Cold-state eviction** — every [`DetectorConfig::evict_every`]
//!   events, lock/variable clocks dominated by the pointwise minimum
//!   over live thread clocks are released: every future join against
//!   them would be a value no-op. Sound only under *fork discipline*
//!   (every new thread is forked by a live one, so it inherits at least
//!   the floor at birth); the detector enforces the discipline once the
//!   first eviction has happened and rejects a spontaneous thread with
//!   [`FeedError::SpontaneousThread`] instead of silently diverging.
//! - **Checkpointing** — [`checkpoint`](IncrementalDetector::checkpoint)
//!   captures the complete value-level state;
//!   [`from_checkpoint`](IncrementalDetector::from_checkpoint) resumes
//!   it with byte-identical subsequent reports.

use std::fmt;

use tc_analysis::{upcoming_epoch, Race, RaceReport, VarHistories};
use tc_core::{BindError, ClockPool, IdentityMap, LogicalClock, ThreadId, VectorTime};
use tc_orders::{HbEngine, MazEngine, PartialOrderKind, ShbEngine};
use tc_trace::{Event, LockId, Op, VarId};

use crate::checkpoint::Checkpoint;

/// How often (in events) the detector samples its live clock bytes into
/// the `peak_clock_bytes` high-water mark. Sampling (rather than
/// per-event accounting) keeps the O(threads + locks + vars) byte walk
/// off the hot path; retirements sample unconditionally, since they are
/// exactly where the footprint peaks under churn.
const PEAK_SAMPLE_EVERY: u64 = 1024;

/// Configuration of an [`IncrementalDetector`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectorConfig {
    /// The partial order to compute races/reversible pairs under.
    pub order: PartialOrderKind,
    /// Release a thread's clock to the pool when it is joined
    /// (default: on — the retirement is always sound on well-formed
    /// traces).
    pub retire_on_join: bool,
    /// Evict dominated lock/variable clocks every this many events
    /// (`None` = off). Requires fork discipline; see the module docs.
    pub evict_every: Option<u64>,
    /// Route external thread ids through an [`IdentityMap`] so retired
    /// threads' internal clock slots are recycled once every live clock
    /// dominates their final time (default: off). Keeps clock *width*
    /// proportional to live threads under spawn/join churn. Requires
    /// fork discipline like eviction; reports and timestamps stay in
    /// external ids and are identical to a non-recycling run (the
    /// conformance sweep's recycling pass enforces this).
    pub recycle_slots: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            order: PartialOrderKind::Hb,
            retire_on_join: true,
            evict_every: None,
            recycle_slots: false,
        }
    }
}

impl DetectorConfig {
    /// A config for `order` with the default memory policy.
    pub fn for_order(order: PartialOrderKind) -> Self {
        DetectorConfig {
            order,
            ..DetectorConfig::default()
        }
    }
}

/// An error while feeding an event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FeedError {
    /// A thread appeared without having been forked after eviction had
    /// already discarded dominated state — the one situation where
    /// eviction could silently change results, rejected instead.
    SpontaneousThread {
        /// The offending thread.
        thread: ThreadId,
        /// The event index at which it appeared.
        at: u64,
    },
    /// The event involves a thread whose clock has already been retired
    /// (it acted, was the target of a fork, or was joined again after
    /// its `join`). Ill-formed input; rejected so a malformed session
    /// cannot panic the detector.
    RetiredThread {
        /// The retired thread.
        thread: ThreadId,
        /// The event index at which it was referenced.
        at: u64,
    },
    /// The event involves an external thread that was retired *and*
    /// whose internal clock slot has since been recycled to a different
    /// external thread — the slot-recycling form of
    /// [`RetiredThread`](Self::RetiredThread), reported separately
    /// because the slot's clock state now belongs to another thread.
    RecycledThread {
        /// The retired external thread.
        thread: ThreadId,
        /// The event index at which it was referenced.
        at: u64,
    },
}

impl fmt::Display for FeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedError::SpontaneousThread { thread, at } => write!(
                f,
                "thread {thread} appears without a fork at event {at}, after eviction \
                 discarded dominated state (eviction requires fork discipline; \
                 disable it or fork every thread)"
            ),
            FeedError::RetiredThread { thread, at } => write!(
                f,
                "event {at} involves thread {thread}, which was already joined and \
                 retired (a joined thread cannot act or be forked/joined again)"
            ),
            FeedError::RecycledThread { thread, at } => write!(
                f,
                "event {at} involves thread {thread}, which was already joined and \
                 retired, and whose clock slot has been recycled to another thread \
                 (a joined thread cannot act or be forked/joined again)"
            ),
        }
    }
}

impl std::error::Error for FeedError {}

enum OrderEngine<C> {
    Hb(HbEngine<C>),
    Shb(ShbEngine<C>),
    Maz(MazEngine<C>),
}

macro_rules! dispatch {
    ($engine:expr, $e:ident => $body:expr) => {
        match $engine {
            OrderEngine::Hb($e) => $body,
            OrderEngine::Shb($e) => $body,
            OrderEngine::Maz($e) => $body,
        }
    };
}

/// A streaming race detector over one partial order and one clock
/// backend; see the [module docs](self).
///
/// # Example
///
/// ```rust
/// use tc_core::TreeClock;
/// use tc_stream::{DetectorConfig, IncrementalDetector};
/// use tc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// b.write(0, "x").write(1, "x"); // unsynchronized: a data race
/// let trace = b.finish();
///
/// let mut d = IncrementalDetector::<TreeClock>::new(DetectorConfig::default());
/// let mut found = 0;
/// for e in &trace {
///     found += d.feed(e).unwrap().len();
/// }
/// assert_eq!(found, 1);
/// ```
pub struct IncrementalDetector<C: LogicalClock> {
    config: DetectorConfig,
    engine: OrderEngine<C>,
    vars: VarHistories,
    report: RaceReport,
    /// Stored races already returned from [`feed`](Self::feed).
    emitted: usize,
    events: u64,
    evicted: u64,
    /// Thread lifecycle for the eviction fork-discipline guard and the
    /// session stats (index = *external* thread id).
    started: Vec<bool>,
    forked: Vec<bool>,
    /// The session's initial thread (exempt from the fork requirement).
    first_thread: Option<ThreadId>,
    /// External-id ⇄ internal-slot map; `Some` iff
    /// [`DetectorConfig::recycle_slots`].
    identity: Option<IdentityMap>,
    /// Scratch buffer for the reclamation floor (kept to avoid
    /// reallocating it on every churn wave).
    floor_buf: Vec<tc_core::LocalTime>,
    /// Sampled high-water mark of [`clock_bytes`](Self::clock_bytes);
    /// telemetry only, not checkpointed (byte capacities are not part
    /// of the value-level state).
    peak_clock_bytes: usize,
}

impl<C: LogicalClock> IncrementalDetector<C> {
    /// Creates a detector with fresh clock buffers.
    pub fn new(config: DetectorConfig) -> Self {
        Self::with_pool(config, ClockPool::new())
    }

    /// Creates a detector drawing clocks from `pool` (a pool recycled
    /// from a finished session makes the new session allocation-lean).
    pub fn with_pool(config: DetectorConfig, pool: ClockPool<C>) -> Self {
        let engine = match config.order {
            PartialOrderKind::Hb => OrderEngine::Hb(HbEngine::with_capacity(0, 0, 0, pool)),
            PartialOrderKind::Shb => OrderEngine::Shb(ShbEngine::with_capacity(0, 0, 0, pool)),
            PartialOrderKind::Maz => OrderEngine::Maz(MazEngine::with_capacity(0, 0, 0, pool)),
        };
        IncrementalDetector {
            config,
            engine,
            vars: VarHistories::default(),
            report: RaceReport::new(),
            emitted: 0,
            events: 0,
            evicted: 0,
            started: Vec::new(),
            forked: Vec::new(),
            first_thread: None,
            identity: config.recycle_slots.then(IdentityMap::new),
            floor_buf: Vec::new(),
            peak_clock_bytes: 0,
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// Events ingested so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Distinct threads seen so far (acting or fork-targeted).
    pub fn threads_seen(&self) -> usize {
        self.started.iter().filter(|&&s| s).count()
    }

    /// The report accumulated so far (total/checks keep counting past
    /// the stored-race cap).
    pub fn report(&self) -> &RaceReport {
        &self.report
    }

    /// Clock/variable state dominated-eviction count so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Threads whose clock has been retired to the pool.
    pub fn retired_count(&self) -> usize {
        dispatch!(&self.engine, e => e.retired_count())
    }

    /// Heap bytes currently owned by the engine's live clocks.
    pub fn clock_bytes(&self) -> usize {
        dispatch!(&self.engine, e => e.clock_bytes())
    }

    /// High-water mark of [`clock_bytes`](Self::clock_bytes), sampled
    /// every `PEAK_SAMPLE_EVERY` events and at every retirement (and
    /// floored by the current value). Telemetry only — it restarts from
    /// the restored state's footprint after a checkpoint resume.
    pub fn peak_clock_bytes(&self) -> usize {
        self.peak_clock_bytes.max(self.clock_bytes())
    }

    /// External threads currently live (started and not yet retired).
    pub fn live_threads(&self) -> usize {
        match &self.identity {
            Some(map) => map.live_threads(),
            None => self.threads_seen().saturating_sub(self.retired_count()),
        }
    }

    /// External threads ever seen — under recycling this keeps growing
    /// while [`slot_width`](Self::slot_width) stays at the churn's
    /// live-thread width.
    pub fn total_threads(&self) -> usize {
        match &self.identity {
            Some(map) => map.total_threads(),
            None => self.threads_seen(),
        }
    }

    /// Number of internal slot reuses so far (0 without recycling).
    pub fn recycled_slots(&self) -> u64 {
        self.identity.as_ref().map_or(0, IdentityMap::recycled)
    }

    /// Width of the internal slot space every clock pays for: equals
    /// total threads without recycling.
    pub fn slot_width(&self) -> usize {
        match &self.identity {
            Some(map) => map.slot_width(),
            None => self.threads_seen(),
        }
    }

    /// The engine's clock pool (fresh/recycled/parked telemetry).
    pub fn pool(&self) -> &ClockPool<C> {
        dispatch!(&self.engine, e => e.pool())
    }

    /// The current vector timestamp of thread `t` (empty once retired),
    /// in *external* thread coordinates: under recycling, the slot
    /// clock's entries are translated back through the identity map
    /// (each external's component is its slot's time clamped to the
    /// external's own `(base, fin]` generation interval), so the result
    /// is comparable with a non-recycling run's timestamps.
    pub fn timestamp_of(&self, t: ThreadId) -> VectorTime {
        let Some(map) = &self.identity else {
            return dispatch!(&self.engine, e => e.timestamp_of(t));
        };
        let Some(binding) = map.binding_of(t) else {
            return VectorTime::new();
        };
        let clock = dispatch!(&self.engine, e => e.clock_of(binding.slot));
        let Some(clock) = clock else {
            return VectorTime::new();
        };
        let mut vt = VectorTime::new();
        for (ext, slot, _) in map.iter() {
            let time = map.external_time(ext, clock.get(slot));
            if time > 0 {
                vt.set(ext, time);
            }
        }
        vt
    }

    /// Tears the detector down, releasing every clock into its pool.
    pub fn into_pool(self) -> ClockPool<C> {
        dispatch!(self.engine, e => e.into_pool())
    }

    fn grow_thread(&mut self, i: usize) {
        if i >= self.started.len() {
            self.started.resize(i + 1, false);
            self.forked.resize(i + 1, false);
        }
    }

    /// Ingests one event, returning any races it uncovered (the live
    /// emission path — each stored race is returned exactly once across
    /// the session's `feed` calls).
    ///
    /// Events must arrive in trace order and be well-formed; pair the
    /// detector with a
    /// [`SessionValidator`](tc_trace::SessionValidator) when the source
    /// is untrusted.
    ///
    /// # Errors
    ///
    /// [`FeedError::SpontaneousThread`] when eviction is enabled, has
    /// already discarded state, and a thread appears without a fork
    /// (the event is *not* ingested; the session stays usable).
    pub fn feed(&mut self, e: &Event) -> Result<&[Race], FeedError> {
        if self.identity.is_some() {
            self.feed_recycled(e)
        } else {
            self.feed_direct(e)
        }
    }

    /// The direct path: external ids *are* the clock slots.
    fn feed_direct(&mut self, e: &Event) -> Result<&[Race], FeedError> {
        let t = e.tid;
        self.grow_thread(t.index());
        // A retired thread can neither act nor be targeted again: the
        // batch validators accept e.g. a fork of a never-started thread
        // that was already joined, but its clock is gone — reject the
        // event instead of panicking the engine.
        let referenced_retired = dispatch!(&self.engine, e2 => e2.is_retired(t))
            || match e.op {
                Op::Fork(u) | Op::Join(u) => dispatch!(&self.engine, e2 => e2.is_retired(u)),
                _ => false,
            };
        if referenced_retired {
            let thread = match e.op {
                Op::Fork(u) | Op::Join(u) if dispatch!(&self.engine, e2 => e2.is_retired(u)) => u,
                _ => t,
            };
            return Err(FeedError::RetiredThread {
                thread,
                at: self.events,
            });
        }
        if self.evicted > 0
            && !self.started[t.index()]
            && !self.forked[t.index()]
            && self.first_thread != Some(t)
        {
            return Err(FeedError::SpontaneousThread {
                thread: t,
                at: self.events,
            });
        }
        self.record_lifecycle(e);
        self.analyze(e);

        if self.config.retire_on_join {
            if let Op::Join(u) = e.op {
                self.observe_peak();
                dispatch!(&mut self.engine, e2 => e2.retire_thread(u));
            }
        }
        self.evict_tick();
        self.sample_peak();
        Ok(self.emit())
    }

    /// The recycling path: external ids are translated through the
    /// [`IdentityMap`] onto internal slots before the (otherwise
    /// unchanged) batch discipline runs, and every freshly stored race
    /// is translated back so reports keep speaking external ids.
    fn feed_recycled(&mut self, e: &Event) -> Result<&[Race], FeedError> {
        let t = e.tid;
        // Validate every referenced external id before mutating
        // anything, so a rejected event leaves the session untouched.
        {
            let map = self.identity.as_ref().expect("recycling map");
            let check = |ext: ThreadId| match map.rebind_error(ext) {
                Some(BindError::Retired) => Err(FeedError::RetiredThread {
                    thread: ext,
                    at: self.events,
                }),
                Some(BindError::Recycled) => Err(FeedError::RecycledThread {
                    thread: ext,
                    at: self.events,
                }),
                None => Ok(()),
            };
            check(t)?;
            if let Op::Fork(u) | Op::Join(u) = e.op {
                check(u)?;
            }
        }
        self.grow_thread(t.index());
        // Reclamation assumes fork discipline exactly like eviction:
        // once a slot has been reclaimed on the strength of the live
        // floor, a spontaneous thread (whose clock would *not* dominate
        // the reclaimed slot's final time) could silently change
        // results, so it is rejected instead.
        let recycling_active = self
            .identity
            .as_ref()
            .is_some_and(IdentityMap::recycling_active);
        if (self.evicted > 0 || recycling_active)
            && !self.started[t.index()]
            && !self.forked[t.index()]
            && self.first_thread != Some(t)
        {
            return Err(FeedError::SpontaneousThread {
                thread: t,
                at: self.events,
            });
        }
        self.record_lifecycle(e);

        // Translate to internal slot coordinates, binding (and, on
        // demand, reclaiming + adopting) every referenced external.
        let slot_t = self.bind_external(t);
        let op = match e.op {
            Op::Fork(u) => Op::Fork(self.bind_external(u)),
            Op::Join(u) => Op::Join(self.bind_external(u)),
            other => other,
        };
        let internal = Event::new(slot_t, op);

        let stored_before = self.report.races.len();
        self.analyze(&internal);
        // Freshly stored races carry slot-coordinate epochs; translate
        // them through the slots' *current* bindings, which is exact:
        // a pre-reclaim generation's epochs are dominated by every live
        // clock and can never appear in a race again.
        {
            let map = self.identity.as_ref().expect("recycling map");
            for race in &mut self.report.races[stored_before..] {
                race.prior = map.external_epoch(race.prior);
                race.current = map.external_epoch(race.current);
            }
        }

        if self.config.retire_on_join {
            if let Op::Join(u) = internal.op {
                self.observe_peak();
                let fin = dispatch!(&self.engine, e2 => e2.clock_of(u))
                    .map(|c| c.get(u))
                    .unwrap_or(0);
                if dispatch!(&mut self.engine, e2 => e2.retire_thread(u)) {
                    let ext = match e.op {
                        Op::Join(x) => x,
                        _ => unreachable!("internal op mirrors the external op"),
                    };
                    self.identity
                        .as_mut()
                        .expect("recycling map")
                        .retire(ext, fin);
                }
            }
        }
        self.evict_tick();
        self.sample_peak();
        Ok(self.emit())
    }

    /// Binds one external id to its slot (infallible after the
    /// `rebind_error` pre-checks). Binding a *new* external with the
    /// free pool dry first sweeps the pending retirements against the
    /// live floor — roughly one floor computation per churn wave — and
    /// a fresh binding re-arms the engine slot at the binding's base
    /// time before any of the occupant's events are processed (the
    /// engine's lazy rooting would root at time 0 and rewind the slot).
    fn bind_external(&mut self, ext: ThreadId) -> ThreadId {
        let map = self.identity.as_ref().expect("recycling map");
        if map.binding_of(ext).is_none() && !map.has_free() && map.has_pending() {
            let mut floor = std::mem::take(&mut self.floor_buf);
            let any_live = dispatch!(&self.engine, e2 => e2.live_floor(&mut floor));
            let map = self.identity.as_mut().expect("recycling map");
            if any_live {
                map.reclaim(&floor);
            } else {
                map.reclaim_all();
            }
            self.floor_buf = floor;
        }
        let binding = self
            .identity
            .as_mut()
            .expect("recycling map")
            .bind(ext)
            .expect("bind pre-checked by rebind_error");
        if binding.fresh {
            dispatch!(&mut self.engine, e2 => e2.adopt_thread(binding.slot, binding.base));
        }
        binding.slot
    }

    /// Thread-lifecycle bookkeeping (external-id domain, both paths).
    fn record_lifecycle(&mut self, e: &Event) {
        let t = e.tid;
        if self.first_thread.is_none() {
            self.first_thread = Some(t);
        }
        self.started[t.index()] = true;
        if let Op::Fork(u) = e.op {
            self.grow_thread(u.index());
            self.forked[u.index()] = true;
            self.started[u.index()] = true;
        }
    }

    /// The batch detectors' discipline, verbatim: epoch checks against
    /// the pre-event clock, then the engine's edges. `e` is in clock
    /// (slot) coordinates.
    fn analyze(&mut self, e: &Event) {
        let t = e.tid;
        match e.op {
            Op::Read(x) => {
                let clock = dispatch!(&self.engine, e2 => e2.clock_of(t));
                let epoch = upcoming_epoch(t, clock);
                match clock {
                    Some(c) => self.vars.entry(x).on_read(epoch, c, &mut self.report),
                    None => {
                        let c = C::new();
                        self.vars.entry(x).on_read(epoch, &c, &mut self.report);
                    }
                }
            }
            Op::Write(x) => {
                let clock = dispatch!(&self.engine, e2 => e2.clock_of(t));
                let epoch = upcoming_epoch(t, clock);
                match clock {
                    Some(c) => self.vars.entry(x).on_write(epoch, c, &mut self.report),
                    None => {
                        let c = C::new();
                        self.vars.entry(x).on_write(epoch, &c, &mut self.report);
                    }
                }
            }
            _ => {}
        }
        dispatch!(&mut self.engine, e2 => e2.process(e));
        self.events += 1;
    }

    fn evict_tick(&mut self) {
        if let Some(n) = self.config.evict_every {
            if n > 0 && self.events.is_multiple_of(n) {
                self.evicted += dispatch!(&mut self.engine, e2 => e2.evict_dominated()) as u64;
            }
        }
    }

    /// Folds the current clock bytes into the sampled high-water mark.
    fn observe_peak(&mut self) {
        let bytes = self.clock_bytes();
        if bytes > self.peak_clock_bytes {
            self.peak_clock_bytes = bytes;
        }
    }

    fn sample_peak(&mut self) {
        if self.events.is_multiple_of(PEAK_SAMPLE_EVERY) {
            self.observe_peak();
        }
    }

    /// Returns the races stored since the last emission.
    fn emit(&mut self) -> &[Race] {
        let start = self.emitted;
        self.emitted = self.report.races.len();
        self.report.races_since(start)
    }

    /// `true` once thread `t`'s clock has been retired to the pool.
    pub(crate) fn is_thread_retired(&self, t: ThreadId) -> bool {
        dispatch!(&self.engine, e => e.is_retired(t))
    }

    /// Moves one conflict-free partition of the detector's state (the
    /// engine shard plus the partition variables' access histories and
    /// an unbounded race accumulator) into a shard detector; the
    /// parallel frame scheduler ([`crate::parallel`]) feeds it the
    /// partition's events on a worker thread and merges it back with
    /// [`absorb_shard`](Self::absorb_shard). The shard never evicts
    /// (the scheduler falls back to sequential feeding whenever
    /// eviction is configured), so its per-event behavior is exactly
    /// the sequential detector's restricted to the partition.
    pub(crate) fn extract_shard(
        &mut self,
        tids: &[ThreadId],
        locks: &[LockId],
        vars: &[VarId],
        pool: ClockPool<C>,
    ) -> Self {
        let engine = match &mut self.engine {
            OrderEngine::Hb(e) => OrderEngine::Hb(e.extract_epoch_shard(tids, locks, vars, pool)),
            OrderEngine::Shb(e) => OrderEngine::Shb(e.extract_epoch_shard(tids, locks, vars, pool)),
            OrderEngine::Maz(e) => OrderEngine::Maz(e.extract_epoch_shard(tids, locks, vars, pool)),
        };
        let mut shard_vars = VarHistories::default();
        for &x in vars {
            shard_vars.put(x, self.vars.take(x));
        }
        IncrementalDetector {
            config: DetectorConfig {
                evict_every: None,
                // Shards never translate ids: the scheduler falls back
                // to sequential feeding whenever recycling is on.
                recycle_slots: false,
                ..self.config
            },
            engine,
            vars: shard_vars,
            report: RaceReport::unbounded(),
            emitted: 0,
            events: 0,
            evicted: 0,
            started: Vec::new(),
            forked: Vec::new(),
            first_thread: None,
            identity: None,
            floor_buf: Vec::new(),
            peak_clock_bytes: 0,
        }
    }

    /// Merges a shard produced by [`extract_shard`](Self::extract_shard)
    /// back: engine state, variable histories, and the `checks` work
    /// counter return to the parent; the shard's pool is returned for
    /// the next frame's shards. Races are *not* merged here — the
    /// scheduler replays them in frame order through
    /// [`commit_parallel_frame`](Self::commit_parallel_frame) so the
    /// stored-race order and cap behave exactly as sequential feeding.
    pub(crate) fn absorb_shard(
        &mut self,
        shard: Self,
        tids: &[ThreadId],
        locks: &[LockId],
        vars: &[VarId],
    ) -> ClockPool<C> {
        let IncrementalDetector {
            engine,
            vars: mut shard_vars,
            report,
            ..
        } = shard;
        for &x in vars {
            self.vars.put(x, shard_vars.take(x));
        }
        self.report.checks += report.checks;
        match (&mut self.engine, engine) {
            (OrderEngine::Hb(p), OrderEngine::Hb(s)) => p.absorb_epoch_shard(s, tids, locks, vars),
            (OrderEngine::Shb(p), OrderEngine::Shb(s)) => {
                p.absorb_epoch_shard(s, tids, locks, vars)
            }
            (OrderEngine::Maz(p), OrderEngine::Maz(s)) => {
                p.absorb_epoch_shard(s, tids, locks, vars)
            }
            _ => unreachable!("a shard's engine kind always matches its parent"),
        }
    }

    /// After a frame's shards have been absorbed: applies the frame's
    /// thread-lifecycle bookkeeping (in frame order, exactly as
    /// sequential feeding would) and replays the frame's races —
    /// already merged in frame order — through the capped report.
    /// Returns the newly stored races, i.e. what the sequential
    /// detector's `feed` calls would have returned across the frame.
    pub(crate) fn commit_parallel_frame(&mut self, events: &[Event], races: &[Race]) -> &[Race] {
        for e in events {
            let t = e.tid;
            self.grow_thread(t.index());
            if self.first_thread.is_none() {
                self.first_thread = Some(t);
            }
            self.started[t.index()] = true;
            if let Op::Fork(u) = e.op {
                self.grow_thread(u.index());
                self.forked[u.index()] = true;
                self.started[u.index()] = true;
            }
        }
        self.events += events.len() as u64;
        let start = self.emitted;
        for &r in races {
            self.report.record(r);
        }
        self.emitted = self.report.races.len();
        self.report.races_since(start)
    }

    /// Captures the complete value-level session state. Feeding the
    /// same remaining events to
    /// [`from_checkpoint`](Self::from_checkpoint)'s detector yields
    /// byte-identical reports to never having stopped.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            config: self.config,
            backend: C::NAME.to_owned(),
            events: self.events,
            emitted: self.emitted as u64,
            polled: 0,
            evicted: self.evicted,
            first_thread: self.first_thread,
            started: self.started.clone(),
            forked: self.forked.clone(),
            engine: dispatch!(&self.engine, e => e.export_state()),
            vars: self.vars.snapshot(),
            report: self.report.clone(),
            validator: None,
            interner: None,
            identity: self.identity.as_ref().map(IdentityMap::snapshot),
        }
    }

    /// Resumes a session from a checkpoint, drawing clocks from `pool`.
    /// The backend need not match the one that wrote the checkpoint
    /// (values are representation independent); the recorded
    /// [`Checkpoint::backend`] lets a service re-create the original
    /// one.
    pub fn from_checkpoint(cp: &Checkpoint, pool: ClockPool<C>) -> Self {
        let engine = match cp.config.order {
            PartialOrderKind::Hb => OrderEngine::Hb(HbEngine::from_state(&cp.engine, pool)),
            PartialOrderKind::Shb => OrderEngine::Shb(ShbEngine::from_state(&cp.engine, pool)),
            PartialOrderKind::Maz => OrderEngine::Maz(MazEngine::from_state(&cp.engine, pool)),
        };
        IncrementalDetector {
            config: cp.config,
            engine,
            vars: VarHistories::from_snapshot(&cp.vars),
            report: cp.report.clone(),
            emitted: cp.emitted as usize,
            events: cp.events,
            evicted: cp.evicted,
            started: cp.started.clone(),
            forked: cp.forked.clone(),
            first_thread: cp.first_thread,
            identity: cp
                .identity
                .as_ref()
                .map(IdentityMap::from_snapshot)
                .or_else(|| cp.config.recycle_slots.then(IdentityMap::new)),
            floor_buf: Vec::new(),
            peak_clock_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_analysis::HbRaceDetector;
    use tc_core::{TreeClock, VectorClock};
    use tc_trace::TraceBuilder;

    #[test]
    fn feed_matches_the_batch_detector() {
        let mut b = TraceBuilder::new();
        b.write(0, "x");
        b.read(1, "x");
        b.acquire(0, "m").write(0, "y").release(0, "m");
        b.acquire(1, "m").write(1, "y").release(1, "m");
        b.write(2, "x");
        let trace = b.finish();

        let batch = HbRaceDetector::<TreeClock>::new(&trace).run(&trace);
        let mut d = IncrementalDetector::<TreeClock>::new(DetectorConfig::default());
        let mut live = Vec::new();
        for e in &trace {
            live.extend(d.feed(e).unwrap().iter().copied());
        }
        assert_eq!(*d.report(), batch);
        assert_eq!(live, batch.races, "live emission must cover every race");
        assert_eq!(d.events(), trace.len() as u64);
        assert_eq!(d.threads_seen(), 3);
    }

    #[test]
    fn join_retirement_releases_clocks() {
        let mut b = TraceBuilder::new();
        b.fork(0, 1).write(1, "x").join(0, 1);
        b.fork(0, 2).write(2, "x").join(0, 2);
        let trace = b.finish();
        let mut d = IncrementalDetector::<VectorClock>::new(DetectorConfig::default());
        for e in &trace {
            d.feed(e).unwrap();
        }
        assert_eq!(d.retired_count(), 2);
        // The second child reused the first child's retired clock.
        assert!(d.pool().recycled() >= 1);
        // Both writes are fork/join ordered: no race.
        assert!(d.report().is_empty());
    }

    #[test]
    fn eviction_rejects_spontaneous_threads_instead_of_diverging() {
        let config = DetectorConfig {
            evict_every: Some(1),
            ..DetectorConfig::default()
        };
        let mut d = IncrementalDetector::<TreeClock>::new(config);
        let mut b = TraceBuilder::new();
        b.acquire(0, "m").release(0, "m").fork(0, 1);
        b.acquire(1, "m").release(1, "m");
        let trace = b.finish();
        for e in &trace {
            d.feed(e).unwrap();
        }
        assert!(d.evicted() > 0, "the lock clock must have been evicted");
        // A forked thread is fine; a spontaneous one is rejected.
        let mut b = TraceBuilder::new();
        b.write(7, "x");
        let spontaneous = &b.finish()[0];
        let err = d.feed(spontaneous).unwrap_err();
        assert!(matches!(err, FeedError::SpontaneousThread { .. }));
        assert!(err.to_string().contains("fork discipline"));
        // The rejected event was not ingested; the session continues.
        let before = d.events();
        let mut b = TraceBuilder::new();
        b.acquire(0, "m");
        d.feed(&b.finish()[0]).unwrap();
        assert_eq!(d.events(), before + 1);
    }

    #[test]
    fn events_touching_retired_threads_error_instead_of_panicking() {
        // join(0,1) roots-and-retires t1 even though it never acted; a
        // later fork/join/act of t1 must be a FeedError, not an engine
        // panic (a panic would kill a serve worker shard for good).
        let mut b = TraceBuilder::new();
        b.join(0, 1).fork(2, 1);
        let trace = b.finish();
        let mut d = IncrementalDetector::<TreeClock>::new(DetectorConfig::default());
        d.feed(&trace[0]).unwrap();
        let err = d.feed(&trace[1]).unwrap_err();
        assert!(
            matches!(err, FeedError::RetiredThread { thread, .. } if thread == ThreadId::new(1)),
            "{err}"
        );
        // An event *by* the retired thread is rejected too.
        let mut b = TraceBuilder::new();
        b.write(1, "x");
        let err = d.feed(&b.finish()[0]).unwrap_err();
        assert!(matches!(err, FeedError::RetiredThread { .. }), "{err}");
        // The session survives and keeps working.
        let mut b = TraceBuilder::new();
        b.write(0, "x");
        d.feed(&b.finish()[0]).unwrap();
        assert_eq!(d.events(), 2);
    }

    /// Fork-disciplined churn: a coordinator forks `width` workers per
    /// wave, the workers race on `racy`, touch a lock-guarded shared
    /// variable, and read the coordinator's broadcast, then are all
    /// joined before the next wave starts.
    fn churn_trace(waves: u32, width: u32) -> tc_trace::Trace {
        let mut b = TraceBuilder::new();
        b.write(0, "bcast");
        let mut next = 1u32;
        for _ in 0..waves {
            let ids: Vec<u32> = (0..width)
                .map(|_| {
                    next += 1;
                    next - 1
                })
                .collect();
            for &u in &ids {
                b.fork(0, u);
            }
            for &u in &ids {
                b.read(u, "bcast");
                b.acquire(u, "m").write(u, "shared").release(u, "m");
                b.write(u, "racy");
            }
            for &u in &ids {
                b.join(0, u);
            }
            b.write(0, "bcast");
        }
        b.finish()
    }

    #[test]
    fn recycling_matches_direct_on_churn() {
        let trace = churn_trace(6, 4);
        for order in PartialOrderKind::ALL {
            let mut direct =
                IncrementalDetector::<TreeClock>::new(DetectorConfig::for_order(order));
            let mut recycled = IncrementalDetector::<TreeClock>::new(DetectorConfig {
                recycle_slots: true,
                ..DetectorConfig::for_order(order)
            });
            for e in &trace {
                let live_a: Vec<Race> = direct.feed(e).unwrap().to_vec();
                let live_b: Vec<Race> = recycled.feed(e).unwrap().to_vec();
                assert_eq!(live_a, live_b, "{order}: live races diverge at {e}");
                assert_eq!(
                    direct.timestamp_of(e.tid),
                    recycled.timestamp_of(e.tid),
                    "{order}: timestamps diverge at {e}"
                );
            }
            assert_eq!(direct.report(), recycled.report(), "{order}");
            assert!(recycled.recycled_slots() > 0, "{order}: no slot was reused");
            assert_eq!(recycled.total_threads(), 25, "{order}");
            assert_eq!(recycled.live_threads(), 1, "{order}");
            // 6 waves of 4 workers fit in one wave's worth of slots.
            assert!(
                recycled.slot_width() <= 6,
                "{order}: slot width {} is not O(live)",
                recycled.slot_width()
            );
            assert_eq!(direct.slot_width(), 25, "{order}");
        }
    }

    #[test]
    fn retired_and_recycled_externals_error_identically() {
        let config = DetectorConfig {
            recycle_slots: true,
            ..DetectorConfig::default()
        };
        let mut d = IncrementalDetector::<TreeClock>::new(config);
        let mut b = TraceBuilder::new();
        b.fork(0, 1).write(1, "x").join(0, 1);
        for e in &b.finish() {
            d.feed(e).unwrap();
        }
        // Retired but not yet reclaimed: the same error the direct path
        // raises, naming the external id.
        let mut b = TraceBuilder::new();
        b.write(1, "x");
        let err = d.feed(&b.finish()[0]).unwrap_err();
        assert!(
            matches!(err, FeedError::RetiredThread { thread, .. } if thread == ThreadId::new(1)),
            "{err}"
        );
        // Binding a fresh external reclaims thread 1's slot.
        let mut b = TraceBuilder::new();
        b.fork(0, 2).write(2, "x");
        for e in &b.finish() {
            d.feed(e).unwrap();
        }
        assert_eq!(d.recycled_slots(), 1);
        // Thread 1's slot now belongs to thread 2: still an error, with
        // the recycling-specific diagnosis.
        let mut b = TraceBuilder::new();
        b.write(1, "x");
        let before = d.events();
        let err = d.feed(&b.finish()[0]).unwrap_err();
        assert!(
            matches!(err, FeedError::RecycledThread { thread, .. } if thread == ThreadId::new(1)),
            "{err}"
        );
        assert!(err.to_string().contains("recycled"), "{err}");
        // The rejected event was not ingested; the session continues.
        assert_eq!(d.events(), before);
        let mut b = TraceBuilder::new();
        b.write(0, "y");
        d.feed(&b.finish()[0]).unwrap();
        // A fork *of* the stale external is rejected atomically too.
        let mut b = TraceBuilder::new();
        b.fork(0, 1);
        let err = d.feed(&b.finish()[0]).unwrap_err();
        assert!(matches!(err, FeedError::RecycledThread { .. }), "{err}");
    }

    #[test]
    fn recycling_keeps_peak_clock_bytes_bounded() {
        let wide = churn_trace(16, 4);
        let mut on = IncrementalDetector::<VectorClock>::new(DetectorConfig {
            recycle_slots: true,
            ..DetectorConfig::default()
        });
        let mut off = IncrementalDetector::<VectorClock>::new(DetectorConfig::default());
        for e in &wide {
            on.feed(e).unwrap();
            off.feed(e).unwrap();
        }
        assert_eq!(on.report(), off.report());
        // 65 externals squeeze into a handful of slots, so the vector
        // clocks stay narrow; the direct detector's grow with the total.
        assert!(
            on.peak_clock_bytes() * 2 < off.peak_clock_bytes(),
            "recycling peak {} vs direct peak {}",
            on.peak_clock_bytes(),
            off.peak_clock_bytes()
        );
    }

    #[test]
    fn detector_orders_cover_shb_and_maz() {
        let mut b = TraceBuilder::new();
        b.write(0, "x").read(1, "x").write(1, "x");
        let trace = b.finish();
        let mut shb =
            IncrementalDetector::<TreeClock>::new(DetectorConfig::for_order(PartialOrderKind::Shb));
        let mut maz =
            IncrementalDetector::<TreeClock>::new(DetectorConfig::for_order(PartialOrderKind::Maz));
        for e in &trace {
            shb.feed(e).unwrap();
            maz.feed(e).unwrap();
        }
        // SHB: only the first w/r pair is schedulable; MAZ: the same
        // single reversible pair (w1 is transitively ordered).
        assert_eq!(shb.report().total, 1);
        assert_eq!(maz.report().total, 1);
    }
}
