//! Online, bounded-memory streaming race detection.
//!
//! Everything below this crate is batch: a trace must be fully
//! materialized before any engine sees an event, and every clock lives
//! until the run ends. The paper's engines are intrinsically *online* —
//! each event touches O(1) clocks — so this crate exposes them that
//! way:
//!
//! - [`IncrementalDetector`] — a feed-one-event race detector over any
//!   partial order (HB/SHB/MAZ) and any clock backend
//!   (tree/vector/hybrid), producing reports and per-event timestamps
//!   *identical* to the batch detectors (conformance-enforced), with
//!   bounded memory: thread clocks are retired to the
//!   [`ClockPool`](tc_core::ClockPool) at `join`, and cold lock/
//!   variable clocks dominated by every live thread can be evicted.
//! - [`Checkpoint`] — a serializable value-level snapshot of a live
//!   session ([`Checkpoint::write`]/[`Checkpoint::read`]); resuming
//!   from it yields byte-identical subsequent reports.
//! - [`Session`] / [`Server`] — a line-protocol analysis service
//!   (`tcr serve`): concurrent sessions sharded across worker threads,
//!   each an independent detector fed over TCP, with live race
//!   polling, statistics, and server-side checkpoints. `tcr stream`
//!   drives the same [`Session`] machinery over a file through
//!   [`EventReader`](tc_trace::EventReader) without materializing the
//!   trace.
//!
//! The streaming-vs-batch equivalence — reports and final vector
//! times equal on every corpus trace, across all three backends, and
//! across a mid-stream checkpoint/restore — is enforced by
//! `tc-conformance`'s sweep on every quick-corpus case.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod detector;
pub mod metrics;
pub mod parallel;
pub mod service;
pub mod session;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use detector::{DetectorConfig, FeedError, IncrementalDetector};
pub use metrics::{phase_metric_name, PhaseMetrics, ServiceMetrics, SharedMetrics, PHASES};
pub use parallel::{EpochPool, ParallelDetector, DEFAULT_MIN_PARALLEL_FRAME};
pub use service::{constant_time_eq, parse_open, smoke, Client, ServeConfig, Server};
pub use session::{AnyDetector, ClockChoice, Session};
