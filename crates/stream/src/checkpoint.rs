//! Serializable session checkpoints.
//!
//! A [`Checkpoint`] is a complete value-level capture of an
//! [`IncrementalDetector`](crate::IncrementalDetector): clock values
//! (not representations — see [`tc_orders::snapshot`]), per-variable
//! access histories, the race report so far, and the lifecycle
//! bookkeeping the memory policies need. Restoring it and feeding the
//! remaining events produces byte-identical reports to a run that never
//! stopped.
//!
//! The on-disk format (`TCCP`) follows the binary trace format's
//! conventions: a 4-byte magic, a version byte, then LEB128 varints
//! throughout. It contains no clock-representation detail, so a
//! checkpoint written by a tree-backend session restores into any
//! backend.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use tc_analysis::{RaceReport, ReadsSnapshot, VarHistorySnapshot};
use tc_core::{Epoch, IdentitySnapshot, LocalTime, ThreadId};
use tc_orders::snapshot::{ClockValue, CoreState, EngineState, ThreadSlot, VarClocks};
use tc_orders::PartialOrderKind;
use tc_trace::{InternerState, ValidatorState, VarId};

use crate::detector::DetectorConfig;

const MAGIC: &[u8; 4] = b"TCCP";
// Version 2 added the identity-recycling section (the `recycle_slots`
// config flag and the optional serialized `IdentityMap`).
const VERSION: u8 = 2;

/// An error reading or writing a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The input is not a valid checkpoint.
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "I/O error on checkpoint: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn corrupt(message: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(message.into())
}

/// A complete value-level session snapshot; see the [module
/// docs](self).
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// The detector configuration (order + memory policy).
    pub config: DetectorConfig,
    /// `LogicalClock::NAME` of the backend that wrote the checkpoint
    /// (informational: restore works into any backend).
    pub backend: String,
    /// Events ingested before the checkpoint.
    pub events: u64,
    /// Stored races already returned from the detector's `feed` calls.
    pub emitted: u64,
    /// Stored races already delivered to a protocol consumer via
    /// `poll` (session-level; 0 for a bare detector checkpoint, in
    /// which case a resumed session's first `poll` replays every
    /// stored race rather than losing undelivered ones).
    pub polled: u64,
    /// Dominated-state evictions performed so far.
    pub evicted: u64,
    /// The session's initial thread.
    pub first_thread: Option<ThreadId>,
    /// Thread-started flags, dense by thread id.
    pub started: Vec<bool>,
    /// Thread-forked flags, dense by thread id.
    pub forked: Vec<bool>,
    /// The engine's clock values.
    pub engine: EngineState,
    /// Per-variable access histories.
    pub vars: Vec<VarHistorySnapshot>,
    /// The race report accumulated so far.
    pub report: RaceReport,
    /// The session validator's state, when the checkpoint was taken at
    /// the session level ([`Session::checkpoint`]); `None` for a bare
    /// detector checkpoint.
    ///
    /// [`Session::checkpoint`]: crate::Session::checkpoint
    pub validator: Option<ValidatorState>,
    /// The session's name tables (text sessions), when taken at the
    /// session level — a resumed session keeps every established
    /// name → id binding.
    pub interner: Option<InternerState>,
    /// The identity map (external id ⇄ recycled slot bindings), when
    /// the detector runs with `recycle_slots`. Serialized in full —
    /// including the free/pending queues in order — so a resumed
    /// session assigns exactly the same slots to future threads.
    pub identity: Option<IdentitySnapshot>,
}

// ---- primitive writers/readers ----------------------------------------

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> Result<u64, CheckpointError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(corrupt("varint overflow"));
        }
        out |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

fn read_u32<R: Read>(r: &mut R, what: &str) -> Result<u32, CheckpointError> {
    u32::try_from(read_varint(r)?).map_err(|_| corrupt(format!("{what} overflows u32")))
}

fn read_len<R: Read>(r: &mut R, what: &str) -> Result<usize, CheckpointError> {
    let len = read_varint(r)?;
    // A hostile length must not pre-allocate unbounded memory; 2^32
    // elements is far past any real session's state.
    if len > u64::from(u32::MAX) {
        return Err(corrupt(format!("{what} length {len} is implausible")));
    }
    Ok(len as usize)
}

fn write_opt_tid<W: Write>(w: &mut W, t: Option<ThreadId>) -> io::Result<()> {
    write_varint(w, t.map(|t| u64::from(t.raw()) + 1).unwrap_or(0))
}

fn read_opt_tid<R: Read>(r: &mut R) -> Result<Option<ThreadId>, CheckpointError> {
    let v = read_varint(r)?;
    if v == 0 {
        return Ok(None);
    }
    u32::try_from(v - 1)
        .map(|raw| Some(ThreadId::new(raw)))
        .map_err(|_| corrupt("thread id overflows u32"))
}

fn write_bits<W: Write>(w: &mut W, bits: &[bool]) -> io::Result<()> {
    write_varint(w, bits.len() as u64)?;
    let mut byte = 0u8;
    for (i, &b) in bits.iter().enumerate() {
        byte |= u8::from(b) << (i % 8);
        if i % 8 == 7 {
            w.write_all(&[byte])?;
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        w.write_all(&[byte])?;
    }
    Ok(())
}

fn read_bits<R: Read>(r: &mut R) -> Result<Vec<bool>, CheckpointError> {
    let len = read_len(r, "bitset")?;
    let mut out = Vec::with_capacity(len);
    let mut byte = [0u8; 1];
    for i in 0..len {
        if i % 8 == 0 {
            r.read_exact(&mut byte)?;
        }
        out.push(byte[0] >> (i % 8) & 1 == 1);
    }
    Ok(out)
}

fn write_clock_value<W: Write>(w: &mut W, value: &ClockValue) -> io::Result<()> {
    write_opt_tid(w, value.root)?;
    // Trailing zeros are insignificant: trim them so a wide arena does
    // not bloat the checkpoint.
    let len = value
        .times
        .iter()
        .rposition(|&t| t != 0)
        .map_or(0, |i| i + 1);
    write_varint(w, len as u64)?;
    for &t in &value.times[..len] {
        write_varint(w, u64::from(t))?;
    }
    Ok(())
}

fn read_clock_value<R: Read>(r: &mut R) -> Result<ClockValue, CheckpointError> {
    let root = read_opt_tid(r)?;
    let len = read_len(r, "clock value")?;
    let mut times = Vec::with_capacity(len);
    for _ in 0..len {
        times.push(read_u32(r, "clock entry")? as LocalTime);
    }
    Ok(ClockValue { root, times })
}

fn write_opt_clock<W: Write>(w: &mut W, value: Option<&ClockValue>) -> io::Result<()> {
    match value {
        Some(v) => {
            w.write_all(&[1])?;
            write_clock_value(w, v)
        }
        None => w.write_all(&[0]),
    }
}

fn read_opt_clock<R: Read>(r: &mut R) -> Result<Option<ClockValue>, CheckpointError> {
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    match flag[0] {
        0 => Ok(None),
        1 => Ok(Some(read_clock_value(r)?)),
        other => Err(corrupt(format!("bad clock-presence flag {other}"))),
    }
}

fn write_epoch<W: Write>(w: &mut W, e: Epoch) -> io::Result<()> {
    write_varint(w, u64::from(e.tid().raw()))?;
    write_varint(w, u64::from(e.time()))
}

fn read_epoch<R: Read>(r: &mut R) -> Result<Epoch, CheckpointError> {
    let tid = read_u32(r, "epoch thread")?;
    let time = read_u32(r, "epoch time")?;
    Ok(Epoch::new(ThreadId::new(tid), time))
}

// ---- the document ------------------------------------------------------

impl Checkpoint {
    /// Serializes the checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write<W: Write>(&self, mut w: W) -> io::Result<()> {
        let w = &mut w;
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION])?;
        w.write_all(&[match self.config.order {
            PartialOrderKind::Hb => 0,
            PartialOrderKind::Shb => 1,
            PartialOrderKind::Maz => 2,
        }])?;
        write_varint(w, self.backend.len() as u64)?;
        w.write_all(self.backend.as_bytes())?;
        w.write_all(&[u8::from(self.config.retire_on_join)])?;
        match self.config.evict_every {
            Some(n) => {
                w.write_all(&[1])?;
                write_varint(w, n)?;
            }
            None => w.write_all(&[0])?,
        }
        w.write_all(&[u8::from(self.config.recycle_slots)])?;
        match &self.identity {
            Some(id) => {
                w.write_all(&[1])?;
                write_varint(w, id.entries.len() as u64)?;
                for &(ext, slot, generation, base, fin) in &id.entries {
                    write_varint(w, u64::from(ext))?;
                    write_varint(w, u64::from(slot))?;
                    write_varint(w, u64::from(generation))?;
                    write_varint(w, u64::from(base))?;
                    write_varint(w, fin.map(|f| u64::from(f) + 1).unwrap_or(0))?;
                }
                // The pending and free queues are order-significant:
                // slot reuse pops deterministically, so a resumed
                // session must see the queues exactly as they were.
                write_varint(w, id.pending.len() as u64)?;
                for &(slot, fin) in &id.pending {
                    write_varint(w, u64::from(slot))?;
                    write_varint(w, u64::from(fin))?;
                }
                write_varint(w, id.free.len() as u64)?;
                for &(slot, base) in &id.free {
                    write_varint(w, u64::from(slot))?;
                    write_varint(w, u64::from(base))?;
                }
                write_varint(w, id.recycled)?;
            }
            None => w.write_all(&[0])?,
        }
        write_varint(w, self.events)?;
        write_varint(w, self.emitted)?;
        write_varint(w, self.polled)?;
        write_varint(w, self.evicted)?;
        write_opt_tid(w, self.first_thread)?;
        write_bits(w, &self.started)?;
        write_bits(w, &self.forked)?;

        write_varint(w, self.engine.core.threads.len() as u64)?;
        for slot in &self.engine.core.threads {
            w.write_all(&[u8::from(slot.retired)])?;
            write_opt_clock(w, slot.clock.as_ref())?;
        }
        write_varint(w, self.engine.core.locks.len() as u64)?;
        for lock in &self.engine.core.locks {
            write_opt_clock(w, lock.as_ref())?;
        }
        write_varint(w, self.engine.vars.len() as u64)?;
        for var in &self.engine.vars {
            write_opt_clock(w, var.last_write.as_ref())?;
            write_varint(w, var.reads.len() as u64)?;
            for (t, value) in &var.reads {
                write_varint(w, u64::from(t.raw()))?;
                write_clock_value(w, value)?;
            }
            write_varint(w, var.lrds.len() as u64)?;
            for t in &var.lrds {
                write_varint(w, u64::from(t.raw()))?;
            }
        }

        write_varint(w, self.vars.len() as u64)?;
        for h in &self.vars {
            write_varint(w, u64::from(h.var.raw()))?;
            write_epoch(w, h.write)?;
            match &h.reads {
                ReadsSnapshot::Epoch(e) => {
                    w.write_all(&[0])?;
                    write_epoch(w, *e)?;
                }
                ReadsSnapshot::Vector(pairs) => {
                    w.write_all(&[1])?;
                    write_varint(w, pairs.len() as u64)?;
                    for &(t, time) in pairs {
                        write_varint(w, u64::from(t.raw()))?;
                        write_varint(w, u64::from(time))?;
                    }
                }
            }
        }

        match &self.validator {
            Some(v) => {
                w.write_all(&[1])?;
                write_varint(w, v.held_by.len() as u64)?;
                for holder in &v.held_by {
                    write_opt_tid(w, *holder)?;
                }
                write_bits(w, &v.started)?;
                write_bits(w, &v.forked)?;
                write_bits(w, &v.joined)?;
                write_varint(w, v.events)?;
            }
            None => w.write_all(&[0])?,
        }
        match &self.interner {
            Some(names) => {
                w.write_all(&[1])?;
                for table in [&names.threads, &names.locks, &names.vars] {
                    write_varint(w, table.len() as u64)?;
                    for name in table.iter() {
                        write_varint(w, name.len() as u64)?;
                        w.write_all(name.as_bytes())?;
                    }
                }
            }
            None => w.write_all(&[0])?,
        }

        write_varint(w, self.report.total)?;
        write_varint(w, self.report.checks)?;
        write_varint(w, self.report.races.len() as u64)?;
        for race in &self.report.races {
            write_varint(w, u64::from(race.var.raw()))?;
            w.write_all(&[match race.kind {
                tc_analysis::RaceKind::WriteWrite => 0,
                tc_analysis::RaceKind::WriteRead => 1,
                tc_analysis::RaceKind::ReadWrite => 2,
            }])?;
            write_epoch(w, race.prior)?;
            write_epoch(w, race.current)?;
        }
        Ok(())
    }

    /// Serializes the checkpoint to a byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write(&mut buf).expect("writing to a Vec cannot fail");
        buf
    }

    /// Deserializes a checkpoint.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] for structural problems,
    /// [`CheckpointError::Io`] for reader failures (including
    /// truncation).
    pub fn read<R: Read>(mut r: R) -> Result<Checkpoint, CheckpointError> {
        let r = &mut r;
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(corrupt("bad magic (not a TCCP checkpoint)"));
        }
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if byte[0] != VERSION {
            return Err(corrupt(format!(
                "unsupported version {} (expected {VERSION})",
                byte[0]
            )));
        }
        r.read_exact(&mut byte)?;
        let order = match byte[0] {
            0 => PartialOrderKind::Hb,
            1 => PartialOrderKind::Shb,
            2 => PartialOrderKind::Maz,
            other => return Err(corrupt(format!("unknown order tag {other}"))),
        };
        let backend_len = read_len(r, "backend name")?;
        if backend_len > 64 {
            return Err(corrupt("backend name is implausibly long"));
        }
        let mut backend = vec![0u8; backend_len];
        r.read_exact(&mut backend)?;
        let backend =
            String::from_utf8(backend).map_err(|_| corrupt("backend name is not UTF-8"))?;
        r.read_exact(&mut byte)?;
        let retire_on_join = match byte[0] {
            0 => false,
            1 => true,
            other => return Err(corrupt(format!("bad retire flag {other}"))),
        };
        r.read_exact(&mut byte)?;
        let evict_every = match byte[0] {
            0 => None,
            1 => Some(read_varint(r)?),
            other => return Err(corrupt(format!("bad evict flag {other}"))),
        };
        r.read_exact(&mut byte)?;
        let recycle_slots = match byte[0] {
            0 => false,
            1 => true,
            other => return Err(corrupt(format!("bad recycle flag {other}"))),
        };
        r.read_exact(&mut byte)?;
        let identity = match byte[0] {
            0 => None,
            1 => {
                let entry_count = read_len(r, "identity entries")?;
                let mut entries = Vec::with_capacity(entry_count);
                for _ in 0..entry_count {
                    let ext = read_u32(r, "identity external")?;
                    let slot = read_u32(r, "identity slot")?;
                    let generation = read_u32(r, "identity generation")?;
                    let base = read_u32(r, "identity base")? as LocalTime;
                    let fin = match read_varint(r)? {
                        0 => None,
                        v => Some(
                            u32::try_from(v - 1)
                                .map_err(|_| corrupt("identity fin overflows u32"))?
                                as LocalTime,
                        ),
                    };
                    entries.push((ext, slot, generation, base, fin));
                }
                let pending_count = read_len(r, "identity pending")?;
                let mut pending = Vec::with_capacity(pending_count);
                for _ in 0..pending_count {
                    let slot = read_u32(r, "pending slot")?;
                    let fin = read_u32(r, "pending fin")? as LocalTime;
                    pending.push((slot, fin));
                }
                let free_count = read_len(r, "identity free")?;
                let mut free = Vec::with_capacity(free_count);
                for _ in 0..free_count {
                    let slot = read_u32(r, "free slot")?;
                    let base = read_u32(r, "free base")? as LocalTime;
                    free.push((slot, base));
                }
                let recycled = read_varint(r)?;
                Some(IdentitySnapshot {
                    entries,
                    pending,
                    free,
                    recycled,
                })
            }
            other => return Err(corrupt(format!("bad identity flag {other}"))),
        };
        let events = read_varint(r)?;
        let emitted = read_varint(r)?;
        let polled = read_varint(r)?;
        let evicted = read_varint(r)?;
        let first_thread = read_opt_tid(r)?;
        let started = read_bits(r)?;
        let forked = read_bits(r)?;

        let thread_count = read_len(r, "threads")?;
        let mut threads = Vec::with_capacity(thread_count);
        for _ in 0..thread_count {
            r.read_exact(&mut byte)?;
            let retired = match byte[0] {
                0 => false,
                1 => true,
                other => return Err(corrupt(format!("bad retired flag {other}"))),
            };
            threads.push(ThreadSlot {
                retired,
                clock: read_opt_clock(r)?,
            });
        }
        let lock_count = read_len(r, "locks")?;
        let mut locks = Vec::with_capacity(lock_count);
        for _ in 0..lock_count {
            locks.push(read_opt_clock(r)?);
        }
        let var_count = read_len(r, "engine vars")?;
        let mut engine_vars = Vec::with_capacity(var_count);
        for _ in 0..var_count {
            let last_write = read_opt_clock(r)?;
            let read_count = read_len(r, "read clocks")?;
            let mut reads = Vec::with_capacity(read_count);
            for _ in 0..read_count {
                let t = ThreadId::new(read_u32(r, "read-clock thread")?);
                reads.push((t, read_clock_value(r)?));
            }
            let lrd_count = read_len(r, "lrds")?;
            let mut lrds = Vec::with_capacity(lrd_count);
            for _ in 0..lrd_count {
                lrds.push(ThreadId::new(read_u32(r, "lrd thread")?));
            }
            engine_vars.push(VarClocks {
                last_write,
                reads,
                lrds,
            });
        }

        let history_count = read_len(r, "var histories")?;
        let mut vars = Vec::with_capacity(history_count);
        for _ in 0..history_count {
            let var = VarId::new(read_u32(r, "history var")?);
            let write = read_epoch(r)?;
            r.read_exact(&mut byte)?;
            let reads = match byte[0] {
                0 => ReadsSnapshot::Epoch(read_epoch(r)?),
                1 => {
                    let n = read_len(r, "read vector")?;
                    let mut pairs = Vec::with_capacity(n);
                    for _ in 0..n {
                        let t = ThreadId::new(read_u32(r, "read thread")?);
                        let time = read_u32(r, "read time")?;
                        pairs.push((t, time as LocalTime));
                    }
                    ReadsSnapshot::Vector(pairs)
                }
                other => return Err(corrupt(format!("bad reads tag {other}"))),
            };
            vars.push(VarHistorySnapshot { var, write, reads });
        }

        r.read_exact(&mut byte)?;
        let validator = match byte[0] {
            0 => None,
            1 => {
                let lock_count = read_len(r, "validator locks")?;
                let mut held_by = Vec::with_capacity(lock_count);
                for _ in 0..lock_count {
                    held_by.push(read_opt_tid(r)?);
                }
                let started = read_bits(r)?;
                let forked = read_bits(r)?;
                let joined = read_bits(r)?;
                let events = read_varint(r)?;
                Some(ValidatorState {
                    held_by,
                    started,
                    forked,
                    joined,
                    events,
                })
            }
            other => return Err(corrupt(format!("bad validator flag {other}"))),
        };
        r.read_exact(&mut byte)?;
        let interner = match byte[0] {
            0 => None,
            1 => {
                let mut tables = [Vec::new(), Vec::new(), Vec::new()];
                for table in &mut tables {
                    let count = read_len(r, "name table")?;
                    for _ in 0..count {
                        let len = read_len(r, "name")?;
                        if len > 4096 {
                            return Err(corrupt("name is implausibly long"));
                        }
                        let mut buf = vec![0u8; len];
                        r.read_exact(&mut buf)?;
                        table.push(
                            String::from_utf8(buf).map_err(|_| corrupt("name is not UTF-8"))?,
                        );
                    }
                }
                let [threads, locks, vars] = tables;
                Some(InternerState {
                    threads,
                    locks,
                    vars,
                })
            }
            other => return Err(corrupt(format!("bad interner flag {other}"))),
        };

        let total = read_varint(r)?;
        let checks = read_varint(r)?;
        let race_count = read_len(r, "races")?;
        let mut races = Vec::with_capacity(race_count);
        for _ in 0..race_count {
            let var = VarId::new(read_u32(r, "race var")?);
            r.read_exact(&mut byte)?;
            let kind = match byte[0] {
                0 => tc_analysis::RaceKind::WriteWrite,
                1 => tc_analysis::RaceKind::WriteRead,
                2 => tc_analysis::RaceKind::ReadWrite,
                other => return Err(corrupt(format!("unknown race kind {other}"))),
            };
            let prior = read_epoch(r)?;
            let current = read_epoch(r)?;
            races.push(tc_analysis::Race {
                var,
                kind,
                prior,
                current,
            });
        }
        if (races.len() as u64) > total {
            return Err(corrupt("stored races exceed the reported total"));
        }

        Ok(Checkpoint {
            config: DetectorConfig {
                order,
                retire_on_join,
                evict_every,
                recycle_slots,
            },
            backend,
            events,
            emitted,
            polled,
            evicted,
            first_thread,
            started,
            forked,
            engine: EngineState {
                core: CoreState { threads, locks },
                vars: engine_vars,
            },
            vars,
            report: RaceReport::from_parts(races, total, checks),
            validator,
            interner,
            identity,
        })
    }

    /// Deserializes a checkpoint from a byte buffer.
    ///
    /// # Errors
    ///
    /// See [`read`](Self::read).
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::read(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorConfig, IncrementalDetector};
    use tc_core::{ClockPool, HybridClock, TreeClock};
    use tc_trace::TraceBuilder;

    fn sample_detector(order: PartialOrderKind) -> IncrementalDetector<TreeClock> {
        let mut b = TraceBuilder::new();
        b.write(0, "x");
        b.read(1, "x");
        b.read(2, "x"); // concurrent reads: widens a history to Vector
        b.acquire(0, "m").write(0, "y").release(0, "m");
        b.fork(0, 3);
        b.write(3, "y");
        b.join(0, 3);
        let trace = b.finish();
        let mut d = IncrementalDetector::new(DetectorConfig::for_order(order));
        for e in &trace {
            d.feed(e).unwrap();
        }
        d
    }

    #[test]
    fn checkpoint_round_trips_bytes_for_every_order() {
        for order in PartialOrderKind::ALL {
            let d = sample_detector(order);
            let cp = d.checkpoint();
            let bytes = cp.to_bytes();
            let back = Checkpoint::from_bytes(&bytes).unwrap();
            assert_eq!(back, cp, "{order}");
            // Serialization is deterministic.
            assert_eq!(back.to_bytes(), bytes);
        }
    }

    #[test]
    fn restored_detector_continues_identically() {
        let d = sample_detector(PartialOrderKind::Hb);
        let cp = Checkpoint::from_bytes(&d.checkpoint().to_bytes()).unwrap();
        assert_eq!(cp.backend, "tree");
        // Restore into a *different* backend and keep racing on y.
        let mut restored =
            IncrementalDetector::<HybridClock>::from_checkpoint(&cp, ClockPool::new());
        let mut d = d;
        let mut b = TraceBuilder::new();
        b.write(4, "y"); // races with earlier writes in both sessions
        let e = b.finish()[0];
        let live_a: Vec<_> = d.feed(&e).unwrap().to_vec();
        let live_b: Vec<_> = restored.feed(&e).unwrap().to_vec();
        assert_eq!(live_a, live_b);
        assert_eq!(d.report(), restored.report());
        assert_eq!(
            d.timestamp_of(ThreadId::new(4)),
            restored.timestamp_of(ThreadId::new(4))
        );
    }

    #[test]
    fn recycling_checkpoint_round_trips_and_resumes_with_same_slots() {
        // Churn enough that the identity map holds retired entries and
        // a non-empty free queue at checkpoint time, then verify the
        // resumed session reuses exactly the same slots as the
        // uninterrupted one.
        let mut b = TraceBuilder::new();
        for wave in 0..4u32 {
            let u = wave + 1;
            b.fork(0, u).write(u, "x").join(0, u);
        }
        let first_half = b.finish();
        let config = DetectorConfig {
            recycle_slots: true,
            ..DetectorConfig::default()
        };
        let mut d = IncrementalDetector::<TreeClock>::new(config);
        for e in &first_half {
            d.feed(e).unwrap();
        }
        assert!(d.recycled_slots() > 0, "churn must have reused a slot");

        let cp = d.checkpoint();
        let bytes = cp.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.to_bytes(), bytes, "serialization is deterministic");
        assert!(back.identity.is_some(), "identity map must be serialized");
        assert!(back.config.recycle_slots);

        let mut restored = IncrementalDetector::<TreeClock>::from_checkpoint(&cp, ClockPool::new());
        let mut b = TraceBuilder::new();
        for wave in 0..3u32 {
            let u = wave + 5;
            b.fork(0, u).write(u, "x").join(0, u);
        }
        b.write(0, "x");
        for e in &b.finish() {
            let live_a: Vec<_> = d.feed(e).unwrap().to_vec();
            let live_b: Vec<_> = restored.feed(e).unwrap().to_vec();
            assert_eq!(live_a, live_b);
            assert_eq!(d.timestamp_of(e.tid), restored.timestamp_of(e.tid));
        }
        assert_eq!(d.report(), restored.report());
        assert_eq!(d.slot_width(), restored.slot_width());
        assert_eq!(d.recycled_slots(), restored.recycled_slots());
        // Both sessions end in the same identity state, so a second
        // checkpoint from each is byte-identical.
        assert_eq!(d.checkpoint().to_bytes(), restored.checkpoint().to_bytes());
    }

    #[test]
    fn corrupt_checkpoints_are_rejected_with_reasons() {
        let d = sample_detector(PartialOrderKind::Maz);
        let bytes = d.checkpoint().to_bytes();

        let e = Checkpoint::from_bytes(b"NOPE").unwrap_err();
        assert!(e.to_string().contains("magic"), "{e}");

        let mut bad = bytes.clone();
        bad[4] = 9; // version
        assert!(Checkpoint::from_bytes(&bad)
            .unwrap_err()
            .to_string()
            .contains("version"));

        let mut bad = bytes.clone();
        bad[5] = 7; // order tag
        assert!(Checkpoint::from_bytes(&bad)
            .unwrap_err()
            .to_string()
            .contains("order"));

        // Truncation is an I/O error.
        let e = Checkpoint::from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(e, CheckpointError::Io(_)));
    }
}
