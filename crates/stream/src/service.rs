//! The multi-client streaming service: `tcr serve`.
//!
//! A std-only TCP server (no async runtime — the container is offline
//! and the workspace vendors no executor) that shards concurrent
//! sessions across a fixed pool of worker threads. Each accepted
//! connection is one session, pinned round-robin to a worker; sessions
//! on different workers run fully in parallel, each with its own
//! independent [`Session`] (detector + validator + interner) — there is
//! no shared analysis state to contend on.
//!
//! ## Wire protocol
//!
//! Line-oriented text, one request per line. The first line must be
//!
//! ```text
//! open <order> <clock> [evict <n>] [no-retire]
//! ```
//!
//! answered with `ok session <id> order <order> clock <backend>`.
//! After that, every [`Session::handle_line`] command is available;
//! additionally `shutdown` stops the whole server (answered
//! `ok shutting-down`). Event lines are silent on success, so a client
//! can pipeline a whole trace and synchronize once with `poll` or
//! `stats`.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use tc_orders::PartialOrderKind;

use crate::detector::DetectorConfig;
use crate::session::{ClockChoice, Session};

/// Configuration of [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads — the number of session shards served in
    /// parallel.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
        }
    }
}

/// A running streaming service.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the service: one acceptor thread plus
    /// `config.workers` session shards.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let session_ids = Arc::new(AtomicU64::new(1));

        let worker_count = config.workers.max(1);
        let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(worker_count);
        let mut workers = Vec::with_capacity(worker_count);
        for shard in 0..worker_count {
            let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = mpsc::channel();
            senders.push(tx);
            let shutdown = Arc::clone(&shutdown);
            let session_ids = Arc::clone(&session_ids);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tcr-serve-worker-{shard}"))
                    .spawn(move || {
                        while let Ok(stream) = rx.recv() {
                            let id = session_ids.fetch_add(1, Ordering::Relaxed);
                            // One session at a time per shard: a
                            // session is pinned to its worker for its
                            // whole life.
                            let _ = handle_connection(stream, id, &shutdown, addr);
                            if shutdown.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                    })
                    .expect("spawning a worker thread cannot fail"),
            );
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let acceptor = std::thread::Builder::new()
            .name("tcr-serve-acceptor".to_owned())
            .spawn(move || {
                let mut next = 0usize;
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Round-robin sharding.
                    if senders[next % senders.len()].send(stream).is_err() {
                        break;
                    }
                    next += 1;
                }
            })
            .expect("spawning the acceptor thread cannot fail");

        Ok(Server {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a `shutdown` protocol command (or
    /// [`Self::shutdown`]) stopped the server.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Requests shutdown and wakes the acceptor.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until the acceptor and every worker exit. Call
    /// [`shutdown`](Self::shutdown) first (or let a client's `shutdown`
    /// command do it).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Workers exit when their channel sender (owned by the
        // acceptor) is dropped and the queue drains.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Parses the `open` line's arguments.
fn parse_open(parts: &[&str]) -> Result<(ClockChoice, DetectorConfig), String> {
    let order: PartialOrderKind = parts
        .first()
        .copied()
        .unwrap_or("hb")
        .parse()
        .map_err(|e: String| e)?;
    let clock: ClockChoice = parts.get(1).copied().unwrap_or("tc").parse()?;
    let mut config = DetectorConfig::for_order(order);
    let mut i = 2;
    while i < parts.len() {
        match parts[i] {
            "evict" => {
                let n = parts
                    .get(i + 1)
                    .ok_or("evict requires an interval")?
                    .parse::<u64>()
                    .map_err(|_| "invalid evict interval".to_owned())?;
                config.evict_every = Some(n.max(1));
                i += 2;
            }
            "no-retire" => {
                config.retire_on_join = false;
                i += 1;
            }
            other => return Err(format!("unknown open option `{other}`")),
        }
    }
    Ok((clock, config))
}

/// Flags shutdown and wakes the blocking acceptor with a throwaway
/// connection to its own address (same trick as [`Server::shutdown`] —
/// without the wake-up, a protocol-level `shutdown` would leave the
/// acceptor parked in `accept` forever).
fn request_shutdown(shutdown: &AtomicBool, addr: SocketAddr) {
    shutdown.store(true, Ordering::Relaxed);
    let _ = TcpStream::connect(addr);
}

/// Serves one connection: the `open` handshake, then the session loop.
fn handle_connection(
    stream: TcpStream,
    id: u64,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) -> std::io::Result<()> {
    let peer = stream.try_clone()?;
    let mut reader = BufReader::new(peer);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    let mut reply = String::new();

    // Handshake.
    let mut session = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client went away before opening
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = trimmed.split_whitespace().collect();
        match parts.split_first() {
            Some((&"open", rest)) => match parse_open(rest) {
                Ok((clock, config)) => {
                    let session = Session::new(id, clock, config);
                    writeln!(
                        writer,
                        "ok session {id} order {} clock {}",
                        config.order,
                        session.detector().backend_name()
                    )?;
                    writer.flush()?;
                    break session;
                }
                Err(e) => {
                    writeln!(writer, "err {e}")?;
                    writer.flush()?;
                }
            },
            Some((&"resume", [path])) => {
                match std::fs::File::open(path)
                    .map_err(|e| e.to_string())
                    .and_then(|f| {
                        crate::checkpoint::Checkpoint::read(BufReader::new(f))
                            .map_err(|e| e.to_string())
                    }) {
                    Ok(cp) => {
                        let session = Session::from_checkpoint(id, &cp);
                        writeln!(
                            writer,
                            "ok session {id} resumed events={} order {} clock {}",
                            cp.events,
                            cp.config.order,
                            session.detector().backend_name()
                        )?;
                        writer.flush()?;
                        break session;
                    }
                    Err(e) => {
                        writeln!(writer, "err cannot resume from {path}: {e}")?;
                        writer.flush()?;
                    }
                }
            }
            Some((&"shutdown", _)) => {
                request_shutdown(shutdown, addr);
                writeln!(writer, "ok shutting-down")?;
                writer.flush()?;
                return Ok(());
            }
            _ => {
                writeln!(writer, "err expected `open <order> <clock>`")?;
                writer.flush()?;
            }
        }
    };

    // Session loop.
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client disconnected
        }
        let trimmed = line.trim();
        if trimmed == "shutdown" {
            request_shutdown(shutdown, addr);
            writeln!(writer, "ok shutting-down")?;
            writer.flush()?;
            return Ok(());
        }
        reply.clear();
        let keep_going = session.handle_line(trimmed, &mut reply);
        if !reply.is_empty() {
            writer.write_all(reply.as_bytes())?;
            writer.flush()?;
        }
        if !keep_going {
            return Ok(());
        }
    }
}

// ---- the smoke driver ---------------------------------------------------

/// A minimal blocking protocol client (used by the smoke test and the
/// integration tests).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects and performs the `open` handshake. Arguments starting
    /// with `resume` are sent verbatim (the resume handshake);
    /// everything else is prefixed with `open `.
    ///
    /// # Errors
    ///
    /// I/O failures and protocol-level `err` replies, as strings.
    pub fn open(addr: SocketAddr, open_args: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut client = Client {
            reader,
            writer: BufWriter::new(stream),
        };
        let line = if open_args.starts_with("resume") {
            open_args.to_owned()
        } else {
            format!("open {open_args}")
        };
        let reply = client.handshake_request(&line)?;
        match reply.iter().rfind(|l| !l.is_empty()) {
            Some(l) if l.starts_with("ok session") => Ok(client),
            Some(l) => Err(format!("open failed: {l}")),
            None => Err("open got no reply".to_owned()),
        }
    }

    /// A request whose reply may be a single `err` line (handshake
    /// failures terminate the exchange without an `ok`).
    fn handshake_request(&mut self, line: &str) -> Result<Vec<String>, String> {
        self.send(line)?;
        self.writer.flush().map_err(|e| e.to_string())?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("server closed the connection during the handshake".to_owned());
        }
        Ok(vec![reply.trim_end().to_owned()])
    }

    /// Sends one line without waiting for a reply (event pipelining).
    ///
    /// # Errors
    ///
    /// I/O failures as strings.
    pub fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| e.to_string())
    }

    /// Sends a command and reads reply lines up to (and including) the
    /// `ok`/`err` terminator. Any `err` lines produced by earlier
    /// pipelined events surface here too.
    ///
    /// # Errors
    ///
    /// I/O failures as strings.
    pub fn request(&mut self, line: &str) -> Result<Vec<String>, String> {
        self.send(line)?;
        self.writer.flush().map_err(|e| e.to_string())?;
        let mut replies = Vec::new();
        loop {
            let mut reply = String::new();
            let n = self
                .reader
                .read_line(&mut reply)
                .map_err(|e| e.to_string())?;
            if n == 0 {
                return Err("server closed the connection mid-reply".to_owned());
            }
            let reply = reply.trim_end().to_owned();
            let terminal = reply.starts_with("ok");
            replies.push(reply);
            if terminal {
                return Ok(replies);
            }
        }
    }
}

/// The end-to-end smoke run behind `tcr serve --smoke`: starts a
/// server, drives two concurrent sessions over real sockets with
/// different orders/backends, asserts each session's reports equal the
/// batch detectors' on the same trace (what `tcr race` runs), and shuts
/// the server down cleanly.
///
/// # Errors
///
/// A description of the first divergence or protocol failure.
fn smoke_trace(seed: u64) -> tc_trace::Trace {
    tc_trace::gen::WorkloadSpec {
        threads: 4,
        locks: 2,
        vars: 3,
        events: 400,
        sync_ratio: 0.15,
        shared_fraction: 0.9,
        seed,
        ..tc_trace::gen::WorkloadSpec::default()
    }
    .generate()
}

/// Drives one smoke session over the wire and returns `(total, stored
/// race lines)`.
fn smoke_drive(
    addr: SocketAddr,
    order: &str,
    clock: &str,
    seed: u64,
) -> Result<(u64, Vec<String>), String> {
    use tc_trace::text_format;
    let trace = smoke_trace(seed);
    let mut client = Client::open(addr, &format!("{order} {clock}"))?;
    for line in text_format::to_text(&trace).lines() {
        client.send(line)?;
    }
    let replies = client.request("races")?;
    if let Some(err) = replies.iter().find(|l| l.starts_with("err")) {
        return Err(format!("session {order}/{clock}: {err}"));
    }
    let races: Vec<String> = replies
        .iter()
        .filter(|l| l.starts_with("race "))
        .map(|l| l["race ".len()..].to_owned())
        .collect();
    let ok = replies.last().expect("request returns the terminator");
    let total: u64 = ok
        .split_whitespace()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("malformed races terminator `{ok}`"))?;
    let stats = client.request("stats")?;
    let stats_line = stats.last().expect("terminator");
    if !stats_line.contains(&format!("events={}", trace.len())) {
        return Err(format!(
            "session {order}/{clock}: expected events={} in `{stats_line}`",
            trace.len()
        ));
    }
    client.request("close")?;
    Ok((total, races))
}

/// The end-to-end smoke run behind `tcr serve --smoke`: starts a
/// server, drives two concurrent sessions over real sockets with
/// different orders/backends, asserts each session's reports equal the
/// batch detectors' on the same trace (what `tcr race` runs), and shuts
/// the server down cleanly.
///
/// # Errors
///
/// A description of the first divergence or protocol failure.
pub fn smoke() -> Result<(), String> {
    use tc_analysis::{HbRaceDetector, ShbRaceDetector};
    use tc_core::{HybridClock, TreeClock};

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
    })
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = server.local_addr();

    // Two concurrent sessions on the two worker shards.
    let h1 = std::thread::spawn(move || smoke_drive(addr, "hb", "tc", 11));
    let h2 = std::thread::spawn(move || smoke_drive(addr, "shb", "hc", 12));
    let (total_hb, races_hb) = h1.join().map_err(|_| "hb client panicked")??;
    let (total_shb, races_shb) = h2.join().map_err(|_| "shb client panicked")??;

    // The reference runs: exactly what `tcr race` computes on the
    // rendered trace file the session was fed (parsing re-interns ids
    // in first-appearance order, exactly like the session did).
    let reparse = |seed: u64| {
        tc_trace::text_format::parse_text(&tc_trace::text_format::to_text(&smoke_trace(seed)))
            .expect("rendered traces re-parse")
    };
    let trace_hb = reparse(11);
    let batch_hb = HbRaceDetector::<TreeClock>::new(&trace_hb).run(&trace_hb);
    let trace_shb = reparse(12);
    let batch_shb = ShbRaceDetector::<HybridClock>::new(&trace_shb).run(&trace_shb);

    for (label, total, races, batch) in [
        ("hb/tc", total_hb, &races_hb, &batch_hb),
        ("shb/hc", total_shb, &races_shb, &batch_shb),
    ] {
        if total != batch.total {
            return Err(format!(
                "{label}: served {total} race(s), batch found {}",
                batch.total
            ));
        }
        let expected: Vec<String> = batch.races.iter().map(|r| r.to_string()).collect();
        if *races != expected {
            return Err(format!(
                "{label}: served race list diverges from the batch detector \
                 ({} vs {} stored)",
                races.len(),
                expected.len()
            ));
        }
    }

    // Clean shutdown through the protocol.
    let mut admin = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    writeln!(admin, "shutdown").map_err(|e| e.to_string())?;
    let mut reply = String::new();
    BufReader::new(admin)
        .read_line(&mut reply)
        .map_err(|e| e.to_string())?;
    if !reply.starts_with("ok shutting-down") {
        return Err(format!("shutdown got `{}`", reply.trim()));
    }
    server.shutdown();
    server.join();
    Ok(())
}
