//! The multi-client streaming service: `tcr serve`.
//!
//! A std-only TCP server (no async runtime — the container is offline
//! and the workspace vendors no executor) built as a **nonblocking
//! ingest core over a work-stealing worker pool**:
//!
//! - One **I/O thread** owns the listener and every connection in
//!   nonblocking mode, running a poll-style readiness loop: it accepts,
//!   reads, splits the byte stream into messages (text lines or binary
//!   frames, sniffed by first byte), answers handshake lines inline,
//!   and enqueues everything else onto the addressed session's work
//!   queue. Shutdown is a flag the loop observes on its next pass — no
//!   blocking `accept` to kick awake, no throwaway connections.
//! - A pool of **workers** drains those queues. A session is *checked
//!   out* by whichever worker gets to it first (own deque, then the
//!   shared injector, then stealing from siblings), processed for its
//!   whole pending batch, and checked back in. Sessions are plain
//!   `Send` values — nothing pins them to a shard, so one hot session
//!   cannot starve its neighbors and idle workers take work wherever
//!   it piles up. Per-session order is preserved: a session is never
//!   checked out by two workers at once, and its queue drains FIFO.
//!
//! ## Wire protocols
//!
//! Both protocols are served on one port; every message is sniffed by
//! its first byte (a binary frame starts with `0xF7`, which no ASCII
//! text line can).
//!
//! **Text** — line-oriented, one request per line, as in
//! [`Session::handle_line`]. A connection binds its bare event lines to
//! the most recent session it opened:
//!
//! ```text
//! open <order> <clock> [evict <n>] [no-retire] [recycle]
//! ```
//!
//! answered with `ok session <id> order <order> clock <backend>`;
//! `resume <path>` restores a checkpointed session; `use <id>` rebinds
//! the connection to a session it opened earlier (how a fan-in client
//! synchronizes each of its sessions in turn); `shutdown` stops the
//! whole server (answered `ok shutting-down`). Event lines are
//! silent on success, so a client can pipeline a whole trace and
//! synchronize once with `poll` or `stats`.
//!
//! **Binary** — length-prefixed [wire frames](tc_trace::wire), each
//! carrying a batch of dense-id event records for an explicit session
//! id (so one connection can fan events into many sessions). Open a
//! session with a text `open` line, read the id from the reply, then
//! stream frames; text commands (`races`, `stats`, `close`) remain
//! available on the same connection for synchronization. Frames are
//! silent on success and report rejected events as indexed `err at
//! <i>: ...` lines; batching amortizes the syscall, the sniff and the
//! queue hop over hundreds of events, which is where the binary path's
//! throughput comes from (see the README's service section for
//! guidance — frames of 256–1024 events are the sweet spot).

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use tc_orders::PartialOrderKind;
use tc_telemetry::{labeled, Counter, Histogram, Registry};
use tc_trace::wire::{self, WireError, WireMessage, FRAME_MAGIC, MULTI_MAGIC};
use tc_trace::Event;

use crate::detector::DetectorConfig;
use crate::metrics::{ServiceMetrics, SharedMetrics};
use crate::parallel::{EpochPool, DEFAULT_MIN_PARALLEL_FRAME};
use crate::session::{ClockChoice, Session};

/// Configuration of [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads draining session work queues.
    pub workers: usize,
    /// Epoch workers shared by every session for intra-session
    /// parallel frame detection (0 disables the parallel path; each
    /// session then feeds frames sequentially).
    pub parallel: usize,
    /// Record telemetry (the default). `false` swaps in the null
    /// recorder: every metric handle is inert and the `metrics`
    /// command replies with an empty exposition — the configuration
    /// the overhead benchmark measures against.
    pub telemetry: bool,
    /// Shared-secret admin token. When set, `shutdown` (and the
    /// cluster-admin commands of `serve --cluster`) require a prior
    /// `auth <token>` on the same connection; tokens are compared in
    /// constant time and rejected attempts are counted under
    /// `tc_wire_errors_total{kind="auth"}`.
    pub auth: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            parallel: 0,
            telemetry: true,
            auth: None,
        }
    }
}

/// Compares two byte strings in time independent of where they first
/// differ (the admin-token comparison — a timing oracle must not leak
/// the shared secret one byte at a time). Length is folded into the
/// accumulator rather than short-circuited.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = usize::from(*a.get(i).unwrap_or(&0));
        let y = usize::from(*b.get(i).unwrap_or(&0));
        diff |= x ^ y;
    }
    diff == 0
}

/// Longest text line the server buffers before declaring the
/// connection broken (a missing newline must not buffer unboundedly).
const MAX_LINE_LEN: usize = 1 << 20;

/// Idle poll interval of the I/O loop (and the bound on how stale a
/// shutdown request can go unnoticed).
const IDLE_POLL: Duration = Duration::from_micros(500);

/// How long an idle worker sleeps between work scans (wakeups normally
/// arrive via the condvar; the timeout only bounds steal latency).
const WORKER_PARK: Duration = Duration::from_millis(20);

/// One unit of session work, queued in arrival order.
enum ItemKind {
    /// A block of complete text protocol lines (newline separated).
    Text(String),
    /// A decoded binary frame's event batch, tagged with the wire kind
    /// it arrived in (`"frame"` for `0xF7`, `"multi"` for `0xF6`) so
    /// the per-wire-kind handling histograms can tell them apart.
    Frame(Vec<Event>, &'static str),
    /// A pre-formatted reply to forward verbatim (used to keep
    /// handshake replies ordered behind in-flight work).
    Write(String),
    /// Fold this session's counters into a `stats-all` aggregation.
    Stats(StatsTicket),
    /// Tear the session down (its home connection went away).
    Close,
}

/// A `stats-all` aggregation in flight. The I/O thread queues one
/// [`ItemKind::Stats`] per session the connection opened; each rides
/// *behind* that session's pending frames, so the aggregate reflects
/// everything sent before the `stats-all` line — the fan-in client's
/// single synchronization point. Whichever worker folds the last
/// session in writes the one reply.
struct AggregateStats {
    remaining: AtomicUsize,
    sessions: usize,
    events: AtomicU64,
    rejected: AtomicU64,
    races: AtomicU64,
    recycled: AtomicU64,
    /// Summed per-session peak clock footprints: the fan-in client's
    /// upper bound on what its sessions cost the server at their worst.
    peak_clock_bytes: AtomicU64,
    /// Summed live (un-retired, un-recycled) thread slots.
    live_threads: AtomicU64,
}

impl AggregateStats {
    fn new(sessions: usize) -> AggregateStats {
        AggregateStats {
            remaining: AtomicUsize::new(sessions),
            sessions,
            events: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            races: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            peak_clock_bytes: AtomicU64::new(0),
            live_threads: AtomicU64::new(0),
        }
    }

    /// Adds one session's counters; `true` when this was the last
    /// outstanding session and the reply must be written.
    #[allow(clippy::too_many_arguments)]
    fn fold(
        &self,
        events: u64,
        rejected: u64,
        races: u64,
        recycled: u64,
        peak_clock_bytes: u64,
        live_threads: u64,
    ) -> bool {
        self.events.fetch_add(events, Ordering::Relaxed);
        self.rejected.fetch_add(rejected, Ordering::Relaxed);
        self.races.fetch_add(races, Ordering::Relaxed);
        self.recycled.fetch_add(recycled, Ordering::Relaxed);
        self.peak_clock_bytes
            .fetch_add(peak_clock_bytes, Ordering::Relaxed);
        self.live_threads.fetch_add(live_threads, Ordering::Relaxed);
        self.remaining.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// One session vanished before folding (closed mid-aggregation);
    /// `true` when that decrement was the last one.
    fn skip(&self) -> bool {
        self.remaining.fetch_sub(1, Ordering::AcqRel) == 1
    }

    fn render(&self) -> String {
        format!(
            "ok stats-all sessions={} events={} rejected={} races={} recycled_slots={} \
             peak_clock_bytes={} live_threads={}\n",
            self.sessions,
            self.events.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
            self.races.load(Ordering::Relaxed),
            self.recycled.load(Ordering::Relaxed),
            self.peak_clock_bytes.load(Ordering::Relaxed),
            self.live_threads.load(Ordering::Relaxed),
        )
    }
}

/// One session's share of a `stats-all` aggregation. Folding marks the
/// ticket spent; an *unspent* ticket dropped on any path — its session
/// closed before the item ran, the enqueue failed, a worker discarded
/// the queue tail after `close` — still decrements in `Drop`, so the
/// client blocking on the single reply can never hang.
struct StatsTicket {
    agg: Arc<AggregateStats>,
    conn: Arc<ConnShared>,
    folded: bool,
}

impl StatsTicket {
    fn fold(
        &mut self,
        events: u64,
        rejected: u64,
        races: u64,
        recycled: u64,
        peak_clock_bytes: u64,
        live_threads: u64,
    ) {
        self.folded = true;
        if self.agg.fold(
            events,
            rejected,
            races,
            recycled,
            peak_clock_bytes,
            live_threads,
        ) {
            let _ = self.conn.write_reply(self.agg.render().as_bytes());
        }
    }
}

impl Drop for StatsTicket {
    fn drop(&mut self) {
        if !self.folded && self.agg.skip() {
            let _ = self.conn.write_reply(self.agg.render().as_bytes());
        }
    }
}

struct WorkItem {
    kind: ItemKind,
    /// Where replies go; `None` for connection-less teardown.
    conn: Option<Arc<ConnShared>>,
}

/// A session slot in the registry.
struct SessionSlot {
    /// The session itself; `None` while checked out by a worker.
    session: Option<Box<Session>>,
    /// Queued work, FIFO.
    pending: VecDeque<WorkItem>,
    /// `true` while the session id sits in some worker queue or a
    /// worker is processing it — the single-consumer guarantee.
    scheduled: bool,
}

/// The write half of a connection, shared between the I/O thread
/// (handshake replies) and the workers (session replies).
struct ConnShared {
    writer: Mutex<TcpStream>,
    /// Set by a worker after `close`; the I/O thread drops the
    /// connection on its next pass.
    closing: AtomicBool,
}

impl ConnShared {
    /// Writes and flushes, riding out `WouldBlock` (the handle shares
    /// the socket's nonblocking flag). Returns `Err` only for real
    /// failures — a disappearing peer is not an error worth acting on.
    fn write_reply(&self, bytes: &[u8]) -> io::Result<()> {
        let mut w = self.writer.lock().expect("conn writer lock");
        let mut buf = bytes;
        while !buf.is_empty() {
            match w.write(buf) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => buf = &buf[n..],
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// State shared by the I/O thread, the workers and the [`Server`]
/// handle.
struct ServiceShared {
    registry: Mutex<HashMap<u64, SessionSlot>>,
    /// The shared work queue the I/O thread feeds.
    injector: Mutex<VecDeque<u64>>,
    /// Per-worker local deques (push/pop at the back by the owner,
    /// stolen from the front by siblings).
    locals: Vec<Mutex<VecDeque<u64>>>,
    /// Parked-worker wakeup, paired with `injector`.
    work_cv: Condvar,
    shutdown: AtomicBool,
    next_session: AtomicU64,
    /// The epoch-worker pool every session shares for intra-frame
    /// parallel detection; `None` when `ServeConfig::parallel == 0`.
    epoch_workers: Option<Arc<EpochPool>>,
    /// The server's telemetry bundle (inert when
    /// `ServeConfig::telemetry` is off).
    metrics: SharedMetrics,
    /// The admin token `shutdown` requires (when set).
    auth: Option<String>,
}

impl ServiceShared {
    /// Queues one work item for `session`, scheduling the session into
    /// the injector if no worker currently owns it. Returns `false`
    /// when the session does not exist.
    fn enqueue(&self, session: u64, item: WorkItem) -> bool {
        let mut reg = self.registry.lock().expect("registry lock");
        let Some(slot) = reg.get_mut(&session) else {
            return false;
        };
        slot.pending.push_back(item);
        self.metrics
            .queue_depth_high_water
            .record_max(slot.pending.len() as u64);
        let newly = !slot.scheduled;
        slot.scheduled = true;
        drop(reg);
        if newly {
            self.injector
                .lock()
                .expect("injector lock")
                .push_back(session);
            self.work_cv.notify_one();
        }
        true
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.work_cv.notify_all();
    }
}

/// A running streaming service.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServiceShared>,
    io: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the service: the nonblocking I/O thread plus
    /// `config.workers` work-stealing session workers.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let worker_count = config.workers.max(1);
        let registry = if config.telemetry {
            Registry::new()
        } else {
            Registry::null()
        };
        let shared = Arc::new(ServiceShared {
            registry: Mutex::new(HashMap::new()),
            injector: Mutex::new(VecDeque::new()),
            locals: (0..worker_count)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            epoch_workers: (config.parallel > 0).then(|| Arc::new(EpochPool::new(config.parallel))),
            metrics: Arc::new(ServiceMetrics::new(registry, worker_count)),
            auth: config.auth.clone(),
        });

        let mut workers = Vec::with_capacity(worker_count);
        for me in 0..worker_count {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tcr-serve-worker-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawning a worker thread cannot fail"),
            );
        }

        let io_shared = Arc::clone(&shared);
        let io = std::thread::Builder::new()
            .name("tcr-serve-io".to_owned())
            .spawn(move || io_loop(listener, &io_shared))
            .expect("spawning the I/O thread cannot fail");

        Ok(Server {
            addr,
            shared,
            io: Some(io),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's telemetry bundle — what the `metrics` protocol
    /// command scrapes. Inert when started with `telemetry: false`.
    pub fn metrics(&self) -> SharedMetrics {
        Arc::clone(&self.shared.metrics)
    }

    /// `true` once a `shutdown` protocol command (or
    /// [`Self::shutdown`]) stopped the server.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// Requests shutdown. The nonblocking I/O loop observes the flag on
    /// its next poll pass and the condvar wakes every parked worker —
    /// clients may still be connected; their sockets are simply
    /// dropped.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until the I/O thread and every worker exit. Call
    /// [`shutdown`](Self::shutdown) first (or let a client's `shutdown`
    /// command do it).
    pub fn join(mut self) {
        if let Some(io) = self.io.take() {
            let _ = io.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

// ---- the worker pool ----------------------------------------------------

/// One worker's private metric handles, registered at thread start so
/// the drain loop never does a name lookup. The histograms are this
/// worker's *shards* — the registry merges them at scrape time.
struct WorkerMetrics {
    drained: Counter,
    stolen: Counter,
    reply_us: Histogram,
    text_us: Histogram,
    frame_us: Histogram,
    multi_us: Histogram,
}

impl WorkerMetrics {
    fn new(m: &ServiceMetrics, me: usize) -> WorkerMetrics {
        let reg = m.registry();
        let id = me.to_string();
        WorkerMetrics {
            drained: reg.counter(&labeled("tc_worker_drained_total", &[("worker", &id)])),
            stolen: reg.counter(&labeled("tc_worker_steals_total", &[("worker", &id)])),
            reply_us: reg.histogram("tc_reply_us"),
            text_us: reg.histogram(&labeled("tc_ingest_handle_us", &[("wire", "text")])),
            frame_us: reg.histogram(&labeled("tc_ingest_handle_us", &[("wire", "frame")])),
            multi_us: reg.histogram(&labeled("tc_ingest_handle_us", &[("wire", "multi")])),
        }
    }
}

/// Pops the next session to serve: own deque, then the injector, then
/// stealing the oldest entry from a sibling.
fn find_work(shared: &ServiceShared, me: usize, stolen: &Counter) -> Option<u64> {
    loop {
        if let Some(id) = shared.locals[me].lock().expect("local lock").pop_back() {
            return Some(id);
        }
        if let Some(id) = shared.injector.lock().expect("injector lock").pop_front() {
            return Some(id);
        }
        for (i, other) in shared.locals.iter().enumerate() {
            if i != me {
                if let Some(id) = other.lock().expect("steal lock").pop_front() {
                    stolen.inc();
                    return Some(id);
                }
            }
        }
        let guard = shared.injector.lock().expect("injector lock");
        if !guard.is_empty() {
            continue; // an enqueue raced our scan
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            return None;
        }
        let _ = shared
            .work_cv
            .wait_timeout(guard, WORKER_PARK)
            .expect("worker park");
    }
}

/// One worker: check a session out, drain its queue, check it back in
/// (re-queueing locally if work arrived meanwhile).
fn worker_loop(shared: &ServiceShared, me: usize) {
    let wm = WorkerMetrics::new(&shared.metrics, me);
    while let Some(id) = find_work(shared, me, &wm.stolen) {
        let (session, items) = {
            let mut reg = shared.registry.lock().expect("registry lock");
            match reg.get_mut(&id) {
                Some(slot) => (slot.session.take(), std::mem::take(&mut slot.pending)),
                None => continue,
            }
        };
        let Some(mut session) = session else { continue };
        wm.drained.inc();

        let mut closed = false;
        for item in items {
            process_item(&mut session, item, &mut closed, &shared.metrics, &wm);
            if closed {
                break; // the rest of the queue dies with the session
            }
        }

        let mut reg = shared.registry.lock().expect("registry lock");
        if closed {
            reg.remove(&id);
        } else if let Some(slot) = reg.get_mut(&id) {
            slot.session = Some(session);
            if slot.pending.is_empty() {
                slot.scheduled = false;
            } else {
                // Refilled while we worked: keep ownership of the
                // next round on our own deque.
                drop(reg);
                shared.locals[me].lock().expect("local lock").push_back(id);
                shared.work_cv.notify_one();
            }
        }
    }
}

/// Executes one work item against a checked-out session, accounting it
/// to the service counters: the events/rejected/races counters advance
/// by this item's deltas *before* the reply is written, so a `metrics`
/// scrape agrees with any `stats` reply the client has already read.
fn process_item(
    session: &mut Session,
    item: WorkItem,
    closed: &mut bool,
    m: &ServiceMetrics,
    wm: &WorkerMetrics,
) {
    let t_reply = wm.reply_us.begin();
    let before_events = session.detector().events();
    let before_rejected = session.rejected();
    let before_races = session.detector().report().total;
    let mut out = String::new();
    match item.kind {
        ItemKind::Text(block) => {
            let t = wm.text_us.begin();
            for line in block.lines() {
                if !session.handle_line(line, &mut out) {
                    *closed = true;
                    break;
                }
            }
            wm.text_us.end(t);
        }
        ItemKind::Frame(events, wire_kind) => {
            let h = if wire_kind == "multi" {
                &wm.multi_us
            } else {
                &wm.frame_us
            };
            let t = h.begin();
            session.handle_frame(&events, &mut out);
            h.end(t);
        }
        ItemKind::Write(reply) => out = reply,
        ItemKind::Stats(mut ticket) => ticket.fold(
            session.detector().events(),
            session.rejected(),
            session.detector().report().total,
            session.detector().recycled_slots(),
            session.detector().peak_clock_bytes() as u64,
            session.detector().live_threads() as u64,
        ),
        ItemKind::Close => *closed = true,
    }
    if !m.registry().is_null() {
        let d = session.detector();
        m.events.add(d.events().wrapping_sub(before_events));
        m.rejected
            .add(session.rejected().wrapping_sub(before_rejected));
        m.races.add(d.report().total.wrapping_sub(before_races));
        m.peak_clock_bytes.record_max(d.peak_clock_bytes() as u64);
        m.live_threads_high_water
            .record_max(d.live_threads() as u64);
        m.pool_bytes.record_max(d.pool_bytes() as u64);
    }
    if let Some(conn) = &item.conn {
        if !out.is_empty() && conn.write_reply(out.as_bytes()).is_err() {
            // The peer is gone; nothing to do — its connection close
            // will reap the session.
        }
        if *closed {
            conn.closing.store(true, Ordering::Relaxed);
        }
    }
    wm.reply_us.end(t_reply);
}

// ---- the I/O thread -----------------------------------------------------

/// One connection owned by the I/O loop.
struct Conn {
    reader: TcpStream,
    shared: Arc<ConnShared>,
    /// Unparsed bytes (partial lines / partial frames).
    buf: Vec<u8>,
    /// The session bare text lines route to (the connection's most
    /// recent `open`/`resume`).
    current: Option<u64>,
    /// Every session this connection opened — reaped when it closes.
    opened: Vec<u64>,
    /// `true` once an `auth <token>` on this connection matched the
    /// configured admin token (trivially true when none is required).
    authed: bool,
}

/// The nonblocking readiness loop: accept, read, split into messages,
/// route. Runs until the shutdown flag is raised.
fn io_loop(listener: TcpListener, shared: &ServiceShared) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            // Drop the listener and every connection; workers drain
            // on their own via the flag.
            shared.work_cv.notify_all();
            return;
        }

        let mut progressed = false;

        // Accept every pending connection.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let Ok(writer) = stream.try_clone() else {
                        continue;
                    };
                    conns.push(Conn {
                        reader: stream,
                        shared: Arc::new(ConnShared {
                            writer: Mutex::new(writer),
                            closing: AtomicBool::new(false),
                        }),
                        buf: Vec::new(),
                        current: None,
                        opened: Vec::new(),
                        authed: false,
                    });
                    shared.metrics.conns_accepted.inc();
                    shared.metrics.conns_active.add(1);
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }

        // Service every connection.
        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];
            let mut drop_conn = conn.shared.closing.load(Ordering::Relaxed);
            while !drop_conn {
                match conn.reader.read(&mut scratch) {
                    Ok(0) => {
                        drop_conn = true;
                    }
                    Ok(n) => {
                        progressed = true;
                        conn.buf.extend_from_slice(&scratch[..n]);
                        if !parse_messages(conn, shared) {
                            drop_conn = true;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        drop_conn = true;
                    }
                }
            }
            if drop_conn || conn.shared.closing.load(Ordering::Relaxed) {
                // Reap every session this connection opened, in queue
                // order behind any in-flight work.
                for id in conns[i].opened.clone() {
                    shared.enqueue(
                        id,
                        WorkItem {
                            kind: ItemKind::Close,
                            conn: None,
                        },
                    );
                }
                conns.swap_remove(i);
                shared.metrics.conns_active.sub(1);
                progressed = true;
            } else {
                i += 1;
            }
        }

        if !progressed {
            std::thread::sleep(IDLE_POLL);
        }
    }
}

/// Splits a connection's buffered bytes into messages and routes them.
/// Returns `false` when the connection must be dropped (corrupt frame,
/// unbounded line).
fn parse_messages(conn: &mut Conn, shared: &ServiceShared) -> bool {
    let mut consumed = 0usize;
    // Consecutive event/command lines are batched into one work item.
    let mut text_block = String::new();
    let mut ok = true;

    loop {
        let buf = &conn.buf[consumed..];
        if buf.is_empty() {
            break;
        }
        if buf[0] == FRAME_MAGIC || buf[0] == MULTI_MAGIC {
            flush_text(conn, shared, &mut text_block);
            match wire::try_message(buf) {
                Ok(None) => break, // partial frame: wait for more bytes
                Ok(Some((message, used))) => {
                    consumed += used;
                    let m = &shared.metrics;
                    let (frames, wire_kind) = match message {
                        WireMessage::Single(frame) => {
                            m.msgs_frame.inc();
                            m.batch_frame.record(frame.events.len() as u64);
                            (vec![frame], "frame")
                        }
                        WireMessage::Multi(frames) => {
                            m.msgs_multi.inc();
                            m.batch_multi
                                .record(frames.iter().map(|f| f.events.len() as u64).sum());
                            (frames, "multi")
                        }
                    };
                    for frame in frames {
                        let delivered = shared.enqueue(
                            frame.session,
                            WorkItem {
                                kind: ItemKind::Frame(frame.events, wire_kind),
                                conn: Some(Arc::clone(&conn.shared)),
                            },
                        );
                        if !delivered {
                            m.wire_err_unknown_session.inc();
                            m.wire_errors_total.inc();
                            let _ = conn.shared.write_reply(
                                format!("err unknown session {}\n", frame.session).as_bytes(),
                            );
                        }
                    }
                }
                Err(e) => {
                    // `Oversize` covers both the encode-side variant and
                    // the decoder's length-cap rejection; everything
                    // else a decoder can report is a corrupt payload.
                    let kind = match &e {
                        WireError::Oversize { .. } => &shared.metrics.wire_err_oversize,
                        WireError::Corrupt(msg) if msg.contains("exceeds") => {
                            &shared.metrics.wire_err_oversize
                        }
                        _ => &shared.metrics.wire_err_corrupt,
                    };
                    kind.inc();
                    shared.metrics.wire_errors_total.inc();
                    let _ = conn.shared.write_reply(format!("err {e}\n").as_bytes());
                    ok = false;
                    break;
                }
            }
        } else {
            let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
                if buf.len() > MAX_LINE_LEN {
                    shared.metrics.wire_err_line_overflow.inc();
                    shared.metrics.wire_errors_total.inc();
                    let _ = conn.shared.write_reply(b"err line exceeds the 1 MiB cap\n");
                    ok = false;
                }
                break; // partial line: wait for more bytes
            };
            let line = String::from_utf8_lossy(&buf[..nl]).into_owned();
            consumed += nl + 1;
            let trimmed = line.trim();
            if is_handshake(trimmed) {
                flush_text(conn, shared, &mut text_block);
                if !handle_handshake(conn, shared, trimmed) {
                    ok = false;
                    break;
                }
            } else if conn.current.is_some() {
                text_block.push_str(&line);
                text_block.push('\n');
            } else if !trimmed.is_empty() && !trimmed.starts_with('#') {
                let _ = conn
                    .shared
                    .write_reply(b"err expected `open <order> <clock>`\n");
            }
        }
    }

    flush_text(conn, shared, &mut text_block);
    conn.buf.drain(..consumed);
    ok
}

/// Queues an accumulated text block onto the connection's current
/// session.
fn flush_text(conn: &Conn, shared: &ServiceShared, block: &mut String) {
    if block.is_empty() {
        return;
    }
    let text = std::mem::take(block);
    if let Some(id) = conn.current {
        if !shared.metrics.registry().is_null() {
            shared.metrics.msgs_text.inc();
            shared
                .metrics
                .batch_text
                .record(text.bytes().filter(|&b| b == b'\n').count() as u64);
        }
        if !shared.enqueue(
            id,
            WorkItem {
                kind: ItemKind::Text(text),
                conn: Some(Arc::clone(&conn.shared)),
            },
        ) {
            shared.metrics.wire_err_unknown_session.inc();
            shared.metrics.wire_errors_total.inc();
            let _ = conn
                .shared
                .write_reply(format!("err session {id} is gone\n").as_bytes());
        }
    }
}

/// `true` for the lines the I/O thread answers itself.
fn is_handshake(line: &str) -> bool {
    line == "shutdown"
        || line == "stats-all"
        || line == "metrics"
        || line == "auth"
        || line.starts_with("auth ")
        || line.starts_with("open ")
        || line == "open"
        || line.starts_with("resume ")
        || line.starts_with("use ")
}

/// Answers a handshake line inline: `open`/`resume` create a session
/// and rebind the connection to it, `shutdown` stops the server.
/// Replies route behind any in-flight work of the previously bound
/// session so a pipelining client reads them in order.
fn handle_handshake(conn: &mut Conn, shared: &ServiceShared, line: &str) -> bool {
    // Replies are ordered behind the session bound *before* this line
    // rebinds anything — that is whose work a pipelining client still
    // has in flight.
    let prev = conn.current;
    if line == "auth" || line.starts_with("auth ") {
        let token = line.strip_prefix("auth").expect("checked prefix").trim();
        let reply = match &shared.auth {
            Some(required) if !constant_time_eq(required.as_bytes(), token.as_bytes()) => {
                shared.metrics.wire_err_auth.inc();
                shared.metrics.wire_errors_total.inc();
                "err bad auth token\n"
            }
            // A matching token — or no token required at all, in which
            // case `auth` is a harmless no-op ack.
            _ => {
                conn.authed = true;
                "ok authed\n"
            }
        };
        reply_ordered(conn, shared, prev, reply.to_owned());
        return true;
    }
    if line == "shutdown" {
        if shared.auth.is_some() && !conn.authed {
            shared.metrics.wire_err_auth.inc();
            shared.metrics.wire_errors_total.inc();
            reply_ordered(
                conn,
                shared,
                prev,
                "err auth required for shutdown\n".to_owned(),
            );
            return true;
        }
        reply_ordered(conn, shared, prev, "ok shutting-down\n".to_owned());
        shared.request_shutdown();
        return true;
    }
    if line == "stats-all" {
        handle_stats_all(conn, shared);
        return true;
    }
    if line == "metrics" {
        // The whole Prometheus-style exposition rides as one ordered
        // reply; its `# EOF` terminator tells the scraper (nc, the CI
        // cross-check, `Client::metrics_scrape`) where it ends.
        reply_ordered(conn, shared, prev, shared.metrics.render_prometheus());
        return true;
    }
    let parts: Vec<&str> = line.split_whitespace().collect();
    let reply = match parts.split_first() {
        Some((&"open", rest)) => match parse_open(rest) {
            Ok((clock, config)) => {
                let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
                let session = Session::new(id, clock, config);
                let reply = format!(
                    "ok session {id} order {} clock {}\n",
                    config.order,
                    session.detector().backend_name()
                );
                register(conn, shared, id, session);
                reply
            }
            Err(e) => format!("err {e}\n"),
        },
        Some((&"use", [id])) => match id.parse::<u64>() {
            Ok(id)
                if shared
                    .registry
                    .lock()
                    .expect("registry lock")
                    .contains_key(&id) =>
            {
                let reply = format!("ok session {id} attached\n");
                conn.current = Some(id);
                reply
            }
            Ok(id) => format!("err unknown session {id}\n"),
            Err(_) => "err `use` takes a session id\n".to_owned(),
        },
        Some((&"resume", [path])) => {
            match std::fs::File::open(path)
                .map_err(|e| e.to_string())
                .and_then(|f| {
                    crate::checkpoint::Checkpoint::read(BufReader::new(f))
                        .map_err(|e| e.to_string())
                }) {
                Ok(cp) => {
                    let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
                    let session = Session::from_checkpoint(id, &cp);
                    let reply = format!(
                        "ok session {id} resumed events={} order {} clock {}\n",
                        cp.events,
                        cp.config.order,
                        session.detector().backend_name()
                    );
                    register(conn, shared, id, session);
                    reply
                }
                Err(e) => format!("err cannot resume from {path}: {e}\n"),
            }
        }
        _ => "err expected `open <order> <clock>`\n".to_owned(),
    };
    reply_ordered(conn, shared, prev, reply);
    true
}

/// `stats-all`: one aggregated reply over every session this
/// connection opened. Each session folds its counters in *behind* its
/// own pending work, so the aggregate reflects everything the client
/// sent before this line — a fan-in driver synchronizes all of its
/// sessions in a single round-trip instead of one `use <id>` + `stats`
/// exchange per session.
fn handle_stats_all(conn: &Conn, shared: &ServiceShared) {
    let live: Vec<u64> = {
        let reg = shared.registry.lock().expect("registry lock");
        conn.opened
            .iter()
            .copied()
            .filter(|id| reg.contains_key(id))
            .collect()
    };
    if live.is_empty() {
        let _ = conn
            .shared
            .write_reply(AggregateStats::new(0).render().as_bytes());
        return;
    }
    let agg = Arc::new(AggregateStats::new(live.len()));
    for id in live {
        // A failed enqueue (the session raced a close) drops the
        // ticket, which decrements in `Drop`.
        shared.enqueue(
            id,
            WorkItem {
                kind: ItemKind::Stats(StatsTicket {
                    agg: Arc::clone(&agg),
                    conn: Arc::clone(&conn.shared),
                    folded: false,
                }),
                conn: None,
            },
        );
    }
}

/// Inserts a fresh session into the registry and binds the connection
/// to it.
fn register(conn: &mut Conn, shared: &ServiceShared, id: u64, mut session: Session) {
    if let Some(pool) = &shared.epoch_workers {
        session.enable_parallel(Arc::clone(pool), DEFAULT_MIN_PARALLEL_FRAME);
        session.set_phase_metrics(shared.metrics.phases().clone());
    }
    session.set_server_metrics(Arc::clone(&shared.metrics));
    shared.metrics.sessions_opened.inc();
    shared.registry.lock().expect("registry lock").insert(
        id,
        SessionSlot {
            session: Some(Box::new(session)),
            pending: VecDeque::new(),
            scheduled: false,
        },
    );
    conn.current = Some(id);
    conn.opened.push(id);
}

/// Writes a handshake reply, routing it through the previously bound
/// session's queue when that session still has work in flight (so
/// replies reach the client in request order).
fn reply_ordered(conn: &Conn, shared: &ServiceShared, prev: Option<u64>, reply: String) {
    if let Some(prev) = prev {
        let mut reg = shared.registry.lock().expect("registry lock");
        // `scheduled` is only cleared after a worker finished writing
        // every reply of its batch, so checking it under the registry
        // lock is race-free.
        if let Some(slot) = reg.get_mut(&prev) {
            if slot.scheduled {
                slot.pending.push_back(WorkItem {
                    kind: ItemKind::Write(reply),
                    conn: Some(Arc::clone(&conn.shared)),
                });
                return;
            }
        }
    }
    let _ = conn.shared.write_reply(reply.as_bytes());
}

/// Parses the `open` line's arguments: `<order> <clock> [evict <n>]
/// [no-retire] [recycle]`. Shared with the cluster node, whose
/// forwarded `open` lines must accept exactly the same grammar.
///
/// # Errors
///
/// A protocol-ready message for unknown orders, clocks or options.
pub fn parse_open(parts: &[&str]) -> Result<(ClockChoice, DetectorConfig), String> {
    let order: PartialOrderKind = parts
        .first()
        .copied()
        .unwrap_or("hb")
        .parse()
        .map_err(|e: String| e)?;
    let clock: ClockChoice = parts.get(1).copied().unwrap_or("tc").parse()?;
    let mut config = DetectorConfig::for_order(order);
    let mut i = 2;
    while i < parts.len() {
        match parts[i] {
            "evict" => {
                let n = parts
                    .get(i + 1)
                    .ok_or("evict requires an interval")?
                    .parse::<u64>()
                    .map_err(|_| "invalid evict interval".to_owned())?;
                config.evict_every = Some(n.max(1));
                i += 2;
            }
            "no-retire" => {
                config.retire_on_join = false;
                i += 1;
            }
            "recycle" => {
                config.recycle_slots = true;
                i += 1;
            }
            other => return Err(format!("unknown open option `{other}`")),
        }
    }
    if config.recycle_slots && !config.retire_on_join {
        return Err("recycle requires join retirement; drop no-retire".to_owned());
    }
    Ok((clock, config))
}

// ---- the client and the smoke driver ------------------------------------

/// A minimal blocking protocol client (used by the smoke test, the
/// ingest benchmark and the integration tests). Speaks both protocols:
/// text requests and batched binary frames on one connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    session: u64,
}

/// A failed `open` attempt, tagged with whether retrying the
/// handshake is worthwhile (the connection died under us — a reset, a
/// broken pipe, or a close before the reply — rather than the server
/// rejecting the request).
struct OpenError {
    message: String,
    retryable: bool,
}

impl OpenError {
    fn io(e: &io::Error) -> OpenError {
        OpenError {
            message: e.to_string(),
            retryable: matches!(
                e.kind(),
                io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
            ),
        }
    }

    fn fatal(message: impl Into<String>) -> OpenError {
        OpenError {
            message: message.into(),
            retryable: false,
        }
    }
}

/// Capped backoff before [`Client::open`]'s single handshake retry —
/// long enough for a restarting or failing-over server to start
/// accepting again, short enough that a hard failure still surfaces
/// promptly.
const OPEN_RETRY_BACKOFF: Duration = Duration::from_millis(50);

impl Client {
    /// Connects and performs the `open` handshake. Arguments starting
    /// with `resume` are sent verbatim (the resume handshake);
    /// everything else is prefixed with `open `.
    ///
    /// The handshake is idempotent (no events have been sent yet), so
    /// a connection that dies mid-handshake — the window a cluster
    /// failover or server restart produces — is retried **once** after
    /// a capped backoff before surfacing as an error.
    ///
    /// # Errors
    ///
    /// I/O failures and protocol-level `err` replies, as strings.
    pub fn open(addr: SocketAddr, open_args: &str) -> Result<Client, String> {
        match Client::try_open(addr, open_args) {
            Ok(client) => Ok(client),
            Err(e) if e.retryable => {
                std::thread::sleep(OPEN_RETRY_BACKOFF);
                Client::try_open(addr, open_args).map_err(|e| e.message)
            }
            Err(e) => Err(e.message),
        }
    }

    /// One connect + handshake attempt, classifying failures for the
    /// retry decision in [`Client::open`].
    fn try_open(addr: SocketAddr, open_args: &str) -> Result<Client, OpenError> {
        let stream = TcpStream::connect(addr).map_err(|e| OpenError::io(&e))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| OpenError::io(&e))?);
        let mut client = Client {
            reader,
            writer: BufWriter::new(stream),
            session: 0,
        };
        let line = Client::open_line(open_args);
        let reply = client.try_handshake_request(&line)?;
        client.session = Client::parse_open_reply(&reply).map_err(OpenError::fatal)?;
        Ok(client)
    }

    /// The handshake line `open_args` stands for.
    fn open_line(open_args: &str) -> String {
        if open_args.starts_with("resume") {
            open_args.to_owned()
        } else {
            format!("open {open_args}")
        }
    }

    /// Extracts the session id from an `open`/`resume` reply.
    fn parse_open_reply(reply: &[String]) -> Result<u64, String> {
        match reply.iter().rfind(|l| !l.is_empty()) {
            Some(l) if l.starts_with("ok session") => l
                .split_whitespace()
                .nth(2)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("malformed open reply `{l}`")),
            Some(l) => Err(format!("open failed: {l}")),
            None => Err("open got no reply".to_owned()),
        }
    }

    /// Opens an additional session on this connection (rebinding bare
    /// text lines to it) and returns its id — the handle binary frames
    /// address, letting one connection fan events into many sessions.
    ///
    /// # Errors
    ///
    /// I/O failures and protocol-level `err` replies, as strings.
    pub fn open_session(&mut self, open_args: &str) -> Result<u64, String> {
        let reply = self.handshake_request(&Client::open_line(open_args))?;
        let id = Client::parse_open_reply(&reply)?;
        self.session = id;
        Ok(id)
    }

    /// The session id of the most recent `open` on this client.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// A request whose reply may be a single `err` line (handshake
    /// failures terminate the exchange without an `ok`).
    fn handshake_request(&mut self, line: &str) -> Result<Vec<String>, String> {
        self.try_handshake_request(line).map_err(|e| e.message)
    }

    /// [`Self::handshake_request`], with failures classified for the
    /// open retry: write/read errors carry their I/O kind, a clean
    /// close before the reply (the drop-after-accept shape a dying
    /// node produces) is retryable.
    fn try_handshake_request(&mut self, line: &str) -> Result<Vec<String>, OpenError> {
        writeln!(self.writer, "{line}").map_err(|e| OpenError::io(&e))?;
        self.writer.flush().map_err(|e| OpenError::io(&e))?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| OpenError::io(&e))?;
        if n == 0 {
            return Err(OpenError {
                message: "server closed the connection during the handshake".to_owned(),
                retryable: true,
            });
        }
        Ok(vec![reply.trim_end().to_owned()])
    }

    /// Sends one line without waiting for a reply (event pipelining).
    ///
    /// # Errors
    ///
    /// I/O failures as strings.
    pub fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| e.to_string())
    }

    /// Writes pre-rendered protocol bytes — text lines or encoded
    /// frames — without flushing. Bulk ingest drivers use this to
    /// avoid per-line formatting overhead.
    ///
    /// # Errors
    ///
    /// I/O failures as strings.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.writer.write_all(bytes).map_err(|e| e.to_string())
    }

    /// Flushes everything buffered by `send`/`send_raw`/`send_frame`.
    ///
    /// # Errors
    ///
    /// I/O failures as strings.
    pub fn flush(&mut self) -> Result<(), String> {
        self.writer.flush().map_err(|e| e.to_string())
    }

    /// Reads one reply line (blocking) — pipelined drivers that issued
    /// many requests at once count `ok` terminators themselves.
    ///
    /// # Errors
    ///
    /// I/O failures and a closed connection, as strings.
    pub fn read_reply(&mut self) -> Result<String, String> {
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("server closed the connection".to_owned());
        }
        Ok(reply.trim_end().to_owned())
    }

    /// Sends binary event frames for `session` without waiting for a
    /// reply (frames are silent on success). Batches too large for one
    /// frame are split automatically.
    ///
    /// # Errors
    ///
    /// I/O failures as strings.
    pub fn send_frame(&mut self, session: u64, events: &[Event]) -> Result<(), String> {
        for bytes in wire::encode_frames(session, events) {
            self.writer.write_all(&bytes).map_err(|e| e.to_string())?;
        }
        Ok(())
    }

    /// Sends one multi-session wire message — a batch of events per
    /// session in a single frame, so a fan-in driver pays one sniff
    /// and one length prefix per *round* across all of its sessions
    /// instead of per session.
    ///
    /// # Errors
    ///
    /// Oversize messages and I/O failures, as strings.
    pub fn send_multi_frame(&mut self, groups: &[(u64, &[Event])]) -> Result<(), String> {
        let bytes = wire::encode_multi_frame(groups).map_err(|e| e.to_string())?;
        self.writer.write_all(&bytes).map_err(|e| e.to_string())
    }

    /// `stats-all`: a single round-trip aggregating every session this
    /// connection opened. Returns `(sessions, events, rejected,
    /// races)` — the fan-in driver's one synchronization point.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed replies, as strings.
    pub fn stats_all(&mut self) -> Result<(u64, u64, u64, u64), String> {
        let replies = self.request("stats-all")?;
        let line = replies.last().expect("request returns the terminator");
        let mut fields = [0u64; 4];
        for (i, key) in ["sessions=", "events=", "rejected=", "races="]
            .iter()
            .enumerate()
        {
            fields[i] = line
                .split_whitespace()
                .find_map(|w| w.strip_prefix(key))
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("malformed stats-all reply `{line}`"))?;
        }
        Ok((fields[0], fields[1], fields[2], fields[3]))
    }

    /// Scrapes the server's `metrics` exposition: sends the command and
    /// reads through the `# EOF` terminator line. The result is the
    /// Prometheus-style text document (just `# EOF\n` on a server
    /// started with telemetry off).
    ///
    /// # Errors
    ///
    /// I/O failures and a closed connection, as strings.
    pub fn metrics_scrape(&mut self) -> Result<String, String> {
        self.send("metrics")?;
        self.flush()?;
        let mut text = String::new();
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| e.to_string())?;
            if n == 0 {
                return Err("server closed the connection mid-scrape".to_owned());
            }
            let done = line.trim_end() == "# EOF";
            text.push_str(&line);
            if done {
                return Ok(text);
            }
        }
    }

    /// Sends a command and reads reply lines up to (and including) the
    /// `ok`/`err` terminator. Any `err` lines produced by earlier
    /// pipelined events surface here too.
    ///
    /// # Errors
    ///
    /// I/O failures as strings.
    pub fn request(&mut self, line: &str) -> Result<Vec<String>, String> {
        self.send(line)?;
        self.writer.flush().map_err(|e| e.to_string())?;
        let mut replies = Vec::new();
        loop {
            let mut reply = String::new();
            let n = self
                .reader
                .read_line(&mut reply)
                .map_err(|e| e.to_string())?;
            if n == 0 {
                return Err("server closed the connection mid-reply".to_owned());
            }
            let reply = reply.trim_end().to_owned();
            let terminal = reply.starts_with("ok");
            replies.push(reply);
            if terminal {
                return Ok(replies);
            }
        }
    }
}

/// The workload every smoke session streams.
fn smoke_trace(seed: u64) -> tc_trace::Trace {
    tc_trace::gen::WorkloadSpec {
        threads: 4,
        locks: 2,
        vars: 3,
        events: 400,
        sync_ratio: 0.15,
        shared_fraction: 0.9,
        seed,
        ..tc_trace::gen::WorkloadSpec::default()
    }
    .generate()
}

/// Drives one text-protocol smoke session and returns `(total, stored
/// race lines)`.
fn smoke_drive(
    addr: SocketAddr,
    order: &str,
    clock: &str,
    seed: u64,
) -> Result<(u64, Vec<String>), String> {
    use tc_trace::text_format;
    let trace = smoke_trace(seed);
    let mut client = Client::open(addr, &format!("{order} {clock}"))?;
    for line in text_format::to_text(&trace).lines() {
        client.send(line)?;
    }
    let (total, races) = collect_races(&mut client, order, clock)?;
    let stats = client.request("stats")?;
    let stats_line = stats.last().expect("terminator");
    if !stats_line.contains(&format!("events={}", trace.len())) {
        return Err(format!(
            "session {order}/{clock}: expected events={} in `{stats_line}`",
            trace.len()
        ));
    }
    client.request("close")?;
    Ok((total, races))
}

/// Drives one binary-protocol smoke session — same workload, dense-id
/// frames of 64 events, text commands for synchronization on the same
/// connection (the mixed-protocol path).
fn smoke_drive_binary(
    addr: SocketAddr,
    order: &str,
    clock: &str,
    seed: u64,
) -> Result<(u64, Vec<String>), String> {
    let trace = smoke_trace(seed);
    let mut client = Client::open(addr, &format!("{order} {clock}"))?;
    let session = client.session();
    for batch in trace.events().chunks(64) {
        client.send_frame(session, batch)?;
    }
    let (total, races) = collect_races(&mut client, order, clock)?;
    let stats = client.request("stats")?;
    let stats_line = stats.last().expect("terminator");
    if !stats_line.contains(&format!("events={}", trace.len())) {
        return Err(format!(
            "binary session {order}/{clock}: expected events={} in `{stats_line}`",
            trace.len()
        ));
    }
    client.request("close")?;
    Ok((total, races))
}

/// Issues `races` and splits the reply into `(total, stored lines)`.
fn collect_races(
    client: &mut Client,
    order: &str,
    clock: &str,
) -> Result<(u64, Vec<String>), String> {
    let replies = client.request("races")?;
    if let Some(err) = replies.iter().find(|l| l.starts_with("err")) {
        return Err(format!("session {order}/{clock}: {err}"));
    }
    let races: Vec<String> = replies
        .iter()
        .filter(|l| l.starts_with("race "))
        .map(|l| l["race ".len()..].to_owned())
        .collect();
    let ok = replies.last().expect("request returns the terminator");
    let total: u64 = ok
        .split_whitespace()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("malformed races terminator `{ok}`"))?;
    Ok((total, races))
}

/// The end-to-end smoke run behind `tcr serve --smoke`: starts a
/// server, drives three concurrent sessions over real sockets — two
/// text, one batched-binary — with different orders/backends, asserts
/// each session's reports equal the batch detectors' on the same trace
/// (what `tcr race` runs), and shuts the server down cleanly while a
/// spectator client is still connected.
///
/// # Errors
///
/// A description of the first divergence or protocol failure.
pub fn smoke() -> Result<(), String> {
    use tc_analysis::{HbRaceDetector, ShbRaceDetector};
    use tc_core::{HybridClock, TreeClock, VectorClock};

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        parallel: 2,
        telemetry: true,
        auth: None,
    })
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = server.local_addr();

    // Three concurrent sessions across the worker pool.
    let h1 = std::thread::spawn(move || smoke_drive(addr, "hb", "tc", 11));
    let h2 = std::thread::spawn(move || smoke_drive(addr, "shb", "hc", 12));
    let h3 = std::thread::spawn(move || smoke_drive_binary(addr, "hb", "vc", 13));
    let (total_hb, races_hb) = h1.join().map_err(|_| "hb client panicked")??;
    let (total_shb, races_shb) = h2.join().map_err(|_| "shb client panicked")??;
    let (total_bin, races_bin) = h3.join().map_err(|_| "binary client panicked")??;

    // The reference runs: exactly what `tcr race` computes. Text
    // sessions are compared against the re-parsed rendering (the
    // interner re-assigns ids in first-appearance order, exactly like
    // the session did); the binary session streams dense ids verbatim,
    // so its reference is the raw generated trace.
    let reparse = |seed: u64| {
        tc_trace::text_format::parse_text(&tc_trace::text_format::to_text(&smoke_trace(seed)))
            .expect("rendered traces re-parse")
    };
    let trace_hb = reparse(11);
    let batch_hb = HbRaceDetector::<TreeClock>::new(&trace_hb).run(&trace_hb);
    let trace_shb = reparse(12);
    let batch_shb = ShbRaceDetector::<HybridClock>::new(&trace_shb).run(&trace_shb);
    let trace_bin = smoke_trace(13);
    let batch_bin = HbRaceDetector::<VectorClock>::new(&trace_bin).run(&trace_bin);

    for (label, total, races, batch) in [
        ("hb/tc", total_hb, &races_hb, &batch_hb),
        ("shb/hc", total_shb, &races_shb, &batch_shb),
        ("hb/vc binary", total_bin, &races_bin, &batch_bin),
    ] {
        if total != batch.total {
            return Err(format!(
                "{label}: served {total} race(s), batch found {}",
                batch.total
            ));
        }
        let expected: Vec<String> = batch.races.iter().map(|r| r.to_string()).collect();
        if *races != expected {
            return Err(format!(
                "{label}: served race list diverges from the batch detector \
                 ({} vs {} stored)",
                races.len(),
                expected.len()
            ));
        }
    }

    // Shutdown through the protocol while a client is still connected
    // (the nonblocking loop needs no throwaway-connection kick).
    let spectator = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut admin = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    writeln!(admin, "shutdown").map_err(|e| e.to_string())?;
    let mut reply = String::new();
    BufReader::new(admin)
        .read_line(&mut reply)
        .map_err(|e| e.to_string())?;
    if !reply.starts_with("ok shutting-down") {
        return Err(format!("shutdown got `{}`", reply.trim()));
    }
    server.join();
    drop(spectator);
    Ok(())
}
