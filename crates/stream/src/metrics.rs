//! The service's telemetry surface: pre-resolved metric handles for
//! the hot layers, built over [`tc_telemetry`]'s lock-free primitives.
//!
//! Two bundles:
//!
//! - [`ServiceMetrics`] — everything `tcr serve` tracks: connection
//!   and session counts, ingested events, per-wire-kind message
//!   counters and batch-size histograms, wire-level error counters,
//!   queue-depth high-water, worker drain/steal counts, reply-latency
//!   histograms, and detector memory gauges. One instance per server,
//!   shared by the I/O thread and every worker.
//! - [`PhaseMetrics`] — the epoch-parallel pipeline's five phases
//!   (partition / scatter / execute / gather / barrier) as latency
//!   histograms plus span rings for the chrome://tracing export —
//!   exactly the breakdown ROADMAP item 1's coordination-tax work
//!   needs.
//!
//! Both come in a null form (built over [`Registry::null`]) whose
//! handles are inert — the `NullRecorder` configuration the overhead
//! benchmark compares against.

use std::sync::Arc;

use tc_telemetry::{labeled, Counter, Gauge, Histogram, Registry, SpanRing, DEFAULT_RING_CAPACITY};

/// The five epoch-parallel phases, in pipeline order. Histogram names
/// are `tc_phase_us{phase="<name>"}`.
pub const PHASES: [&str; 5] = ["partition", "scatter", "execute", "gather", "barrier"];

/// The histogram name a phase's latencies are registered under.
pub fn phase_metric_name(phase: &str) -> String {
    labeled("tc_phase_us", &[("phase", phase)])
}

/// Telemetry handles for the epoch-parallel frame pipeline. Cloning
/// shares the underlying cells; handles are `Send + Sync` and cheap
/// enough to capture into epoch-worker closures.
#[derive(Clone, Default)]
pub struct PhaseMetrics {
    /// `partition_frame` (union-find epoch split) latency.
    pub(crate) partition: Histogram,
    /// Shard extraction + scatter onto the pool.
    pub(crate) scatter: Histogram,
    /// One epoch shard's feed loop (recorded per shard, on whichever
    /// thread ran it).
    pub(crate) execute: Histogram,
    /// The help-drain wait until every shard reports in.
    pub(crate) gather: Histogram,
    /// Shard re-absorption + frame commit after the barrier.
    pub(crate) barrier: Histogram,
    /// Coordinator-side spans (partition/scatter/gather/barrier).
    pub(crate) coord_ring: SpanRing,
    /// Execute spans, recorded from the epoch workers (and the
    /// help-draining submitter) into one shared ring.
    pub(crate) exec_ring: SpanRing,
}

impl PhaseMetrics {
    /// Registers the five phase histograms and two span rings. A null
    /// `registry` yields the inert bundle.
    pub fn new(registry: &Registry) -> PhaseMetrics {
        PhaseMetrics {
            partition: registry.histogram(&phase_metric_name("partition")),
            scatter: registry.histogram(&phase_metric_name("scatter")),
            execute: registry.histogram(&phase_metric_name("execute")),
            gather: registry.histogram(&phase_metric_name("gather")),
            barrier: registry.histogram(&phase_metric_name("barrier")),
            coord_ring: registry.span_ring("epoch-coordinator", DEFAULT_RING_CAPACITY),
            exec_ring: registry.span_ring("epoch-workers", DEFAULT_RING_CAPACITY),
        }
    }

    /// The inert bundle (every record is a no-op).
    pub fn null() -> PhaseMetrics {
        PhaseMetrics::default()
    }
}

/// Every metric the streaming service records, as pre-resolved handles
/// — the hot path never does a name lookup. Counters and gauges are
/// shared cells; the latency histograms here are *I/O-thread* shards,
/// workers register their own per-worker shards (merged at scrape).
pub struct ServiceMetrics {
    registry: Registry,
    /// Worker-pool size (the `workers=` stats field).
    pub(crate) workers: usize,
    /// Set at scrape time from the registry's epoch.
    pub(crate) uptime_ms: Gauge,
    pub(crate) conns_accepted: Counter,
    pub(crate) conns_active: Gauge,
    pub(crate) sessions_opened: Counter,
    /// Events accepted by detectors (delta-accumulated per work item,
    /// so a scrape matches the sum of live sessions' `stats`).
    pub(crate) events: Counter,
    pub(crate) rejected: Counter,
    pub(crate) races: Counter,
    pub(crate) msgs_text: Counter,
    pub(crate) msgs_frame: Counter,
    pub(crate) msgs_multi: Counter,
    pub(crate) batch_text: Histogram,
    pub(crate) batch_frame: Histogram,
    pub(crate) batch_multi: Histogram,
    pub(crate) wire_err_corrupt: Counter,
    pub(crate) wire_err_oversize: Counter,
    pub(crate) wire_err_unknown_session: Counter,
    pub(crate) wire_err_line_overflow: Counter,
    /// Rejected `auth` attempts and auth-gated commands refused
    /// without a prior successful `auth`.
    pub(crate) wire_err_auth: Counter,
    pub(crate) wire_errors_total: Counter,
    pub(crate) queue_depth_high_water: Gauge,
    pub(crate) peak_clock_bytes: Gauge,
    pub(crate) live_threads_high_water: Gauge,
    pub(crate) pool_bytes: Gauge,
    /// The epoch-parallel phase bundle every session shares.
    pub(crate) phases: PhaseMetrics,
}

impl ServiceMetrics {
    /// Builds the service bundle over `registry` (null registry → every
    /// handle inert) for a pool of `workers` workers.
    pub fn new(registry: Registry, workers: usize) -> ServiceMetrics {
        let workers_gauge = registry.gauge("tc_workers");
        workers_gauge.set(workers as u64);
        ServiceMetrics {
            workers,
            uptime_ms: registry.gauge("tc_uptime_ms"),
            conns_accepted: registry.counter("tc_connections_accepted_total"),
            conns_active: registry.gauge("tc_connections_active"),
            sessions_opened: registry.counter("tc_sessions_opened_total"),
            events: registry.counter("tc_events_total"),
            rejected: registry.counter("tc_rejected_total"),
            races: registry.counter("tc_races_total"),
            msgs_text: registry.counter(&labeled("tc_messages_total", &[("wire", "text")])),
            msgs_frame: registry.counter(&labeled("tc_messages_total", &[("wire", "frame")])),
            msgs_multi: registry.counter(&labeled("tc_messages_total", &[("wire", "multi")])),
            batch_text: registry.histogram(&labeled("tc_batch_events", &[("wire", "text")])),
            batch_frame: registry.histogram(&labeled("tc_batch_events", &[("wire", "frame")])),
            batch_multi: registry.histogram(&labeled("tc_batch_events", &[("wire", "multi")])),
            wire_err_corrupt: registry
                .counter(&labeled("tc_wire_errors_total", &[("kind", "corrupt")])),
            wire_err_oversize: registry
                .counter(&labeled("tc_wire_errors_total", &[("kind", "oversize")])),
            wire_err_unknown_session: registry.counter(&labeled(
                "tc_wire_errors_total",
                &[("kind", "unknown_session")],
            )),
            wire_err_line_overflow: registry.counter(&labeled(
                "tc_wire_errors_total",
                &[("kind", "line_overflow")],
            )),
            wire_err_auth: registry.counter(&labeled("tc_wire_errors_total", &[("kind", "auth")])),
            wire_errors_total: registry.counter("tc_wire_errors"),
            queue_depth_high_water: registry.gauge("tc_queue_depth_high_water"),
            peak_clock_bytes: registry.gauge("tc_peak_clock_bytes"),
            live_threads_high_water: registry.gauge("tc_live_threads_high_water"),
            pool_bytes: registry.gauge("tc_pool_bytes"),
            phases: PhaseMetrics::new(&registry),
            registry,
        }
    }

    /// The inert bundle (the `NullRecorder` configuration).
    pub fn null(workers: usize) -> ServiceMetrics {
        ServiceMetrics::new(Registry::null(), workers)
    }

    /// The backing registry (scrapes, per-worker shard registration).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The epoch-parallel phase bundle.
    pub fn phases(&self) -> &PhaseMetrics {
        &self.phases
    }

    /// Renders the Prometheus-style exposition the `metrics` protocol
    /// command replies with, refreshing the uptime gauge first.
    pub fn render_prometheus(&self) -> String {
        self.uptime_ms
            .set(self.registry.uptime().as_millis() as u64);
        self.registry.render_prometheus()
    }

    /// The server-scope fields appended to every per-session `stats`
    /// reply, so a scrape is self-describing (uptime, connection
    /// counts, pool size, wire errors).
    pub(crate) fn stats_suffix(&self) -> String {
        format!(
            " uptime_ms={} conns_accepted={} conns_active={} workers={} wire_errors={}",
            self.registry.uptime().as_millis(),
            self.conns_accepted.get(),
            self.conns_active.get(),
            self.workers,
            self.wire_errors_total.get(),
        )
    }
}

/// `ServiceMetrics` shared across the I/O thread, the workers and the
/// sessions.
pub type SharedMetrics = Arc<ServiceMetrics>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_bundle_is_inert_and_sendable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServiceMetrics>();
        assert_send_sync::<PhaseMetrics>();
        let m = ServiceMetrics::null(4);
        m.events.add(10);
        m.phases.partition.record(5);
        assert_eq!(m.registry().counter_value("tc_events_total"), 0);
        assert_eq!(m.render_prometheus(), "# EOF\n");
        assert!(m.stats_suffix().contains("workers=4"));
    }

    #[test]
    fn live_bundle_exposes_the_service_families() {
        let m = ServiceMetrics::new(Registry::new(), 2);
        m.conns_accepted.inc();
        m.msgs_frame.inc();
        m.batch_frame.record(512);
        m.wire_err_oversize.inc();
        m.wire_errors_total.inc();
        m.phases.execute.record(40);
        let text = m.render_prometheus();
        assert!(text.contains("tc_connections_accepted_total 1\n"));
        assert!(text.contains("tc_messages_total{wire=\"frame\"} 1\n"));
        assert!(text.contains("tc_wire_errors_total{kind=\"oversize\"} 1\n"));
        assert!(text.contains("tc_phase_us{phase=\"execute\",quantile=\"0.5\"}"));
        assert!(text.contains("tc_workers 2\n"));
        assert!(text.ends_with("# EOF\n"));
        let suffix = m.stats_suffix();
        assert!(suffix.contains("conns_accepted=1"));
        assert!(suffix.contains("wire_errors=1"));
    }

    #[test]
    fn phase_names_cover_the_pipeline() {
        assert_eq!(
            PHASES,
            ["partition", "scatter", "execute", "gather", "barrier"]
        );
        assert_eq!(phase_metric_name("gather"), "tc_phase_us{phase=\"gather\"}");
    }
}
