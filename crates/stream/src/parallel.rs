//! Epoch-batched intra-session parallel detection.
//!
//! A frame of events splits into *epochs*: the connected components of
//! the graph whose vertices are threads, locks and variables, with an
//! edge for every event between its acting thread and the entity it
//! touches (fork/join edges connect the two threads). Events of
//! distinct epochs are independent under HB, SHB and MAZ — no clock,
//! lock clock, last-write clock or access history is shared — so each
//! epoch can be timestamped and race-checked on its own worker thread,
//! against state *moved out* of the parent detector, and moved back at
//! the epoch barrier. The merged result is **identical** to sequential
//! feeding: same per-event timestamps, same race report (including
//! stored order and the stored-race cap), same checkpoint. The
//! conformance sweep's `CheckKind::Parallel` pass enforces this on
//! every quick-corpus case, for all three orders × three backends.
//!
//! The scheduler is conservative: whenever parallel feeding *could*
//! diverge from sequential — slot recycling configured, eviction
//! already performed or an eviction tick due inside the frame, an
//! event referencing a retired thread (a [`FeedError`] sequentially),
//! fewer than two epochs, or a frame too small to pay for the barrier —
//! it signals the caller to fall back to the sequential path instead.
//! The parallel path therefore never fails mid-frame. An
//! eviction-*configured* session that has not actually evicted anything
//! still gets epoch parallelism between ticks.

use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use tc_analysis::Race;
use tc_core::{ClockPool, LogicalClock, ThreadId, VectorTime};
use tc_trace::{Event, LockId, Op, VarId};

use crate::detector::{DetectorConfig, FeedError, IncrementalDetector};
use crate::metrics::PhaseMetrics;

/// Default minimum frame size before the scheduler attempts an epoch
/// split: below this the barrier costs more than the parallelism pays.
pub const DEFAULT_MIN_PARALLEL_FRAME: usize = 128;

// ---------------------------------------------------------------------
// Epoch partitioning
// ---------------------------------------------------------------------

/// One epoch of a frame: a closed set of threads/locks/variables plus
/// the frame's events over them, tagged with their frame positions.
pub(crate) struct Epoch {
    pub(crate) tids: Vec<ThreadId>,
    pub(crate) locks: Vec<LockId>,
    pub(crate) vars: Vec<VarId>,
    /// `(frame index, event)` in frame order.
    pub(crate) events: Vec<(u32, Event)>,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Thread(u32),
    Lock(u32),
    Var(u32),
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn push(&mut self) -> u32 {
        let i = self.parent.len() as u32;
        self.parent.push(i);
        i
    }

    fn find(&mut self, mut i: u32) -> u32 {
        while self.parent[i as usize] != i {
            let gp = self.parent[self.parent[i as usize] as usize];
            self.parent[i as usize] = gp;
            i = gp;
        }
        i
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Splits a frame into its epochs (in order of first appearance).
/// Entities are interned through a map, so adversarially huge raw ids
/// cost a hash entry, not an array.
pub(crate) fn partition_frame(events: &[Event]) -> Vec<Epoch> {
    let mut index: HashMap<Key, u32> = HashMap::new();
    let mut uf = UnionFind { parent: Vec::new() };
    let mut intern =
        |uf: &mut UnionFind, key: Key| -> u32 { *index.entry(key).or_insert_with(|| uf.push()) };

    let mut keys: Vec<(Key, u32)> = Vec::new();
    let mut seen_key = |uf: &mut UnionFind, keys: &mut Vec<(Key, u32)>, key: Key| -> u32 {
        let before = uf.parent.len();
        let i = intern(uf, key);
        if uf.parent.len() > before {
            keys.push((key, i));
        }
        i
    };

    for e in events {
        let a = seen_key(&mut uf, &mut keys, Key::Thread(e.tid.raw()));
        let b = match e.op {
            Op::Read(x) | Op::Write(x) => seen_key(&mut uf, &mut keys, Key::Var(x.raw())),
            Op::Acquire(l) | Op::Release(l) => seen_key(&mut uf, &mut keys, Key::Lock(l.raw())),
            Op::Fork(u) | Op::Join(u) => seen_key(&mut uf, &mut keys, Key::Thread(u.raw())),
        };
        uf.union(a, b);
    }

    // Number the epochs by first event appearance, for determinism.
    let mut epoch_of_root: HashMap<u32, usize> = HashMap::new();
    let mut epochs: Vec<Epoch> = Vec::new();
    for (pos, e) in events.iter().enumerate() {
        let i = intern(&mut uf, Key::Thread(e.tid.raw()));
        let root = uf.find(i);
        let epoch = *epoch_of_root.entry(root).or_insert_with(|| {
            epochs.push(Epoch {
                tids: Vec::new(),
                locks: Vec::new(),
                vars: Vec::new(),
                events: Vec::new(),
            });
            epochs.len() - 1
        });
        epochs[epoch].events.push((pos as u32, *e));
    }
    for (key, i) in keys {
        let root = uf.find(i);
        let epoch = epoch_of_root[&root];
        match key {
            Key::Thread(t) => epochs[epoch].tids.push(ThreadId::new(t)),
            Key::Lock(l) => epochs[epoch].locks.push(LockId::new(l)),
            Key::Var(x) => epochs[epoch].vars.push(VarId::new(x)),
        }
    }
    epochs
}

// ---------------------------------------------------------------------
// The epoch worker pool
// ---------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A small shared pool of epoch workers. Shards are scattered onto it
/// at each frame's epoch split and gathered at the barrier; while
/// waiting, the submitting thread drains the queue itself, so a pool
/// with **zero** workers is valid (everything runs inline on the
/// submitter) and a pool shared by many sessions cannot deadlock.
pub struct EpochPool {
    state: Arc<PoolState>,
    handles: Vec<thread::JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for EpochPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl EpochPool {
    /// Creates a pool with `workers` dedicated threads (0 is valid:
    /// epochs then run inline on the submitting thread, preserving the
    /// exact parallel-path semantics with no extra threads).
    pub fn new(workers: usize) -> Self {
        let state = Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let state = Arc::clone(&state);
                thread::Builder::new()
                    .name(format!("tc-epoch-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let mut q = state.queue.lock().expect("epoch queue poisoned");
                            loop {
                                if state.shutdown.load(Ordering::Acquire) {
                                    return;
                                }
                                if let Some(job) = q.pop_front() {
                                    break job;
                                }
                                q = state.available.wait(q).expect("epoch queue poisoned");
                            }
                        };
                        job();
                    })
                    .expect("spawning an epoch worker")
            })
            .collect();
        EpochPool {
            state,
            handles,
            workers,
        }
    }

    /// Number of dedicated worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn push(&self, job: Job) {
        let mut q = self.state.queue.lock().expect("epoch queue poisoned");
        q.push_back(job);
        drop(q);
        self.state.available.notify_one();
    }

    /// Runs one queued job on the calling thread; `false` if the queue
    /// was empty.
    fn try_run_one(&self) -> bool {
        let job = {
            let mut q = self.state.queue.lock().expect("epoch queue poisoned");
            q.pop_front()
        };
        match job {
            Some(job) => {
                job();
                true
            }
            None => false,
        }
    }
}

impl Drop for EpochPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The gather side of one frame's scatter: result slots plus a
/// countdown the submitter waits on (draining the queue meanwhile).
struct Barrier<T> {
    slots: Mutex<Vec<Option<T>>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

impl<T> Barrier<T> {
    fn new(n: usize) -> Self {
        Barrier {
            slots: Mutex::new((0..n).map(|_| None).collect()),
            remaining: Mutex::new(n),
            done: Condvar::new(),
        }
    }

    fn complete(&self, index: usize, value: Option<T>) {
        if let Some(v) = value {
            self.slots.lock().expect("barrier poisoned")[index] = Some(v);
        }
        let mut remaining = self.remaining.lock().expect("barrier poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }
}

struct ShardDone<C: LogicalClock> {
    shard: IncrementalDetector<C>,
    /// `(frame index, race)` pairs in the shard's feed order.
    races: Vec<(u32, Race)>,
    /// `(frame index, post-event timestamp of the acting thread)`.
    stamps: Vec<(u32, VectorTime)>,
}

// ---------------------------------------------------------------------
// The frame scheduler
// ---------------------------------------------------------------------

/// Tries to feed a whole frame through the epoch-parallel path.
///
/// Returns `None` — *without having touched the detector* — when the
/// frame must be fed sequentially instead: slot recycling configured,
/// eviction already active (or an eviction tick due inside this
/// frame), a reference to a retired thread (sequentially a
/// [`FeedError`]), fewer than two epochs, or fewer than `min_events`
/// events. On `Some`, the detector state is exactly as if every event
/// had been fed sequentially; the returned races are what sequential
/// `feed` calls would have returned across the frame, and the
/// timestamps (when `collect_timestamps`) are each event's post-event
/// acting-thread timestamp in frame order.
pub(crate) fn try_feed_frame_parallel<C>(
    det: &mut IncrementalDetector<C>,
    events: &[Event],
    workers: &EpochPool,
    min_events: usize,
    shard_pools: &mut Vec<ClockPool<C>>,
    collect_timestamps: bool,
    metrics: &PhaseMetrics,
) -> Option<(Vec<Race>, Vec<VectorTime>)>
where
    C: LogicalClock + Send + 'static,
{
    let cfg = det.config();
    if events.len() < min_events.max(2) || cfg.recycle_slots || det.evicted() > 0 {
        return None;
    }
    // An eviction-*configured* session may still go epoch-parallel as
    // long as nothing has been evicted yet (checked above — shard
    // extraction assumes fully materialized clocks) and no eviction
    // tick lands inside this frame. Ticks fire when the absolute event
    // count reaches a multiple of the period, so the frame is safe iff
    // it does not cross such a multiple.
    if let Some(n) = cfg.evict_every.filter(|&n| n > 0) {
        let fed = det.events();
        if (fed + events.len() as u64) / n != fed / n {
            return None;
        }
    }
    // Pre-scan: any event that would be a FeedError sequentially (a
    // reference to a thread retired before the frame, or retired by an
    // earlier in-frame join) forces the sequential path, so shards
    // below cannot fail.
    let retire = det.config().retire_on_join;
    let mut joined: Vec<ThreadId> = Vec::new();
    for e in events {
        let target = match e.op {
            Op::Fork(u) | Op::Join(u) => Some(u),
            _ => None,
        };
        for t in [Some(e.tid), target].into_iter().flatten() {
            if det.is_thread_retired(t) || joined.contains(&t) {
                return None;
            }
        }
        if retire {
            if let Op::Join(u) = e.op {
                joined.push(u);
            }
        }
    }

    let t_partition = metrics.partition.begin();
    let sp_partition = metrics.coord_ring.span("partition");
    let epochs = partition_frame(events);
    drop(sp_partition);
    metrics.partition.end(t_partition);
    if epochs.len() < 2 {
        return None;
    }

    // Scatter: move each epoch's slice of the detector onto the pool.
    let t_scatter = metrics.scatter.begin();
    let sp_scatter = metrics.coord_ring.span("scatter");
    let barrier = Arc::new(Barrier::<ShardDone<C>>::new(epochs.len()));
    for (i, epoch) in epochs.iter().enumerate() {
        let pool = shard_pools.pop().unwrap_or_default();
        let mut shard = det.extract_shard(&epoch.tids, &epoch.locks, &epoch.vars, pool);
        let epoch_events = epoch.events.clone();
        let barrier = Arc::clone(&barrier);
        let exec_hist = metrics.execute.clone();
        let exec_ring = metrics.exec_ring.clone();
        workers.push(Box::new(move || {
            // Execute: one shard's feed loop, timed on whichever thread
            // actually runs it (an epoch worker or the help-draining
            // submitter).
            let t_execute = exec_hist.begin();
            let sp_execute = exec_ring.span("execute");
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                let mut races = Vec::new();
                let mut stamps = Vec::new();
                for &(pos, e) in &epoch_events {
                    let new = shard
                        .feed(&e)
                        .expect("pre-scanned epoch events cannot fail");
                    races.extend(new.iter().map(|&r| (pos, r)));
                    if collect_timestamps {
                        stamps.push((pos, shard.timestamp_of(e.tid)));
                    }
                }
                ShardDone {
                    shard,
                    races,
                    stamps,
                }
            }));
            drop(sp_execute);
            exec_hist.end(t_execute);
            barrier.complete(i, result.ok());
        }));
    }
    drop(sp_scatter);
    metrics.scatter.end(t_scatter);

    // Gather: help drain the queue (ours or other sessions') until
    // every shard reports in.
    let t_gather = metrics.gather.begin();
    let sp_gather = metrics.coord_ring.span("gather");
    loop {
        {
            let remaining = barrier.remaining.lock().expect("barrier poisoned");
            if *remaining == 0 {
                break;
            }
        }
        if !workers.try_run_one() {
            let remaining = barrier.remaining.lock().expect("barrier poisoned");
            if *remaining > 0 {
                let _ = barrier
                    .done
                    .wait_timeout(remaining, Duration::from_millis(1))
                    .expect("barrier poisoned");
            }
        }
    }
    drop(sp_gather);
    metrics.gather.end(t_gather);

    // Merge at the barrier: state back in epoch order, races and
    // timestamps back in frame order.
    let t_barrier = metrics.barrier.begin();
    let sp_barrier = metrics.coord_ring.span("barrier");
    let mut slots = barrier.slots.lock().expect("barrier poisoned");
    let mut all_races: Vec<(u32, Race)> = Vec::new();
    let mut all_stamps: Vec<(u32, VectorTime)> = Vec::new();
    for (epoch, slot) in epochs.iter().zip(slots.iter_mut()) {
        let done = slot
            .take()
            .unwrap_or_else(|| panic!("an epoch shard panicked; the session state is lost"));
        all_races.extend(done.races);
        all_stamps.extend(done.stamps);
        let pool = det.absorb_shard(done.shard, &epoch.tids, &epoch.locks, &epoch.vars);
        shard_pools.push(pool);
    }
    drop(slots);
    // Stable by frame position: distinct epochs never share a position
    // and a single event's races stay in their found order.
    all_races.sort_by_key(|&(pos, _)| pos);
    all_stamps.sort_by_key(|&(pos, _)| pos);

    let race_values: Vec<Race> = all_races.into_iter().map(|(_, r)| r).collect();
    let new = det.commit_parallel_frame(events, &race_values).to_vec();
    let stamps = all_stamps.into_iter().map(|(_, ts)| ts).collect();
    drop(sp_barrier);
    metrics.barrier.end(t_barrier);
    Some((new, stamps))
}

// ---------------------------------------------------------------------
// The public wrapper
// ---------------------------------------------------------------------

/// An [`IncrementalDetector`] fed frame-at-a-time, with each frame
/// epoch-split across an [`EpochPool`] when profitable and fed
/// sequentially otherwise — results are identical either way (see the
/// [module docs](self)).
pub struct ParallelDetector<C: LogicalClock + Send + 'static> {
    inner: IncrementalDetector<C>,
    workers: Arc<EpochPool>,
    min_frame: usize,
    shard_pools: Vec<ClockPool<C>>,
    parallel_frames: u64,
    sequential_frames: u64,
    metrics: PhaseMetrics,
}

impl<C: LogicalClock + Send + 'static> ParallelDetector<C> {
    /// Creates a detector that splits frames of at least `min_frame`
    /// events across `workers`.
    pub fn new(config: DetectorConfig, workers: Arc<EpochPool>, min_frame: usize) -> Self {
        ParallelDetector {
            inner: IncrementalDetector::new(config),
            workers,
            min_frame,
            shard_pools: Vec::new(),
            parallel_frames: 0,
            sequential_frames: 0,
            metrics: PhaseMetrics::null(),
        }
    }

    /// Wraps an existing detector (e.g. one resumed from a checkpoint).
    pub fn from_detector(
        inner: IncrementalDetector<C>,
        workers: Arc<EpochPool>,
        min_frame: usize,
    ) -> Self {
        ParallelDetector {
            inner,
            workers,
            min_frame,
            shard_pools: Vec::new(),
            parallel_frames: 0,
            sequential_frames: 0,
            metrics: PhaseMetrics::null(),
        }
    }

    /// Attaches phase telemetry: subsequent parallel frames record
    /// partition/scatter/execute/gather/barrier latencies and spans
    /// into `metrics`' registry. The default is the inert null bundle.
    pub fn set_phase_metrics(&mut self, metrics: PhaseMetrics) {
        self.metrics = metrics;
    }

    /// Feeds one frame, returning the newly stored races in frame
    /// order — exactly what per-event [`IncrementalDetector::feed`]
    /// calls would have returned.
    ///
    /// # Errors
    ///
    /// Any [`FeedError`] the sequential path reports (the parallel path
    /// never errors: frames that could are fed sequentially). The
    /// failing event is skipped and the rest of the frame is fed, as a
    /// service session would; the first error is returned.
    pub fn feed_frame(&mut self, events: &[Event]) -> Result<Vec<Race>, FeedError> {
        self.feed_frame_impl(events, false).map(|(races, _)| races)
    }

    /// [`feed_frame`](Self::feed_frame), also collecting each event's
    /// post-event acting-thread timestamp (conformance/test instrument;
    /// O(frame × threads) memory).
    pub fn feed_frame_traced(
        &mut self,
        events: &[Event],
    ) -> Result<(Vec<Race>, Vec<VectorTime>), FeedError> {
        self.feed_frame_impl(events, true)
    }

    fn feed_frame_impl(
        &mut self,
        events: &[Event],
        collect_timestamps: bool,
    ) -> Result<(Vec<Race>, Vec<VectorTime>), FeedError> {
        if let Some(result) = try_feed_frame_parallel(
            &mut self.inner,
            events,
            &self.workers,
            self.min_frame,
            &mut self.shard_pools,
            collect_timestamps,
            &self.metrics,
        ) {
            self.parallel_frames += 1;
            return Ok(result);
        }
        self.sequential_frames += 1;
        let mut races = Vec::new();
        let mut stamps = Vec::new();
        let mut first_err = None;
        for e in events {
            match self.inner.feed(e) {
                Ok(new) => races.extend(new.iter().copied()),
                Err(err) => {
                    if first_err.is_none() {
                        first_err = Some(err);
                    }
                    continue;
                }
            }
            if collect_timestamps {
                stamps.push(self.inner.timestamp_of(e.tid));
            }
        }
        match first_err {
            Some(err) => Err(err),
            None => Ok((races, stamps)),
        }
    }

    /// The wrapped detector (report, checkpoint, stats).
    pub fn detector(&self) -> &IncrementalDetector<C> {
        &self.inner
    }

    /// Frames that took the epoch-parallel path.
    pub fn parallel_frames(&self) -> u64 {
        self.parallel_frames
    }

    /// Frames fed sequentially (too small, single-epoch, eviction, or
    /// a retired-thread reference).
    pub fn sequential_frames(&self) -> u64 {
        self.sequential_frames
    }

    /// Unwraps the sequential detector, dropping the pool handle.
    pub fn into_inner(self) -> IncrementalDetector<C> {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::TreeClock;
    use tc_trace::TraceBuilder;

    /// Four independent thread pairs: one epoch each.
    fn four_epoch_trace() -> tc_trace::Trace {
        let mut b = TraceBuilder::new();
        for g in 0..4u32 {
            let (t0, t1) = (2 * g, 2 * g + 1);
            for _ in 0..8 {
                b.write_id(t0, g);
                b.read_id(t1, g);
                b.acquire_id(t1, g);
                b.release_id(t1, g);
                b.write_id(t1, g);
            }
        }
        b.finish()
    }

    #[test]
    fn partition_finds_independent_epochs() {
        let trace = four_epoch_trace();
        let events: Vec<Event> = trace.iter().copied().collect();
        let epochs = partition_frame(&events);
        assert_eq!(epochs.len(), 4);
        assert_eq!(
            epochs.iter().map(|p| p.events.len()).sum::<usize>(),
            events.len()
        );
        for p in &epochs {
            assert_eq!(p.tids.len(), 2);
            assert_eq!(p.locks.len(), 1);
            assert_eq!(p.vars.len(), 1);
        }
    }

    #[test]
    fn fork_join_and_shared_vars_merge_epochs() {
        let mut b = TraceBuilder::new();
        b.fork(0, 1).write(1, "x").join(0, 1); // {t0, t1, x}
        b.write(2, "x"); // x merges t2 in
        b.write(3, "y"); // separate epoch
        let events: Vec<Event> = b.finish().iter().copied().collect();
        let epochs = partition_frame(&events);
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].tids.len(), 3);
        assert_eq!(epochs[0].events.len(), 4);
    }

    #[test]
    fn parallel_frame_matches_sequential_exactly() {
        let trace = four_epoch_trace();
        let events: Vec<Event> = trace.iter().copied().collect();

        for order in [
            tc_orders::PartialOrderKind::Hb,
            tc_orders::PartialOrderKind::Shb,
            tc_orders::PartialOrderKind::Maz,
        ] {
            let config = DetectorConfig::for_order(order);
            let mut seq = IncrementalDetector::<TreeClock>::new(config);
            let mut seq_races = Vec::new();
            let mut seq_stamps = Vec::new();
            for e in &events {
                seq_races.extend(seq.feed(e).unwrap().iter().copied());
                seq_stamps.push(seq.timestamp_of(e.tid));
            }

            let workers = Arc::new(EpochPool::new(2));
            let mut par = ParallelDetector::<TreeClock>::new(config, workers, 2);
            let (par_races, par_stamps) = par.feed_frame_traced(&events).unwrap();

            assert_eq!(par.parallel_frames(), 1, "{order:?} must split");
            assert_eq!(par_races, seq_races, "{order:?} races");
            assert_eq!(par_stamps, seq_stamps, "{order:?} timestamps");
            assert_eq!(par.detector().report(), seq.report(), "{order:?} report");
            assert_eq!(
                format!("{:?}", par.detector().checkpoint()),
                format!("{:?}", seq.checkpoint()),
                "{order:?} checkpoint"
            );
        }
    }

    #[test]
    fn zero_worker_pool_runs_epochs_inline() {
        let trace = four_epoch_trace();
        let events: Vec<Event> = trace.iter().copied().collect();
        let workers = Arc::new(EpochPool::new(0));
        let mut par = ParallelDetector::<TreeClock>::new(DetectorConfig::default(), workers, 2);
        let races = par.feed_frame(&events).unwrap();
        assert_eq!(par.parallel_frames(), 1);

        let mut seq = IncrementalDetector::<TreeClock>::new(DetectorConfig::default());
        let mut seq_races = Vec::new();
        for e in &events {
            seq_races.extend(seq.feed(e).unwrap().iter().copied());
        }
        assert_eq!(races, seq_races);
    }

    #[test]
    fn single_epoch_and_small_frames_fall_back() {
        let mut b = TraceBuilder::new();
        for i in 0..32u32 {
            b.write_id(i % 4, 0); // every thread shares x0: one epoch
        }
        let events: Vec<Event> = b.finish().iter().copied().collect();
        let workers = Arc::new(EpochPool::new(1));
        let mut par = ParallelDetector::<TreeClock>::new(DetectorConfig::default(), workers, 2);
        par.feed_frame(&events).unwrap();
        assert_eq!(par.parallel_frames(), 0);
        assert_eq!(par.sequential_frames(), 1);
        assert_eq!(par.detector().events(), events.len() as u64);

        // A frame below min_frame also falls back, even if splittable.
        let mut b = TraceBuilder::new();
        b.write(0, "x").write(1, "y");
        let small: Vec<Event> = b.finish().iter().copied().collect();
        let workers = Arc::new(EpochPool::new(1));
        let mut par = ParallelDetector::<TreeClock>::new(DetectorConfig::default(), workers, 64);
        par.feed_frame(&small).unwrap();
        assert_eq!(par.sequential_frames(), 1);
    }

    #[test]
    fn frames_with_retired_references_fall_back_and_report_the_error() {
        let workers = Arc::new(EpochPool::new(1));
        let mut par = ParallelDetector::<TreeClock>::new(DetectorConfig::default(), workers, 2);
        let mut b = TraceBuilder::new();
        b.fork(0, 1).write(1, "x").join(0, 1);
        b.write(2, "y").write(3, "z");
        par.feed_frame(&b.finish().iter().copied().collect::<Vec<_>>())
            .unwrap();
        // t1 is retired; a frame referencing it is sequential + error.
        let mut b = TraceBuilder::new();
        b.write(1, "x").write(2, "y").write(3, "z");
        let err = par
            .feed_frame(&b.finish().iter().copied().collect::<Vec<_>>())
            .unwrap_err();
        assert!(matches!(err, FeedError::RetiredThread { .. }));
        // The other events of the frame were still ingested.
        assert_eq!(par.detector().events(), 5 + 2);
    }

    #[test]
    fn evict_configured_sessions_parallelize_between_ticks() {
        let trace = four_epoch_trace();
        let events: Vec<Event> = trace.iter().copied().collect();
        let config = DetectorConfig {
            evict_every: Some(10_000), // no tick inside a 40-event frame
            ..DetectorConfig::default()
        };
        let mut seq = IncrementalDetector::<TreeClock>::new(config);
        let mut seq_races = Vec::new();
        for e in &events {
            seq_races.extend(seq.feed(e).unwrap().iter().copied());
        }

        let workers = Arc::new(EpochPool::new(2));
        let mut par = ParallelDetector::<TreeClock>::new(config, workers, 2);
        let races = par.feed_frame(&events).unwrap();
        assert_eq!(par.parallel_frames(), 1, "tickless frame must split");
        assert_eq!(races, seq_races);
        assert_eq!(par.detector().report(), seq.report());
    }

    #[test]
    fn frames_crossing_an_eviction_tick_fall_back() {
        let trace = four_epoch_trace();
        let events: Vec<Event> = trace.iter().copied().collect();
        let config = DetectorConfig {
            evict_every: Some(8), // a tick lands inside the frame
            ..DetectorConfig::default()
        };
        let workers = Arc::new(EpochPool::new(2));
        let mut par = ParallelDetector::<TreeClock>::new(config, workers, 2);
        par.feed_frame(&events).unwrap();
        assert_eq!(par.parallel_frames(), 0);
        assert_eq!(par.sequential_frames(), 1);
    }

    #[test]
    fn sessions_that_already_evicted_fall_back() {
        // Frame 1: exactly 44 events ending on the eviction tick — the
        // lock clock (t0's release time) is dominated by t0's live
        // clock, so the tick actually evicts state. Threads t1..t7 are
        // forked up front so frame 2 passes the post-eviction
        // fork-discipline guard.
        let mut b = TraceBuilder::new();
        b.acquire_id(0, 0).release_id(0, 0);
        // Fork frame 2's threads *after* the release: every child copies
        // t0's post-release clock, so the live floor dominates the lock
        // clock — and frame 2 passes the post-eviction fork-discipline
        // guard.
        for u in 1..8u32 {
            b.fork(0, u);
        }
        for _ in 0..35 {
            b.write_id(0, 0);
        }
        let frame1: Vec<Event> = b.finish().iter().copied().collect();
        assert_eq!(frame1.len(), 44);

        let config = DetectorConfig {
            evict_every: Some(44),
            ..DetectorConfig::default()
        };
        let workers = Arc::new(EpochPool::new(2));
        let mut par = ParallelDetector::<TreeClock>::new(config, workers, 2);
        par.feed_frame(&frame1).unwrap();
        assert!(par.detector().evicted() > 0, "the tick must evict");

        // Frame 2: splittable and tick-free (events 45..=84 cross no
        // multiple of 44) — but the session has evicted, so it must
        // stay sequential.
        let events: Vec<Event> = four_epoch_trace().iter().copied().collect();
        par.feed_frame(&events).unwrap();
        assert_eq!(par.parallel_frames(), 0);
        assert_eq!(par.sequential_frames(), 2);
    }

    #[test]
    fn recycling_sessions_always_fall_back() {
        let events: Vec<Event> = four_epoch_trace().iter().copied().collect();
        let config = DetectorConfig {
            recycle_slots: true,
            ..DetectorConfig::default()
        };
        let workers = Arc::new(EpochPool::new(2));
        let mut par = ParallelDetector::<TreeClock>::new(config, workers, 2);
        par.feed_frame(&events).unwrap();
        assert_eq!(par.parallel_frames(), 0);
        assert_eq!(par.sequential_frames(), 1);
    }

    #[test]
    fn phase_metrics_record_all_five_phases() {
        use crate::metrics::{phase_metric_name, PHASES};
        let reg = tc_telemetry::Registry::new();
        let events: Vec<Event> = four_epoch_trace().iter().copied().collect();
        let workers = Arc::new(EpochPool::new(2));
        let mut par = ParallelDetector::<TreeClock>::new(DetectorConfig::default(), workers, 2);
        par.set_phase_metrics(PhaseMetrics::new(&reg));
        par.feed_frame(&events).unwrap();
        assert_eq!(par.parallel_frames(), 1);
        for phase in PHASES {
            let snap = reg.histogram_snapshot(&phase_metric_name(phase));
            assert!(snap.count > 0, "phase {phase} must record");
        }
        // Execute records once per epoch shard.
        let exec = reg.histogram_snapshot(&phase_metric_name("execute"));
        assert_eq!(exec.count, 4);
        // And the spans land in the rings for the chrome export.
        let trace = reg.chrome_trace();
        for phase in PHASES {
            assert!(
                trace.contains(&format!("\"name\":\"{phase}\"")),
                "{phase} span"
            );
        }
    }

    #[test]
    fn shard_pools_recycle_across_frames() {
        let trace = four_epoch_trace();
        let events: Vec<Event> = trace.iter().copied().collect();
        let workers = Arc::new(EpochPool::new(2));
        let mut par = ParallelDetector::<TreeClock>::new(DetectorConfig::default(), workers, 2);
        par.feed_frame(&events).unwrap();
        let pooled_after_first: usize = par.shard_pools.len();
        assert!(pooled_after_first > 0, "shards must return their pools");
        par.feed_frame(&events).unwrap();
        assert_eq!(par.parallel_frames(), 2);
        assert_eq!(par.shard_pools.len(), pooled_after_first);
    }
}
