//! One analysis session: a runtime-chosen backend detector paired with
//! incremental validation and the text line protocol.
//!
//! A [`Session`] is what both `tcr stream` (one session over a file)
//! and `tcr serve` (many sessions over sockets) drive: it owns an
//! [`IncrementalDetector`] for a runtime-selected clock backend, a
//! [`SessionValidator`] rejecting malformed events before they reach
//! the engine, and a [`StreamInterner`] so text sessions can use
//! human-readable names.

use std::fmt::Write as _;
use std::str::FromStr;
use std::sync::Arc;

use tc_analysis::Race;
use tc_core::{ClockPool, HybridClock, ThreadId, TreeClock, VectorClock, VectorTime};
use tc_trace::{Event, SessionValidator, StreamInterner};

use crate::checkpoint::Checkpoint;
use crate::detector::{DetectorConfig, FeedError, IncrementalDetector};
use crate::metrics::{PhaseMetrics, SharedMetrics};
use crate::parallel::{self, EpochPool};

/// A runtime clock-backend selector (`tc`/`vc`/`hc`, or the long
/// names).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClockChoice {
    /// The tree clock (default).
    #[default]
    Tree,
    /// The flat vector clock.
    Vector,
    /// The adaptive flat/tree hybrid.
    Hybrid,
}

impl ClockChoice {
    /// The backend's `LogicalClock::NAME`.
    pub fn name(self) -> &'static str {
        match self {
            ClockChoice::Tree => "tree",
            ClockChoice::Vector => "vector",
            ClockChoice::Hybrid => "hybrid",
        }
    }
}

impl FromStr for ClockChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "tc" | "tree" => Ok(ClockChoice::Tree),
            "vc" | "vector" => Ok(ClockChoice::Vector),
            "hc" | "hybrid" => Ok(ClockChoice::Hybrid),
            other => Err(format!("unknown clock `{other}` (expected tc, vc or hc)")),
        }
    }
}

/// An [`IncrementalDetector`] over a backend chosen at runtime.
pub enum AnyDetector {
    /// Tree-clock backend.
    Tree(IncrementalDetector<TreeClock>),
    /// Vector-clock backend.
    Vector(IncrementalDetector<VectorClock>),
    /// Hybrid backend.
    Hybrid(IncrementalDetector<HybridClock>),
}

macro_rules! dispatch {
    ($any:expr, $d:ident => $body:expr) => {
        match $any {
            AnyDetector::Tree($d) => $body,
            AnyDetector::Vector($d) => $body,
            AnyDetector::Hybrid($d) => $body,
        }
    };
}

impl AnyDetector {
    /// Creates a detector for the chosen backend.
    pub fn new(clock: ClockChoice, config: DetectorConfig) -> AnyDetector {
        match clock {
            ClockChoice::Tree => AnyDetector::Tree(IncrementalDetector::new(config)),
            ClockChoice::Vector => AnyDetector::Vector(IncrementalDetector::new(config)),
            ClockChoice::Hybrid => AnyDetector::Hybrid(IncrementalDetector::new(config)),
        }
    }

    /// Restores a detector from a checkpoint, re-creating the backend
    /// recorded in it (unknown names fall back to the tree backend —
    /// values are representation independent).
    pub fn from_checkpoint(cp: &Checkpoint) -> AnyDetector {
        let clock = cp.backend.parse().unwrap_or_default();
        match clock {
            ClockChoice::Tree => AnyDetector::Tree(IncrementalDetector::from_checkpoint(
                cp,
                tc_core::ClockPool::new(),
            )),
            ClockChoice::Vector => AnyDetector::Vector(IncrementalDetector::from_checkpoint(
                cp,
                tc_core::ClockPool::new(),
            )),
            ClockChoice::Hybrid => AnyDetector::Hybrid(IncrementalDetector::from_checkpoint(
                cp,
                tc_core::ClockPool::new(),
            )),
        }
    }

    /// See [`IncrementalDetector::feed`].
    ///
    /// # Errors
    ///
    /// Propagates [`FeedError`] from the detector.
    pub fn feed(&mut self, e: &Event) -> Result<&[Race], FeedError> {
        dispatch!(self, d => d.feed(e))
    }

    /// See [`IncrementalDetector::report`].
    pub fn report(&self) -> &tc_analysis::RaceReport {
        dispatch!(self, d => d.report())
    }

    /// See [`IncrementalDetector::events`].
    pub fn events(&self) -> u64 {
        dispatch!(self, d => d.events())
    }

    /// See [`IncrementalDetector::threads_seen`].
    pub fn threads_seen(&self) -> usize {
        dispatch!(self, d => d.threads_seen())
    }

    /// See [`IncrementalDetector::retired_count`].
    pub fn retired_count(&self) -> usize {
        dispatch!(self, d => d.retired_count())
    }

    /// See [`IncrementalDetector::evicted`].
    pub fn evicted(&self) -> u64 {
        dispatch!(self, d => d.evicted())
    }

    /// See [`IncrementalDetector::clock_bytes`].
    pub fn clock_bytes(&self) -> usize {
        dispatch!(self, d => d.clock_bytes())
    }

    /// Free-listed bytes parked in the detector's pool.
    pub fn pool_bytes(&self) -> usize {
        dispatch!(self, d => d.pool().heap_bytes())
    }

    /// See [`IncrementalDetector::live_threads`].
    pub fn live_threads(&self) -> usize {
        dispatch!(self, d => d.live_threads())
    }

    /// See [`IncrementalDetector::total_threads`].
    pub fn total_threads(&self) -> usize {
        dispatch!(self, d => d.total_threads())
    }

    /// See [`IncrementalDetector::recycled_slots`].
    pub fn recycled_slots(&self) -> u64 {
        dispatch!(self, d => d.recycled_slots())
    }

    /// See [`IncrementalDetector::peak_clock_bytes`].
    pub fn peak_clock_bytes(&self) -> usize {
        dispatch!(self, d => d.peak_clock_bytes())
    }

    /// See [`IncrementalDetector::timestamp_of`].
    pub fn timestamp_of(&self, t: ThreadId) -> VectorTime {
        dispatch!(self, d => d.timestamp_of(t))
    }

    /// See [`IncrementalDetector::checkpoint`].
    pub fn checkpoint(&self) -> Checkpoint {
        dispatch!(self, d => d.checkpoint())
    }

    /// The detector's configuration.
    pub fn config(&self) -> DetectorConfig {
        dispatch!(self, d => d.config())
    }

    /// The backend's name.
    pub fn backend_name(&self) -> &'static str {
        match self {
            AnyDetector::Tree(_) => "tree",
            AnyDetector::Vector(_) => "vector",
            AnyDetector::Hybrid(_) => "hybrid",
        }
    }
}

/// Per-backend shard clock pools recycled across a session's parallel
/// frames (each epoch shard borrows one and returns it at the barrier).
enum AnyShardPools {
    Tree(Vec<ClockPool<TreeClock>>),
    Vector(Vec<ClockPool<VectorClock>>),
    Hybrid(Vec<ClockPool<HybridClock>>),
}

/// Epoch-parallel frame feeding, attached by
/// [`Session::enable_parallel`]: binary frames of at least `min_frame`
/// events are split into conflict-free epochs and fanned across the
/// shared [`EpochPool`]; results are identical to sequential feeding.
struct ParallelState {
    workers: Arc<EpochPool>,
    min_frame: usize,
    pools: AnyShardPools,
    parallel_frames: u64,
    /// Phase telemetry for parallel frames (null unless attached).
    metrics: PhaseMetrics,
}

/// One line-protocol session; see the [module docs](self) and
/// [`Session::handle_line`] for the command set.
pub struct Session {
    id: u64,
    detector: AnyDetector,
    validator: SessionValidator,
    interner: StreamInterner,
    /// Events rejected by validation (the session continues).
    rejected: u64,
    /// Stored races already sent in reply to `poll`.
    polled: usize,
    /// Epoch-parallel frame feeding, when enabled.
    parallel: Option<ParallelState>,
    /// Server-scope telemetry, attached when the session is served:
    /// `stats` replies then carry the server suffix (uptime,
    /// connection counts, pool size, wire errors).
    server: Option<SharedMetrics>,
}

impl Session {
    /// Creates a session.
    pub fn new(id: u64, clock: ClockChoice, config: DetectorConfig) -> Session {
        Session {
            id,
            detector: AnyDetector::new(clock, config),
            validator: SessionValidator::new(),
            interner: StreamInterner::new(),
            rejected: 0,
            polled: 0,
            parallel: None,
            server: None,
        }
    }

    /// Wraps an existing detector/validator pair (the `tcr stream
    /// --parallel` path builds its state file-side — resume included —
    /// and then drives it through the session's frame machinery).
    pub fn from_parts(id: u64, detector: AnyDetector, validator: SessionValidator) -> Session {
        Session {
            id,
            detector,
            validator,
            interner: StreamInterner::new(),
            rejected: 0,
            polled: 0,
            parallel: None,
            server: None,
        }
    }

    /// Enables epoch-parallel feeding for binary frames of at least
    /// `min_frame` events, fanned across `workers` (shared between
    /// sessions). Frames the scheduler cannot prove splittable are fed
    /// sequentially; either way the results are identical.
    pub fn enable_parallel(&mut self, workers: Arc<EpochPool>, min_frame: usize) {
        let pools = match self.detector {
            AnyDetector::Tree(_) => AnyShardPools::Tree(Vec::new()),
            AnyDetector::Vector(_) => AnyShardPools::Vector(Vec::new()),
            AnyDetector::Hybrid(_) => AnyShardPools::Hybrid(Vec::new()),
        };
        self.parallel = Some(ParallelState {
            workers,
            min_frame,
            pools,
            parallel_frames: 0,
            metrics: PhaseMetrics::null(),
        });
    }

    /// Attaches epoch-phase telemetry to the parallel path (no-op when
    /// [`enable_parallel`](Self::enable_parallel) was not called
    /// first). Parallel frames then record partition/scatter/execute/
    /// gather/barrier latencies and spans into `metrics`' registry.
    pub fn set_phase_metrics(&mut self, metrics: PhaseMetrics) {
        if let Some(ps) = self.parallel.as_mut() {
            ps.metrics = metrics;
        }
    }

    /// Attaches server-scope telemetry: `stats` replies gain the
    /// ` uptime_ms=... conns_accepted=... conns_active=... workers=...
    /// wire_errors=...` suffix. Sessions outside a server never see it.
    pub fn set_server_metrics(&mut self, metrics: SharedMetrics) {
        self.server = Some(metrics);
    }

    /// Frames that took the epoch-parallel path so far (0 when
    /// [`enable_parallel`](Self::enable_parallel) was never called).
    pub fn parallel_frames(&self) -> u64 {
        self.parallel.as_ref().map_or(0, |p| p.parallel_frames)
    }

    /// Events rejected by validation so far (the `rejected=` stats
    /// field; the service's `stats-all` aggregation reads it).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Resumes a session from a checkpoint: the detector *and* — when
    /// the checkpoint was taken at the session level — the validator's
    /// lock/lifecycle state (so discipline keeps being enforced across
    /// the restore) and the interner's name tables (so every
    /// established name → id binding survives).
    pub fn from_checkpoint(id: u64, cp: &Checkpoint) -> Session {
        Session {
            id,
            detector: AnyDetector::from_checkpoint(cp),
            validator: cp
                .validator
                .as_ref()
                .map(SessionValidator::from_snapshot)
                .unwrap_or_default(),
            interner: cp
                .interner
                .as_ref()
                .map(StreamInterner::from_snapshot)
                .unwrap_or_default(),
            rejected: 0,
            // Resume delivery exactly where the checkpointed session's
            // consumer left off: races it never polled are replayed by
            // the next `poll` instead of being lost.
            polled: cp.polled as usize,
            parallel: None,
            server: None,
        }
    }

    /// Captures the session (detector + validator + names + poll
    /// watermark) as a checkpoint.
    pub fn checkpoint(&self) -> Checkpoint {
        let mut cp = self.detector.checkpoint();
        cp.validator = Some(self.validator.snapshot());
        cp.interner = Some(self.interner.snapshot());
        cp.polled = self.polled as u64;
        cp
    }

    /// The session id assigned at `open`.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The underlying detector (telemetry, checkpointing).
    pub fn detector(&self) -> &AnyDetector {
        &self.detector
    }

    /// Feeds one already-parsed event through validation and the
    /// detector, appending `race ...` reply lines for any races found.
    fn feed_event(&mut self, e: &Event, out: &mut String) {
        if let Err(err) = self.validator.check(e) {
            self.rejected += 1;
            let _ = writeln!(out, "err invalid event: {}", err.message);
            return;
        }
        match self.detector.feed(e) {
            Ok(_) => {}
            Err(err) => {
                self.rejected += 1;
                let _ = writeln!(out, "err {err}");
            }
        }
    }

    /// Feeds a decoded binary wire frame: every event runs through the
    /// same validation and detection as a text line, but with dense ids
    /// straight off the wire — no parse, no interner. Silent on
    /// success, `err ...` lines (batch-indexed) for rejected events;
    /// like malformed text lines, a rejected event never kills the
    /// session.
    pub fn handle_frame(&mut self, events: &[Event], out: &mut String) {
        if self.try_handle_frame_parallel(events, out) {
            return;
        }
        for (i, e) in events.iter().enumerate() {
            let before = out.len();
            self.feed_event(e, out);
            if out.len() != before {
                // Prefix the error with the in-frame index so a
                // batching client can attribute it.
                let tail = out.split_off(before);
                let _ = write!(out, "err at {i}: {}", tail.trim_start_matches("err "));
            }
        }
    }

    /// The epoch-parallel frame path: validates the whole frame up
    /// front (validation state is detector-independent, so batched
    /// validation accepts exactly the events interleaved validation
    /// would), then feeds the accepted events through the epoch
    /// scheduler — falling back to in-place sequential feeding when the
    /// frame is not provably splittable. Replies are byte-identical to
    /// the sequential path: `err at <i>: ...` lines in frame order.
    /// Returns `false` when parallel feeding is not enabled or the
    /// frame is below the configured minimum.
    fn try_handle_frame_parallel(&mut self, events: &[Event], out: &mut String) -> bool {
        let Some(ps) = self.parallel.as_mut() else {
            return false;
        };
        if events.len() < ps.min_frame.max(2) {
            return false;
        }
        let mut errs: Vec<(usize, String)> = Vec::new();
        let mut accepted: Vec<Event> = Vec::with_capacity(events.len());
        let mut accepted_idx: Vec<usize> = Vec::with_capacity(events.len());
        for (i, e) in events.iter().enumerate() {
            match self.validator.check(e) {
                Ok(()) => {
                    accepted.push(*e);
                    accepted_idx.push(i);
                }
                Err(err) => {
                    self.rejected += 1;
                    errs.push((i, format!("invalid event: {}", err.message)));
                }
            }
        }
        let went_parallel = match (&mut self.detector, &mut ps.pools) {
            (AnyDetector::Tree(d), AnyShardPools::Tree(p)) => parallel::try_feed_frame_parallel(
                d,
                &accepted,
                &ps.workers,
                ps.min_frame,
                p,
                false,
                &ps.metrics,
            )
            .is_some(),
            (AnyDetector::Vector(d), AnyShardPools::Vector(p)) => {
                parallel::try_feed_frame_parallel(
                    d,
                    &accepted,
                    &ps.workers,
                    ps.min_frame,
                    p,
                    false,
                    &ps.metrics,
                )
                .is_some()
            }
            (AnyDetector::Hybrid(d), AnyShardPools::Hybrid(p)) => {
                parallel::try_feed_frame_parallel(
                    d,
                    &accepted,
                    &ps.workers,
                    ps.min_frame,
                    p,
                    false,
                    &ps.metrics,
                )
                .is_some()
            }
            _ => unreachable!("shard pools always match the session backend"),
        };
        if went_parallel {
            ps.parallel_frames += 1;
        } else {
            for (k, e) in accepted.iter().enumerate() {
                if let Err(err) = self.detector.feed(e) {
                    self.rejected += 1;
                    errs.push((accepted_idx[k], err.to_string()));
                }
            }
            errs.sort_by_key(|&(i, _)| i);
        }
        for (i, msg) in errs {
            let _ = writeln!(out, "err at {i}: {msg}");
        }
        true
    }

    /// Handles one protocol line, appending reply lines to `out`.
    /// Returns `false` when the session asked to close.
    ///
    /// The command set:
    ///
    /// - `<thread> <op> <operand>` or `event <thread> <op> <operand>` —
    ///   feed one event (text-format syntax; names are interned
    ///   per-session). Silent on success; `err ...` on a malformed or
    ///   rejected event (the session continues).
    /// - `poll` — `race ...` lines for races found since the last
    ///   `poll`, then `ok <new> <total>`.
    /// - `races` — every stored race, then `ok <stored> <total>`.
    /// - `stats` — one `ok` line of `key=value` session statistics.
    /// - `timestamp <thread>` — the thread's current vector time.
    /// - `checkpoint <path>` — write a checkpoint file server-side.
    /// - `close` — `ok bye`, ends the session.
    pub fn handle_line(&mut self, line: &str, out: &mut String) -> bool {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return true;
        }
        let mut parts = line.split_whitespace();
        let command = parts.next().expect("non-empty line has a first token");
        match command {
            "close" => {
                let _ = writeln!(out, "ok bye");
                return false;
            }
            "poll" => {
                let report = self.detector.report();
                let new = report.races_since(self.polled);
                for race in new {
                    let _ = writeln!(out, "race {race}");
                }
                let (count, total) = (new.len(), report.total);
                // Advance the cursor past exactly what was emitted.
                // The cursor is session state and the service checks a
                // session out to one worker at a time, so polls are
                // serialized even when several connections rebind to
                // this session with `use <id>`: every stored race is
                // delivered to exactly one poller, with no gaps and no
                // duplicates (see the two-connection regression test).
                self.polled += count;
                let _ = writeln!(out, "ok {count} {total}");
            }
            "races" => {
                let report = self.detector.report();
                for race in &report.races {
                    let _ = writeln!(out, "race {race}");
                }
                let _ = writeln!(out, "ok {} {}", report.races.len(), report.total);
            }
            "stats" => {
                let d = &self.detector;
                let report = d.report();
                // Served sessions append the server-scope suffix so one
                // `stats` round trip describes both the session and the
                // server it lives in.
                let server = self
                    .server
                    .as_ref()
                    .map(|m| m.stats_suffix())
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "ok events={} threads={} races={} checks={} rejected={} retired={} \
                     evicted={} clock_bytes={} pool_bytes={} backend={} order={} \
                     parallel_frames={} live_threads={} total_threads={} \
                     recycled_slots={} peak_clock_bytes={}{server}",
                    d.events(),
                    d.threads_seen(),
                    report.total,
                    report.checks,
                    self.rejected,
                    d.retired_count(),
                    d.evicted(),
                    d.clock_bytes(),
                    d.pool_bytes(),
                    d.backend_name(),
                    d.config().order,
                    self.parallel.as_ref().map_or(0, |p| p.parallel_frames),
                    d.live_threads(),
                    d.total_threads(),
                    d.recycled_slots(),
                    d.peak_clock_bytes(),
                );
            }
            "timestamp" => match parts.next() {
                Some(name) => {
                    let t = self.resolve_thread(name);
                    match t {
                        Some(t) => {
                            let _ = writeln!(out, "ok {}", self.detector.timestamp_of(t));
                        }
                        None => {
                            let _ = writeln!(out, "err unknown thread `{name}`");
                        }
                    }
                }
                None => {
                    let _ = writeln!(out, "err timestamp requires a thread");
                }
            },
            "checkpoint" => match parts.next() {
                Some(path) => {
                    let cp = self.checkpoint();
                    match std::fs::File::create(path)
                        .map_err(|e| e.to_string())
                        .and_then(|f| {
                            let mut w = std::io::BufWriter::new(f);
                            cp.write(&mut w).map_err(|e| e.to_string())
                        }) {
                        Ok(()) => {
                            let _ = writeln!(out, "ok checkpoint {path} events={}", cp.events);
                        }
                        Err(e) => {
                            let _ = writeln!(out, "err cannot write {path}: {e}");
                        }
                    }
                }
                None => {
                    let _ = writeln!(out, "err checkpoint requires a path");
                }
            },
            "event" => {
                let rest: Vec<&str> = parts.collect();
                self.parse_and_feed(&rest.join(" "), out);
            }
            _ => {
                // Bare text-format event line.
                self.parse_and_feed(line, out);
            }
        }
        true
    }

    fn parse_and_feed(&mut self, line: &str, out: &mut String) {
        match self.interner.parse_line(line) {
            Ok(Some(e)) => self.feed_event(&e, out),
            Ok(None) => {}
            Err(message) => {
                self.rejected += 1;
                let _ = writeln!(out, "err {message}");
            }
        }
    }

    /// Resolves a thread token: an interned name, or `t<i>`/<i> ids.
    fn resolve_thread(&self, token: &str) -> Option<ThreadId> {
        if let Some(t) = self.interner.thread_id(token) {
            return Some(t);
        }
        let raw = token.strip_prefix('t').unwrap_or(token);
        raw.parse().ok().map(ThreadId::new)
    }
}

// Sessions are movable values: the work-stealing service checks them
// out and processes them on whichever worker is free, so the whole
// session — detector (any backend), validator, interner — must be
// `Send`. Compile-time assertion (the tentpole guarantee of the
// Send-safety refactor).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session>();
    assert_send::<AnyDetector>();
    assert_send::<IncrementalDetector<TreeClock>>();
    assert_send::<IncrementalDetector<VectorClock>>();
    assert_send::<IncrementalDetector<HybridClock>>();
    assert_send::<Checkpoint>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn open_session() -> Session {
        Session::new(1, ClockChoice::Tree, DetectorConfig::default())
    }

    #[test]
    fn frames_feed_like_text_lines() {
        use tc_trace::{Op, VarId};
        let mut text = open_session();
        let mut framed = open_session();
        let mut out = String::new();
        text.handle_line("t0 w x", &mut out);
        text.handle_line("t1 w x", &mut out);
        assert!(out.is_empty());
        let events = vec![
            Event::new(ThreadId::new(0), Op::Write(VarId::new(0))),
            Event::new(ThreadId::new(1), Op::Write(VarId::new(0))),
        ];
        framed.handle_frame(&events, &mut out);
        assert!(out.is_empty(), "clean frames are silent: {out}");
        assert_eq!(framed.detector().events(), 2);
        assert_eq!(
            framed.detector().report().total,
            text.detector().report().total
        );
        assert_eq!(
            framed.detector().timestamp_of(ThreadId::new(1)),
            text.detector().timestamp_of(ThreadId::new(1))
        );
    }

    #[test]
    fn parallel_frames_match_sequential_sessions() {
        use tc_trace::{Op, VarId};
        let mut seq = open_session();
        let mut par = open_session();
        par.enable_parallel(Arc::new(EpochPool::new(2)), 2);
        // Four independent racy pairs: four epochs.
        let mut events = Vec::new();
        for g in 0..4u32 {
            for _ in 0..8 {
                events.push(Event::new(ThreadId::new(2 * g), Op::Write(VarId::new(g))));
                events.push(Event::new(
                    ThreadId::new(2 * g + 1),
                    Op::Write(VarId::new(g)),
                ));
            }
        }
        let mut out = String::new();
        seq.handle_frame(&events, &mut out);
        par.handle_frame(&events, &mut out);
        assert!(out.is_empty(), "clean frames are silent: {out}");
        assert_eq!(par.parallel_frames(), 1, "the frame must have split");
        assert_eq!(par.detector().report(), seq.detector().report());
        let (mut s_out, mut p_out) = (String::new(), String::new());
        seq.handle_line("poll", &mut s_out);
        par.handle_line("poll", &mut p_out);
        assert_eq!(p_out, s_out, "poll replies must be byte-identical");
        for t in 0..8u32 {
            assert_eq!(
                par.detector().timestamp_of(ThreadId::new(t)),
                seq.detector().timestamp_of(ThreadId::new(t)),
                "thread {t}"
            );
        }
    }

    #[test]
    fn parallel_frame_errors_match_the_sequential_reply() {
        use tc_trace::{LockId, Op, VarId};
        let mut seq = open_session();
        let mut par = open_session();
        par.enable_parallel(Arc::new(EpochPool::new(1)), 2);
        // Index 1 is invalid (release without acquire); the rest feed.
        let events = vec![
            Event::new(ThreadId::new(0), Op::Write(VarId::new(0))),
            Event::new(ThreadId::new(1), Op::Release(LockId::new(0))),
            Event::new(ThreadId::new(1), Op::Write(VarId::new(1))),
            Event::new(ThreadId::new(2), Op::Write(VarId::new(1))),
        ];
        let (mut s_out, mut p_out) = (String::new(), String::new());
        seq.handle_frame(&events, &mut s_out);
        par.handle_frame(&events, &mut p_out);
        assert!(s_out.starts_with("err at 1:"), "{s_out}");
        assert_eq!(p_out, s_out, "error replies must be byte-identical");
        assert_eq!(par.detector().events(), seq.detector().events());
        assert_eq!(par.detector().report(), seq.detector().report());
    }

    #[test]
    fn frame_errors_carry_the_batch_index() {
        use tc_trace::{LockId, Op};
        let mut s = open_session();
        let mut out = String::new();
        // Release without acquire: invalid, rejected, session lives on.
        let events = vec![
            Event::new(ThreadId::new(0), Op::Acquire(LockId::new(0))),
            Event::new(ThreadId::new(1), Op::Release(LockId::new(0))),
        ];
        s.handle_frame(&events, &mut out);
        assert!(out.starts_with("err at 1:"), "{out}");
        assert_eq!(s.detector().events(), 1);
        out.clear();
        s.handle_line("stats", &mut out);
        assert!(out.contains("rejected=1"), "{out}");
    }

    #[test]
    fn clock_choice_parses_both_spellings() {
        assert_eq!("tc".parse::<ClockChoice>().unwrap(), ClockChoice::Tree);
        assert_eq!(
            "vector".parse::<ClockChoice>().unwrap(),
            ClockChoice::Vector
        );
        assert_eq!("hc".parse::<ClockChoice>().unwrap(), ClockChoice::Hybrid);
        assert!("xyz".parse::<ClockChoice>().is_err());
        assert_eq!(ClockChoice::Hybrid.name(), "hybrid");
    }

    #[test]
    fn session_feeds_events_and_reports_races() {
        let mut s = open_session();
        let mut out = String::new();
        assert!(s.handle_line("main w x", &mut out));
        assert!(s.handle_line("worker w x", &mut out));
        assert!(out.is_empty(), "events are silent on success: {out}");
        s.handle_line("poll", &mut out);
        assert!(out.contains("race "), "{out}");
        assert!(out.contains("ok 1 1"), "{out}");
        out.clear();
        s.handle_line("poll", &mut out);
        assert_eq!(out, "ok 0 1\n", "polled races are not re-emitted");
        out.clear();
        s.handle_line("races", &mut out);
        assert!(out.contains("race "), "races replays the stored set");
        out.clear();
        s.handle_line("stats", &mut out);
        assert!(out.contains("events=2"), "{out}");
        assert!(out.contains("races=1"), "{out}");
        out.clear();
        s.handle_line("timestamp main", &mut out);
        assert!(out.starts_with("ok "), "{out}");
        out.clear();
        assert!(!s.handle_line("close", &mut out));
        assert!(out.contains("ok bye"));
    }

    #[test]
    fn malformed_events_error_but_do_not_kill_the_session() {
        let mut s = open_session();
        let mut out = String::new();
        s.handle_line("main frobnicate x", &mut out);
        assert!(out.contains("err "), "{out}");
        out.clear();
        s.handle_line("main rel m", &mut out); // release without acquire
        assert!(out.contains("err invalid event"), "{out}");
        out.clear();
        s.handle_line("main acq m", &mut out);
        assert!(out.is_empty());
        s.handle_line("stats", &mut out);
        assert!(out.contains("events=1"), "{out}");
        assert!(out.contains("rejected=2"), "{out}");
    }

    #[test]
    fn event_prefix_and_bare_lines_are_equivalent() {
        let mut a = open_session();
        let mut b = open_session();
        let mut out = String::new();
        a.handle_line("event main w x", &mut out);
        b.handle_line("main w x", &mut out);
        assert_eq!(a.detector().events(), 1);
        assert_eq!(b.detector().events(), 1);
    }
}
