//! The metric registry: named handles, per-worker histogram shards
//! merged at read time, and the scrape surfaces (Prometheus-style
//! text, chrome://tracing JSON).

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::{Counter, CounterCell, Gauge, GaugeCell, Histogram, HistogramSnapshot};
use crate::spans::{RingCell, SpanRing};

/// Quantiles every histogram reports on scrape.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

struct Inner {
    start: Instant,
    // Linear-scan vectors, not maps: registration happens a handful of
    // times at startup, scrapes are rare, and insertion order gives
    // the exposition a stable shape. The hot path never touches these
    // locks — it holds pre-resolved Arc handles.
    counters: Mutex<Vec<(String, Arc<CounterCell>)>>,
    gauges: Mutex<Vec<(String, Arc<GaugeCell>)>>,
    histograms: Mutex<Vec<(String, Arc<crate::metrics::HistogramCell>)>>,
    rings: Mutex<Vec<Arc<RingCell>>>,
}

/// A registry of named metrics and span rings.
///
/// Counters and gauges registered under the same name share one cell —
/// any thread may bump them (relaxed atomics tolerate the contention).
/// Histograms registered under the same name get a **fresh shard per
/// registration**: each worker records into private cache lines and
/// [`Registry::histogram_snapshot`] merges the shards at read time.
///
/// [`Registry::null`] yields a registry whose handles are all inert —
/// the `NullRecorder` configuration used to measure telemetry's own
/// overhead.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// A live registry; its creation time anchors span offsets and
    /// uptime.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                counters: Mutex::new(Vec::new()),
                gauges: Mutex::new(Vec::new()),
                histograms: Mutex::new(Vec::new()),
                rings: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The null registry: every handle it hands out is a no-op.
    pub fn null() -> Self {
        Registry { inner: None }
    }

    /// Whether this is the null registry.
    pub fn is_null(&self) -> bool {
        self.inner.is_none()
    }

    /// Time since the registry was created (zero for null).
    pub fn uptime(&self) -> Duration {
        self.inner
            .as_ref()
            .map_or(Duration::ZERO, |i| i.start.elapsed())
    }

    /// The counter registered as `name`, creating it on first use.
    /// Same name → same cell.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::null();
        };
        let mut counters = inner.counters.lock().expect("registry lock poisoned");
        let cell = match counters.iter().find(|(n, _)| n == name) {
            Some((_, cell)) => cell.clone(),
            None => {
                let cell = Arc::new(CounterCell::default());
                counters.push((name.to_owned(), cell.clone()));
                cell
            }
        };
        Counter { cell: Some(cell) }
    }

    /// The gauge registered as `name`, creating it on first use. Same
    /// name → same cell.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::null();
        };
        let mut gauges = inner.gauges.lock().expect("registry lock poisoned");
        let cell = match gauges.iter().find(|(n, _)| n == name) {
            Some((_, cell)) => cell.clone(),
            None => {
                let cell = Arc::new(GaugeCell::default());
                gauges.push((name.to_owned(), cell.clone()));
                cell
            }
        };
        Gauge { cell: Some(cell) }
    }

    /// A **new shard** of the histogram named `name`. Each caller
    /// (typically each worker thread) records into its own shard;
    /// scrapes merge every shard registered under the name.
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::null();
        };
        let cell = Arc::new(crate::metrics::HistogramCell::default());
        inner
            .histograms
            .lock()
            .expect("registry lock poisoned")
            .push((name.to_owned(), cell.clone()));
        Histogram { cell: Some(cell) }
    }

    /// A new span ring labeled `label` (a thread name in the trace
    /// export), sharing the registry's epoch.
    pub fn span_ring(&self, label: &str, capacity: usize) -> SpanRing {
        let Some(inner) = &self.inner else {
            return SpanRing::null();
        };
        let cell = Arc::new(RingCell::new(label.to_owned(), capacity));
        inner
            .rings
            .lock()
            .expect("registry lock poisoned")
            .push(cell.clone());
        SpanRing::from_cell(cell, inner.start)
    }

    /// The current value of counter `name` (0 if never registered).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.counters
                .lock()
                .expect("registry lock poisoned")
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, c)| c.get())
        })
    }

    /// The current value of gauge `name` (0 if never registered).
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.gauges
                .lock()
                .expect("registry lock poisoned")
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, g)| g.get())
        })
    }

    /// The merged snapshot of every shard registered under `name`
    /// (empty if none).
    pub fn histogram_snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        if let Some(inner) = &self.inner {
            for (n, cell) in inner
                .histograms
                .lock()
                .expect("registry lock poisoned")
                .iter()
            {
                if n == name {
                    merged.merge(&cell.snapshot());
                }
            }
        }
        merged
    }

    /// Prometheus-style text exposition: counters and gauges as single
    /// samples, histograms as summaries (`quantile="0.5|0.95|0.99"`
    /// series plus `_sum`/`_count`), each metric family preceded by a
    /// `# TYPE` line, the whole document terminated by `# EOF` so it
    /// can be streamed over the line protocol.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        if let Some(inner) = &self.inner {
            let mut last_type: Option<String> = None;
            let mut type_line = |out: &mut String, name: &str, kind: &str| {
                let base = base_name(name).to_owned();
                if last_type.as_deref() != Some(base.as_str()) {
                    out.push_str(&format!("# TYPE {base} {kind}\n"));
                    last_type = Some(base);
                }
            };

            let mut counters: Vec<(String, u64)> = inner
                .counters
                .lock()
                .expect("registry lock poisoned")
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect();
            counters.sort();
            for (name, value) in counters {
                type_line(&mut out, &name, "counter");
                out.push_str(&format!("{name} {value}\n"));
            }

            let mut gauges: Vec<(String, u64)> = inner
                .gauges
                .lock()
                .expect("registry lock poisoned")
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect();
            gauges.sort();
            for (name, value) in gauges {
                type_line(&mut out, &name, "gauge");
                out.push_str(&format!("{name} {value}\n"));
            }

            let mut names: Vec<String> = inner
                .histograms
                .lock()
                .expect("registry lock poisoned")
                .iter()
                .map(|(n, _)| n.clone())
                .collect();
            names.sort();
            names.dedup();
            for name in names {
                let snap = self.histogram_snapshot(&name);
                type_line(&mut out, &name, "summary");
                for (q, label) in QUANTILES {
                    let series = with_label(&name, "quantile", label);
                    out.push_str(&format!("{series} {}\n", snap.quantile(q)));
                }
                let (base, labels) = split_labels(&name);
                out.push_str(&format!("{base}_sum{labels} {}\n", snap.sum));
                out.push_str(&format!("{base}_count{labels} {}\n", snap.count));
            }
        }
        out.push_str("# EOF\n");
        out
    }

    /// The retained spans of every ring as a chrome://tracing JSON
    /// document (`{"traceEvents": [...]}`): one `ph:"M"` thread-name
    /// metadata event per ring, one `ph:"X"` complete event per span,
    /// timestamps in microseconds since the registry epoch. Loadable
    /// in `chrome://tracing` and Perfetto.
    pub fn chrome_trace(&self) -> String {
        let mut events = Vec::new();
        if let Some(inner) = &self.inner {
            let rings = inner.rings.lock().expect("registry lock poisoned");
            for (tid, ring) in rings.iter().enumerate() {
                events.push(format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape_json(&ring.label)
                ));
                for span in ring.snapshot() {
                    events.push(format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"name\":\"{}\",\
                         \"cat\":\"span\",\"ts\":{},\"dur\":{}}}",
                        escape_json(span.name),
                        span.start_us,
                        span.dur_us
                    ));
                }
            }
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
            events.join(",")
        )
    }
}

/// The `NullRecorder`: hands out the disabled [`Registry`] whose
/// handles all compile to a branch-on-`None` no-op. Benching a
/// workload against [`Registry::new`] and [`NullRecorder::registry`]
/// measures exactly what always-on telemetry costs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl NullRecorder {
    /// The disabled registry.
    pub fn registry() -> Registry {
        Registry::null()
    }
}

/// Formats a metric name with label pairs:
/// `labeled("tc_frames_total", &[("wire", "text")])` →
/// `tc_frames_total{wire="text"}`.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_owned();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_json(v)))
        .collect();
    format!("{base}{{{}}}", body.join(","))
}

/// The metric family name: everything before the label block.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Splits `base{labels}` into `("base", "{labels}")` (labels may be
/// empty).
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Adds one `key="value"` label to a possibly-already-labeled name.
fn with_label(name: &str, key: &str, value: &str) -> String {
    match name.strip_suffix('}') {
        Some(open) => format!("{open},{key}=\"{value}\"}}"),
        None => format!("{name}{{{key}=\"{value}\"}}"),
    }
}

/// Minimal JSON/label string escaping (quotes and backslashes; metric
/// names and labels are ASCII identifiers in practice).
fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_by_name_histograms_shard() {
        let reg = Registry::new();
        let a = reg.counter("tc_x_total");
        let b = reg.counter("tc_x_total");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter_value("tc_x_total"), 3);

        let g1 = reg.gauge("tc_depth");
        let g2 = reg.gauge("tc_depth");
        g1.record_max(5);
        g2.record_max(3);
        assert_eq!(reg.gauge_value("tc_depth"), 5);

        // Two registrations, two shards — both visible after merge.
        let h1 = reg.histogram("tc_lat_us");
        let h2 = reg.histogram("tc_lat_us");
        h1.record(10);
        h2.record(10_000);
        let snap = reg.histogram_snapshot("tc_lat_us");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 10_010);
    }

    #[test]
    fn null_registry_hands_out_inert_handles() {
        let reg = NullRecorder::registry();
        assert!(reg.is_null());
        let c = reg.counter("tc_x_total");
        c.add(9);
        reg.histogram("tc_h").record(1);
        reg.span_ring("w0", 8).record("s", 0, 1);
        assert_eq!(reg.counter_value("tc_x_total"), 0);
        assert_eq!(reg.histogram_snapshot("tc_h").count, 0);
        assert_eq!(reg.uptime(), Duration::ZERO);
        assert_eq!(reg.render_prometheus(), "# EOF\n");
        assert_eq!(
            reg.chrome_trace(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn prometheus_exposition_has_types_samples_and_eof() {
        let reg = Registry::new();
        reg.counter(&labeled("tc_frames_total", &[("wire", "text")]))
            .add(3);
        reg.counter(&labeled("tc_frames_total", &[("wire", "frame")]))
            .add(4);
        reg.gauge("tc_queue_high_water").record_max(7);
        let h = reg.histogram("tc_reply_us");
        h.record(100);
        h.record(200);

        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE tc_frames_total counter\n"));
        // One TYPE line covers both labeled series of the family.
        assert_eq!(text.matches("# TYPE tc_frames_total").count(), 1);
        assert!(text.contains("tc_frames_total{wire=\"text\"} 3\n"));
        assert!(text.contains("tc_frames_total{wire=\"frame\"} 4\n"));
        assert!(text.contains("# TYPE tc_queue_high_water gauge\n"));
        assert!(text.contains("tc_queue_high_water 7\n"));
        assert!(text.contains("# TYPE tc_reply_us summary\n"));
        assert!(text.contains("tc_reply_us{quantile=\"0.5\"} 127\n"));
        assert!(text.contains("tc_reply_us{quantile=\"0.99\"} 255\n"));
        assert!(text.contains("tc_reply_us_sum 300\n"));
        assert!(text.contains("tc_reply_us_count 2\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn labeled_histograms_merge_quantile_into_the_label_set() {
        let reg = Registry::new();
        reg.histogram(&labeled("tc_ingest_us", &[("wire", "multi")]))
            .record(50);
        let text = reg.render_prometheus();
        assert!(text.contains("tc_ingest_us{wire=\"multi\",quantile=\"0.5\"} 63\n"));
        assert!(text.contains("tc_ingest_us_sum{wire=\"multi\"} 50\n"));
        assert!(text.contains("tc_ingest_us_count{wire=\"multi\"} 1\n"));
    }

    #[test]
    fn chrome_trace_exports_rings_with_thread_names() {
        let reg = Registry::new();
        let ring = reg.span_ring("worker-0", 8);
        ring.record("partition", 5, 2);
        ring.record("execute", 8, 11);
        let json = reg.chrome_trace();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"args\":{\"name\":\"worker-0\"}"));
        assert!(json.contains(
            "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"partition\",\
             \"cat\":\"span\",\"ts\":5,\"dur\":2}"
        ));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn labeled_formats_and_escapes() {
        assert_eq!(labeled("x", &[]), "x");
        assert_eq!(
            labeled("x", &[("a", "b"), ("c", "d")]),
            "x{a=\"b\",c=\"d\"}"
        );
        assert_eq!(labeled("x", &[("a", "q\"uo")]), "x{a=\"q\\\"uo\"}");
    }
}
