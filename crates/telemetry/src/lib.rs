//! Always-on telemetry for the streaming detection service.
//!
//! The service and the epoch-parallel pipeline are performance
//! subsystems; tuning them (ROADMAP item 1's coordination tax in
//! particular) needs a cost profile, not a guess. This crate is the
//! substrate: metric primitives cheap enough to leave on in the hot
//! ingest path, and a scrape surface that renders them for humans,
//! `nc`, and the bench baseline alike.
//!
//! Three layers:
//!
//! - **Primitives** ([`Counter`], [`Gauge`], [`Histogram`]) — relaxed
//!   atomics only. A counter increment is one `fetch_add(Relaxed)`; a
//!   histogram record is two adds and one bucket add into a fixed
//!   64-slot log₂-bucketed array (HDR-style). Nothing locks, nothing
//!   allocates, recording never blocks a worker.
//! - **Sharding** ([`Registry`]) — counters and gauges registered under
//!   one name share a cell (they are contention-tolerant); histograms
//!   registered under one name get a *fresh shard per registration*,
//!   so each worker records into its own cache lines and shards are
//!   merged only at scrape time ([`Registry::histogram_snapshot`]).
//! - **Spans** ([`SpanRing`]) — fixed-capacity per-thread ring buffers
//!   of named `(start, duration)` intervals, exportable as a
//!   chrome://tracing JSON document ([`Registry::chrome_trace`]).
//!   Rings overwrite their oldest entries on wrap and count what they
//!   dropped — tracing is lossy by design, never unbounded.
//!
//! Every handle has a **null** form ([`Registry::null`] /
//! [`NullRecorder`]) whose operations compile to a branch on a `None`:
//! the overhead question ("what does always-on telemetry cost?") is
//! answered by benching the same workload against an active and a null
//! registry, and the baseline records the delta.
//!
//! Scrape surfaces:
//!
//! - [`Registry::render_prometheus`] — Prometheus-style text
//!   exposition (counters/gauges as single samples, histograms as
//!   summaries with `quantile="0.5|0.95|0.99"` series), terminated
//!   with `# EOF` so a line protocol can stream it.
//! - [`Registry::chrome_trace`] — `{"traceEvents": [...]}`, loadable
//!   in `chrome://tracing` / Perfetto.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod metrics;
mod registry;
mod spans;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{labeled, NullRecorder, Registry};
pub use spans::{SpanRecord, SpanRing, SpanTimer, DEFAULT_RING_CAPACITY};
