//! Lock-free metric primitives: counters, gauges and log₂-bucketed
//! histograms over relaxed atomics.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// Number of histogram buckets. Bucket 0 holds exact zeros; bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`; the last bucket absorbs
/// everything from `2^62` up. 64 buckets cover the full `u64` range,
/// so recording can never overflow the array.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in. Monotone in `v`, total over `u64`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The largest value bucket `i` can hold (the quantile estimate
/// reported for ranks landing in that bucket — HDR-style, quantiles
/// are upper bounds accurate to the bucket's 2× resolution).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug, Default)]
pub(crate) struct CounterCell {
    value: AtomicU64,
}

impl CounterCell {
    pub(crate) fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A monotonically increasing counter. Cloning shares the cell;
/// incrementing is one relaxed `fetch_add`. The null form
/// ([`Counter::null`]) drops every update on the floor.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    pub(crate) cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// A live, standalone counter (unregistered — scrapeable only
    /// through this handle).
    pub fn active() -> Self {
        Counter {
            cell: Some(Arc::new(CounterCell::default())),
        }
    }

    /// A disabled counter: every operation is a no-op.
    pub fn null() -> Self {
        Counter { cell: None }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.value.fetch_add(n, Relaxed);
        }
    }

    /// Current value (0 for a null counter).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.get())
    }
}

#[derive(Debug, Default)]
pub(crate) struct GaugeCell {
    value: AtomicU64,
}

impl GaugeCell {
    pub(crate) fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A last-value / high-water gauge. [`Gauge::set`] overwrites;
/// [`Gauge::record_max`] keeps the maximum ever seen (queue-depth
/// high-water marks); [`Gauge::add`]/[`Gauge::sub`] track live counts
/// (active connections).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    pub(crate) cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// A live, standalone gauge.
    pub fn active() -> Self {
        Gauge {
            cell: Some(Arc::new(GaugeCell::default())),
        }
    }

    /// A disabled gauge: every operation is a no-op.
    pub fn null() -> Self {
        Gauge { cell: None }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.value.store(v, Relaxed);
        }
    }

    /// Raises the value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.value.fetch_max(v, Relaxed);
        }
    }

    /// Increments the value by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.value.fetch_add(n, Relaxed);
        }
    }

    /// Decrements the value by `n` (saturating at the atomic level is
    /// the caller's concern; live-count gauges pair adds with subs).
    #[inline]
    pub fn sub(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.value.fetch_sub(n, Relaxed);
        }
    }

    /// Current value (0 for a null gauge).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.get())
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl HistogramCell {
    #[inline]
    pub(crate) fn record(&self, v: u64) {
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Relaxed)),
        }
    }
}

/// A log₂-bucketed latency/size histogram (one shard). Recording is
/// three relaxed adds into fixed cells; quantiles are computed on
/// scrape from a [`HistogramSnapshot`], never on the hot path.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    pub(crate) cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// A live, standalone single-shard histogram.
    pub fn active() -> Self {
        Histogram {
            cell: Some(Arc::new(HistogramCell::default())),
        }
    }

    /// A disabled histogram: records are dropped, `begin` never reads
    /// the clock.
    pub fn null() -> Self {
        Histogram { cell: None }
    }

    /// Records one value (typically microseconds or a batch size).
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.record(v);
        }
    }

    /// Starts timing an operation. Returns `None` — and skips the
    /// clock read entirely — when the histogram is null.
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.cell.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a [`begin`](Histogram::begin) timing, recording the
    /// elapsed microseconds.
    #[inline]
    pub fn end(&self, started: Option<Instant>) {
        if let (Some(cell), Some(t0)) = (&self.cell, started) {
            cell.record(t0.elapsed().as_micros() as u64);
        }
    }

    /// A point-in-time copy of this shard's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |c| c.snapshot())
    }
}

/// A mergeable, scrape-time view of one or more histogram shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Per-bucket counts (see [`BUCKETS`] for the bucket layout).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// The all-zero snapshot — the identity for [`merge`](Self::merge).
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Folds another shard's snapshot into this one. Bucket counts add
    /// elementwise, so merging the per-worker shards is exactly
    /// equivalent to having recorded every value into a single shard
    /// (property-tested in `tests/hist_prop.rs`).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.wrapping_add(other.count);
        // Wrapping, exactly like the shard's atomic adds: the merged
        // sum stays congruent to single-shard recording even for
        // pathological value streams near `u64::MAX`.
        self.sum = self.sum.wrapping_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.wrapping_add(*o);
        }
    }

    /// The estimated `q`-quantile (`0.0 ≤ q ≤ 1.0`): the upper bound
    /// of the bucket holding the rank-`⌈q·count⌉` value. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// The exact mean of recorded values (unlike the quantiles, `sum`
    /// and `count` carry no bucketing error). 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_cells_across_clones() {
        let c = Counter::active();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::active();
        g.set(7);
        g.record_max(3); // lower: no-op
        assert_eq!(g.get(), 7);
        g.record_max(11);
        assert_eq!(g.get(), 11);
        g.add(2);
        g.sub(3);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn null_handles_are_inert() {
        let c = Counter::null();
        c.inc();
        c.add(100);
        assert_eq!(c.get(), 0);
        let g = Gauge::null();
        g.set(9);
        g.record_max(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::null();
        assert!(h.begin().is_none());
        h.record(42);
        h.end(None);
        assert_eq!(h.snapshot(), HistogramSnapshot::empty());
    }

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Monotone, and every bucket's upper bound lands in the bucket.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_upper(i)), i, "upper bound of {i}");
            assert!(bucket_upper(i) < bucket_upper(i + 1));
        }
    }

    #[test]
    fn histogram_records_count_sum_and_quantiles() {
        let h = Histogram::active();
        for v in [0u64, 1, 1, 2, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1104);
        assert_eq!(s.mean(), 184.0);
        // Rank 3 of 6 at q=0.5 → the second 1 → bucket 1's upper bound.
        assert_eq!(s.quantile(0.5), 1);
        // Rank 6 of 6 → 1000's bucket [512, 1024) → upper bound 1023.
        assert_eq!(s.quantile(0.99), 1023);
        assert_eq!(s.quantile(1.0), 1023);
        // q=0 clamps to rank 1 → the exact-zero bucket.
        assert_eq!(s.quantile(0.0), 0);
    }

    #[test]
    fn empty_snapshot_quantiles_are_zero() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let a = Histogram::active();
        let b = Histogram::active();
        let whole = Histogram::active();
        for v in [3u64, 5, 900] {
            a.record(v);
            whole.record(v);
        }
        for v in [0u64, 7_000_000] {
            b.record(v);
            whole.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
        // Merging the identity changes nothing.
        let before = merged.clone();
        merged.merge(&HistogramSnapshot::empty());
        assert_eq!(merged, before);
    }

    #[test]
    fn quantile_estimates_are_bucket_upper_bounds() {
        let h = Histogram::active();
        for v in 1..=1024u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        // Rank 512 is the value 512 → bucket [512, 1023].
        assert_eq!(p50, 1023);
        assert!(s.quantile(0.95) >= p50);
        assert!(s.quantile(0.99) >= s.quantile(0.95));
    }

    #[test]
    fn timing_records_microseconds() {
        let h = Histogram::active();
        let t = h.begin();
        assert!(t.is_some());
        std::thread::sleep(std::time::Duration::from_millis(2));
        h.end(t);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.sum >= 2_000, "slept 2ms but recorded {}us", s.sum);
    }
}
