//! Lightweight span tracing: fixed-capacity per-thread ring buffers of
//! named intervals, exportable as chrome://tracing JSON.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default span-ring capacity. At one span per frame/phase this holds
/// minutes of history; the ring overwrites its oldest entries beyond
/// that and counts the overwrites ([`SpanRing::dropped`]).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One completed span: a named interval on the thread that owns the
/// ring. Times are microseconds relative to the owning registry's
/// start (standalone rings: the ring's creation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase/operation name (`"partition"`, `"execute"`, …).
    pub name: &'static str,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// The shared state behind a [`SpanRing`] handle. The ring is meant to
/// be owned by one recording thread, so the mutex is uncontended
/// except while an exporter snapshots it.
#[derive(Debug)]
pub(crate) struct RingCell {
    pub(crate) label: String,
    capacity: usize,
    buf: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

impl RingCell {
    pub(crate) fn new(label: String, capacity: usize) -> Self {
        RingCell {
            label,
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, record: SpanRecord) {
        let mut buf = self.buf.lock().expect("span ring lock poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        buf.push_back(record);
    }

    pub(crate) fn snapshot(&self) -> Vec<SpanRecord> {
        self.buf
            .lock()
            .expect("span ring lock poisoned")
            .iter()
            .cloned()
            .collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }
}

/// A handle to one per-thread span ring. Clone-cheap; the null form
/// ([`SpanRing::null`]) never reads the clock.
#[derive(Clone, Debug, Default)]
pub struct SpanRing {
    /// `(cell, epoch)` — the epoch anchors `start_us` offsets.
    pub(crate) inner: Option<(Arc<RingCell>, Instant)>,
}

impl SpanRing {
    /// A live, standalone ring (its epoch is its creation time).
    /// Registered rings come from
    /// [`Registry::span_ring`](crate::Registry::span_ring) and share
    /// the registry's epoch instead.
    pub fn active(label: &str, capacity: usize) -> Self {
        SpanRing {
            inner: Some((
                Arc::new(RingCell::new(label.to_owned(), capacity)),
                Instant::now(),
            )),
        }
    }

    pub(crate) fn from_cell(cell: Arc<RingCell>, epoch: Instant) -> Self {
        SpanRing {
            inner: Some((cell, epoch)),
        }
    }

    /// A disabled ring: spans are dropped, timers never read the clock.
    pub fn null() -> Self {
        SpanRing { inner: None }
    }

    /// Starts a span. Dropping the returned timer records it; use
    /// `let _span = ring.span("phase");` to cover a scope.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanTimer {
        SpanTimer {
            inner: self
                .inner
                .as_ref()
                .map(|(cell, epoch)| (cell.clone(), *epoch, Instant::now())),
            name,
        }
    }

    /// Records a pre-measured span directly (offsets in microseconds
    /// from this ring's epoch).
    pub fn record(&self, name: &'static str, start_us: u64, dur_us: u64) {
        if let Some((cell, _)) = &self.inner {
            cell.push(SpanRecord {
                name,
                start_us,
                dur_us,
            });
        }
    }

    /// The retained spans, oldest first (empty for a null ring).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |(cell, _)| cell.snapshot())
    }

    /// How many spans the ring has overwritten since creation.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |(cell, _)| cell.dropped())
    }
}

/// An in-flight span; dropping it records the elapsed interval into
/// its ring. For a null ring this is a clock-free no-op.
#[derive(Debug)]
pub struct SpanTimer {
    inner: Option<(Arc<RingCell>, Instant, Instant)>,
    name: &'static str,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((cell, epoch, started)) = self.inner.take() {
            let start_us = started.duration_since(epoch).as_micros() as u64;
            let dur_us = started.elapsed().as_micros() as u64;
            cell.push(SpanRecord {
                name: self.name,
                start_us,
                dur_us,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_in_order() {
        let ring = SpanRing::active("t0", 8);
        {
            let _a = ring.span("alpha");
            let _b = ring.span("beta");
            // beta drops first (reverse declaration order).
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "beta");
        assert_eq!(spans[1].name, "alpha");
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_wraps_keeping_the_newest_and_counts_drops() {
        let ring = SpanRing::active("t0", 4);
        for i in 0..10u64 {
            ring.record("tick", i, 1);
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 4, "capacity bounds retention");
        let starts: Vec<u64> = spans.iter().map(|s| s.start_us).collect();
        assert_eq!(starts, vec![6, 7, 8, 9], "oldest entries overwritten");
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn null_ring_is_inert() {
        let ring = SpanRing::null();
        {
            let _s = ring.span("ghost");
        }
        ring.record("ghost", 0, 1);
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn span_offsets_are_anchored_to_the_epoch() {
        let ring = SpanRing::active("t0", 8);
        std::thread::sleep(std::time::Duration::from_millis(2));
        {
            let _s = ring.span("work");
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 1);
        assert!(
            spans[0].start_us >= 2_000,
            "span started {}us after epoch, expected >= 2ms",
            spans[0].start_us
        );
    }
}
