//! Property: sharded recording is invisible at scrape time — merging
//! the snapshots of any shard partition of a value stream equals the
//! snapshot of recording the whole stream into one histogram, and the
//! registry's merged view agrees.

use proptest::prelude::*;
use tc_telemetry::{Histogram, HistogramSnapshot, Registry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shard_merge_equals_single_shard_recording(
        // Values spanning the full bucket range, including zeros.
        values in proptest::collection::vec(0u64..=u64::MAX, 0..200),
        shards in 1usize..6,
    ) {
        // One histogram takes everything; the shards split the stream
        // round-robin (any partition would do — addition commutes).
        let whole = Histogram::active();
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::active()).collect();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            parts[i % shards].record(v);
        }
        let mut merged = HistogramSnapshot::empty();
        for part in &parts {
            merged.merge(&part.snapshot());
        }
        prop_assert_eq!(&merged, &whole.snapshot());

        // The registry path: same name, one shard per registration.
        let reg = Registry::new();
        let handles: Vec<Histogram> =
            (0..shards).map(|_| reg.histogram("tc_prop_us")).collect();
        for (i, &v) in values.iter().enumerate() {
            handles[i % shards].record(v);
        }
        prop_assert_eq!(&reg.histogram_snapshot("tc_prop_us"), &whole.snapshot());

        // Merged quantiles stay within the recorded range's bucket
        // resolution: never below the min, never above the max's
        // bucket upper bound.
        let snap = whole.snapshot();
        if let (Some(&min), Some(&max)) = (values.iter().min(), values.iter().max()) {
            for q in [0.5, 0.95, 0.99] {
                let est = snap.quantile(q);
                prop_assert!(est >= min, "q{q} estimate {est} below min {min}");
                prop_assert!(
                    est == u64::MAX || max == u64::MAX || est < max.saturating_mul(2).max(1),
                    "q{q} estimate {est} beyond max {max}'s bucket"
                );
            }
        }
    }
}
