//! The adaptive flat/tree hybrid clock — a [`LogicalClock`] backend that
//! *is* a flat array while the workload is dense and re-materializes
//! tree links when it turns sparse.
//!
//! # Why a hybrid?
//!
//! The tree clock wins by transferring only the entries that changed;
//! the vector clock wins by being a branchless, vectorizable array
//! sweep. Which one is faster is a property of the *workload*, not the
//! program: dense communication (single-lock joins, pairwise copies —
//! tens to hundreds of entries moving per operation) favors SIMD over
//! pointer chasing by an order of magnitude, while sparse communication
//! at high thread counts (star topologies: one or two entries per
//! operation) favors the tree's sublinear surgery. A [`HybridClock`]
//! holds one of two concrete representations —
//!
//! - **Flat** — a plain dense `Vec<LocalTime>` with vectorizable
//!   join/copy loops and *no* link maintenance at all, plus the owner
//!   thread id (so `leq`, `increment` and the O(1) monotone-copy check
//!   keep working);
//! - **Tree** — the full [`TreeClock`] running Algorithm 2 —
//!
//! and migrates between them based on an observed **density window**.
//!
//! # The density window
//!
//! Every operation contributes an observation `(touched, arena)`:
//! entries surgically moved (tree mode) or changed (flat mode), against
//! the arena size. Two attribution rules matter:
//!
//! - **Joins observe on the destination** (the thread clock doing the
//!   join pays the join's cost in its own representation).
//! - **Copies observe on the source**, because a copied-into clock
//!   (a lock's clock, a last-write clock) *adopts its source's
//!   representation* — so the publishing thread's representation is
//!   what determines every downstream copy's cost. Auxiliary clocks are
//!   often too short-lived to learn anything themselves (a pairwise
//!   lock sees two operations in its whole life); the thread clock is
//!   the long-lived window carrier.
//!
//! Destination-side observations flow through plain `&mut` paths — no
//! interior mutability at all. The copy-*source* hook is the one place
//! a shared reference must record an observation; it funnels into a
//! single packed [`AtomicU64`] (relaxed load/store — a hybrid clock is
//! owned by exactly one engine at a time, the atomic only legalizes
//! the shared-reference write), and the verdict/score/flip bookkeeping
//! it feeds is *deferred* to the clock's next `&mut` entry point
//! (`HybridClock::state_for_mut`, reached on every `increment`).
//! That split is what makes the whole clock `Send` *and* `Sync`: every
//! engine, detector and service session built on it becomes a movable
//! value a work-stealing scheduler can bounce between threads.
//!
//! Observations accumulate over a window of `WINDOW_OPS` operations
//! and the aggregate is judged dense when at least an eighth of the
//! arena moved per operation — approximating the measured cost
//! crossover (a flat sweep costs ~0.2–0.3 ns per slot, the surgical
//! walk ~2–3 ns per moved entry), with a tree-ward bias. Aggregating
//! over a window is what lets mixed profiles resolve correctly: in
//! single-lock workloads the joins are dense and the copies are not; in
//! pairwise workloads the copies are dense and the joins are not; in
//! both cases the *sum* is far past the threshold, and in star
//! workloads it is far below. A hysteresis score over window verdicts
//! (`HYSTERESIS` consecutive net agreements required) keeps a
//! borderline workload from thrashing. Copies into value-empty clocks
//! *are* observed (as the transferred present-entry count): a tree
//! clone writes links *and* times — 6× the bytes of a flat copy — so
//! dense first publications through fresh lock clocks are precisely
//! the pairwise-regime signal that must push a publishing thread
//! toward flat. (A star hub's first spoke-lock publications are a
//! few-hundred-op transient among its hundred thousand sparse
//! operations, far too rare to saturate the hysteresis.) Only the
//! join-into-empty clone is unobserved.
//!
//! While flat, the uncounted join is a pure pointwise-maximum sweep;
//! every `PROBE_PERIOD`-th join (and copy-from-self) runs a
//! *branchless* counting sweep instead to keep the window fed — so a
//! workload turning sparse flips the clock back to tree, with an
//! O(present) star re-materialization ([`TreeClock`]'s own dense fast
//! path produces the same shape, sound for both monotonicity
//! principles).
//!
//! # The dense cutoff
//!
//! Arenas at or below the **dense cutoff** are judged dense regardless
//! of the moved fraction: a flat sweep over a small arena costs a few
//! nanoseconds — cheaper than any surgical walk — so small clocks
//! settle flat even in nominally sparse regimes. The cutoff defaults
//! to [`DEFAULT_DENSE_CUTOFF`] (128 entries — the latency-calibrated
//! value: measured flat-sweep advantage persists to ~128-entry arenas
//! on current hardware, twice the spec-conservative 2-cache-line rule
//! of [`CACHE_LINE_CUTOFF`] this backend shipped with). It is read per
//! clock so benchmarks can calibrate it: the process-wide default is
//! set with [`set_default_dense_cutoff`] (picked up by every clock
//! constructed afterwards) and a single clock can be pinned with
//! [`HybridClock::set_dense_cutoff`]. The cutoff only moves the
//! performance crossover — computed *values* are representation
//! independent at any setting, which the conformance sweep enforces.
//!
//! # Accounting
//!
//! `changed`-entry accounting is exact in both modes (flat counting
//! loops mirror [`VectorClock`](crate::VectorClock), tree mode runs the
//! instrumented Algorithm 2), so the `VTWork` metric remains
//! representation independent across all three backends — the
//! conformance harness checks this on every corpus trace. `examined`
//! honestly reflects whichever representation did the work, so a hybrid
//! run's `ds_work` lands between the tree's and the vector's and is
//! *not* subject to the Theorem 1 bound (that bound is a property of
//! Algorithm 2, which the [`TreeClock`] backend keeps measuring
//! verbatim).
//!
//! # Example
//!
//! ```rust
//! use tc_core::{HybridClock, LogicalClock, ThreadId};
//!
//! let mut a = HybridClock::new();
//! a.init_root(ThreadId::new(0));
//! a.increment(3);
//!
//! let mut b = HybridClock::new();
//! b.init_root(ThreadId::new(1));
//! b.increment(5);
//!
//! a.join(&b);
//! assert_eq!(a.get(ThreadId::new(1)), 5);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::clock::{CopyMode, LogicalClock, OpStats};
use crate::tree_clock::TreeClock;
use crate::{LocalTime, ThreadId, VectorTime};

/// Operations aggregated per density-window verdict. Small enough
/// that a thread clock living only a few dozen operations (short
/// traces, pool-recycled engine lives) still completes several
/// verdicts; the aggregate over even 4 observations already averages
/// out mixed join/copy profiles.
const WINDOW_OPS: u8 = 4;

/// Consecutive net window verdicts required to migrate — the
/// hysteresis band. A workload must look dense (resp. sparse) for this
/// many windows *more* than it looked the other way before the
/// representation flips.
const HYSTERESIS: i8 = 2;

/// In flat mode, only every `PROBE_PERIOD`-th uncounted join (and
/// copy published from this clock) runs the counting sweep that feeds
/// the window; the rest are pure maximum/memcpy sweeps.
const PROBE_PERIOD: u8 = 16;

/// In tree mode the per-op moved counts are free, but the window
/// bookkeeping itself (accumulator update, arena reads) is not — and
/// sparse-regime tree operations are so cheap (~10 ns) that observing
/// every one costs a measurable fraction. Only every
/// `tree_obs_period`-th operation is observed; the skip itself is one
/// counter decrement. Widened from the original 2 after the star-360
/// ingest measurement showed the sparser sampling shaves observation
/// overhead with no measurable loss of migration responsiveness
/// (`tcr bench`'s `obs-period` cell carries the A/B numbers).
/// Per-clock ([`HybridClock::set_tree_obs_period`]) and per-pool
/// ([`crate::ClockPool::set_tree_obs_period`]) runtime overrides move
/// it without recompiling.
pub const DEFAULT_TREE_OBS_PERIOD: u8 = 4;

/// The spec-conservative dense cutoff this backend shipped with: two
/// 64-byte cache lines of `LocalTime`s. Kept as the documented lower
/// anchor of the calibration range (`tcr bench` measures the delta
/// between this and the calibrated default).
pub const CACHE_LINE_CUTOFF: u64 = (2 * 64 / std::mem::size_of::<LocalTime>()) as u64;

/// The latency-calibrated default dense cutoff: flat sweeps keep
/// beating the surgical walk to ~128-entry arenas (ROADMAP item 5's
/// measurement), so arenas at or below this settle flat.
pub const DEFAULT_DENSE_CUTOFF: u64 = 128;

/// The process-wide default dense cutoff, picked up by every
/// [`HybridClock`] at construction.
static GLOBAL_DENSE_CUTOFF: AtomicU64 = AtomicU64::new(DEFAULT_DENSE_CUTOFF);

/// The process-wide default dense cutoff (in arena entries) newly
/// constructed hybrid clocks adopt.
pub fn default_dense_cutoff() -> u64 {
    GLOBAL_DENSE_CUTOFF.load(Ordering::Relaxed)
}

/// Sets the process-wide default dense cutoff (clamped to ≥ 1).
/// Existing clocks keep the cutoff they were constructed with; values
/// are representation independent at any setting, so this only moves
/// the performance crossover (used by `tcr bench`'s calibration pass).
///
/// The global is process-wide mutable state: anything that sets it
/// temporarily — tests, calibration sweeps — should hold a
/// [`DenseCutoffGuard`] instead of pairing set/restore calls by hand,
/// so a panic in between cannot poison every later hybrid
/// construction. Steady-state tuning of a single detector should
/// prefer the per-clock ([`HybridClock::set_dense_cutoff`]) or
/// per-pool ([`crate::ClockPool::set_dense_cutoff`]) knobs, which
/// don't touch the global at all.
pub fn set_default_dense_cutoff(entries: u64) {
    GLOBAL_DENSE_CUTOFF.store(entries.max(1), Ordering::Relaxed);
}

/// RAII override of the process-wide default dense cutoff: sets it on
/// construction, restores the *previous* value on drop — panic-safe,
/// and nestable (inner guards restore what the outer guard set).
///
/// This is the only sanctioned way for tests and calibration passes to
/// mutate the global; note that the global stays process-wide, so
/// concurrently running hybrid tests still observe the override while
/// the guard lives (values are representation independent at any
/// cutoff, so only performance counters can wobble).
#[must_use = "the override ends when the guard drops"]
#[derive(Debug)]
pub struct DenseCutoffGuard {
    prev: u64,
}

impl DenseCutoffGuard {
    /// Overrides the process-wide default dense cutoff (clamped to
    /// ≥ 1) until the guard drops.
    pub fn set(entries: u64) -> DenseCutoffGuard {
        DenseCutoffGuard {
            prev: GLOBAL_DENSE_CUTOFF.swap(entries.max(1), Ordering::Relaxed),
        }
    }
}

impl Drop for DenseCutoffGuard {
    fn drop(&mut self) {
        GLOBAL_DENSE_CUTOFF.store(self.prev, Ordering::Relaxed);
    }
}

/// Aggregate verdict over a window of `ops` observations: dense when
/// the arena is flat-cheap outright (the *per-operation* arena is at
/// most `cutoff` entries — the sums are compared, so the cutoff scales
/// by the op count) or at least an eighth of it moved per operation
/// (see the module docs for the cost-crossover rationale).
#[inline]
fn is_dense(touched: u64, arena: u64, ops: u64, cutoff: u64) -> bool {
    arena <= cutoff.saturating_mul(ops.max(1)) || touched.saturating_mul(8) >= arena
}

/// Bit 0 of [`HybridClock::state`]: the flat representation is live.
const ST_FLAT: u8 = 1;
/// Bit 1 of the state word: a tree→flat migration is pending.
const ST_FLIP_TO_FLAT: u8 = 1 << 1;
/// Bit 2 of the state word: a flat→tree migration is pending.
const ST_FLIP_TO_TREE: u8 = 1 << 2;
/// Both pending-flip bits of the state word.
const ST_FLIP_MASK: u8 = ST_FLIP_TO_FLAT | ST_FLIP_TO_TREE;

/// The represented time at `idx` in a dense slice (0 past the end).
#[inline]
fn time_at(times: &[LocalTime], idx: u32) -> LocalTime {
    times.get(idx as usize).copied().unwrap_or(0)
}

/// Counts index positions whose values differ between two dense value
/// slices (used for exact `changed` accounting of wholesale copies).
fn count_diffs(old: &[LocalTime], new: &[LocalTime]) -> u64 {
    let shared = old.len().min(new.len());
    let mut diffs = 0u64;
    for i in 0..shared {
        diffs += u64::from(old[i] != new[i]);
    }
    for &t in &old[shared..] {
        diffs += u64::from(t != 0);
    }
    for &t in &new[shared..] {
        diffs += u64::from(t != 0);
    }
    diffs
}

// ---- the shared observation word ------------------------------------
//
// Copy *sources* observe through `&self`, so their contribution funnels
// into one packed atomic word (everything destination-side is plain
// `&mut` state). Layout:
//
//   bits  0–26  summed moved/changed entries
//   bits 27–53  summed arena slots
//   bits 54–56  operation count (saturates at 7; WINDOW_OPS is 4)
//   bits 57–61  copy-probe countdown
//
// 27-bit sums over ≤7 ops capped at 2²⁴ slots each cannot overflow
// their field, and the op count saturating at 7 protects the probe
// bits. All accesses are `Ordering::Relaxed` loads and stores — a
// hybrid clock is owned by exactly one engine at any moment (enforced
// by the service's session checkout); the atomic exists to make the
// shared-reference hook legal, not to synchronize concurrent writers.

/// Field mask for the moved and arena sums of the shared word.
const SH_FIELD: u64 = (1 << 27) - 1;
/// Bit offset of the arena sum.
const SH_ARENA: u32 = 27;
/// Bit offset and mask of the op count.
const SH_OPS: u32 = 54;
const SH_OPS_MASK: u64 = 0x7;
/// One operation, pre-shifted.
const SH_OP_ONE: u64 = 1 << SH_OPS;
/// Bit offset and mask of the copy-probe countdown.
const SH_PROBE: u32 = 57;
const SH_PROBE_MASK: u64 = 0x1f;
/// Per-operation contribution cap for either sum.
const SH_CAP: u64 = 1 << 24;

/// Packs one observation into `word` (pure; the caller stores it).
#[inline]
fn pack_obs(word: u64, touched: u64, arena: u64) -> u64 {
    word + SH_OP_ONE + (arena.min(SH_CAP) << SH_ARENA) + touched.min(SH_CAP)
}

/// The op count currently packed in `word`.
#[inline]
fn packed_ops(word: u64) -> u64 {
    (word >> SH_OPS) & SH_OPS_MASK
}

/// The density window: the packed shared observation word plus the
/// plain `&mut`-path bookkeeping (hysteresis score, flat-join probe).
#[derive(Debug, Default)]
struct DensityWindow {
    /// The packed shared word (see the layout above) — the single
    /// atomic in the whole clock, fed by the copy-source hook through
    /// `&self` and harvested on the next `&mut` entry point.
    shared: AtomicU64,
    /// Hysteresis accumulator over window verdicts, in
    /// `[-HYSTERESIS, HYSTERESIS]`. Plain field: only `&mut` paths
    /// judge windows.
    score: i8,
    /// Flat mode: uncounted joins until the next counting probe
    /// (plain field: join destinations are `&mut`).
    join_probe: u8,
}

impl Clone for DensityWindow {
    fn clone(&self) -> Self {
        DensityWindow {
            shared: AtomicU64::new(self.shared.load(Ordering::Relaxed)),
            score: self.score,
            join_probe: self.join_probe,
        }
    }
}

impl DensityWindow {
    /// The recycling reset: discards the partial window and probe
    /// countdowns, but *keeps the hysteresis score* — a pooled clock
    /// re-entering the same workload (the next benchmark repetition,
    /// the next case of a sweep) resumes learning where it left off
    /// instead of starting the hysteresis climb from zero. On a short
    /// trace a thread clock may see too few operations to saturate in
    /// a single life; carrying the score across lives is what lets it
    /// converge anyway — and a clock recycled into a different-density
    /// role walks the score back within one hysteresis period.
    fn reset_for_recycle(&mut self) {
        *self.shared.get_mut() = 0;
        self.join_probe = 0;
    }
}

/// An adaptive clock holding either a flat array or a [`TreeClock`],
/// migrating on observed operation density. See the [module
/// docs](self).
#[derive(Clone)]
pub struct HybridClock {
    /// The tree representation — authoritative unless the state word's
    /// [`ST_FLAT`] bit is set; kept (empty, buffers warm) while flat so
    /// a dense→sparse flip allocates nothing.
    tree: TreeClock,
    /// The flat representation — authoritative while [`ST_FLAT`] is
    /// set; kept (length 0, capacity warm) while the tree is live.
    flat: Vec<LocalTime>,
    /// The owner (root) thread while *flat* (the tree knows its own
    /// root; keeping a mirror in tree mode would cost a store on every
    /// join/copy for nothing). Read through
    /// [`root_of`](Self::root_of), which picks the live source.
    root: Option<ThreadId>,
    /// The packed state word: bit 0 ([`ST_FLAT`]) says which
    /// representation is live, bits 1–2 ([`ST_FLIP_MASK`]) hold a
    /// pending migration request. A plain field: flips are only ever
    /// requested and executed on `&mut` paths (shared-hook
    /// observations defer their verdict to the next `&mut` entry).
    state: u8,
    /// Tree-mode joins to skip before the next window observation.
    obs_skip: u8,
    /// This clock's dense cutoff (arena entries at or below it are
    /// flat-cheap by fiat), adopted from [`default_dense_cutoff`] at
    /// construction.
    dense_cutoff: u64,
    /// Tree-mode observation sampling period (every `obs_period`-th
    /// join/copy feeds the density window), adopted from
    /// [`DEFAULT_TREE_OBS_PERIOD`] at construction.
    obs_period: u8,
    /// The density window driving migration.
    window: DensityWindow,
    /// Tree→flat migrations performed (diagnostics/tests).
    flips_to_flat: u32,
    /// Flat→tree migrations performed (diagnostics/tests).
    flips_to_tree: u32,
}

impl Default for HybridClock {
    fn default() -> Self {
        HybridClock {
            tree: TreeClock::default(),
            flat: Vec::new(),
            root: None,
            state: 0,
            obs_skip: 0,
            dense_cutoff: default_dense_cutoff(),
            obs_period: DEFAULT_TREE_OBS_PERIOD,
            window: DensityWindow::default(),
            flips_to_flat: 0,
            flips_to_tree: 0,
        }
    }
}

impl HybridClock {
    /// Creates an empty hybrid clock (tree representation).
    pub fn new() -> Self {
        HybridClock::default()
    }

    /// `true` while the flat (dense) representation is live.
    pub fn is_flat(&self) -> bool {
        self.state & ST_FLAT != 0
    }

    /// Internal shorthand for the mode bit of the state word.
    #[inline]
    fn flat(&self) -> bool {
        self.state & ST_FLAT != 0
    }

    /// Number of (tree→flat, flat→tree) migrations this clock has
    /// performed — the quantity the hysteresis tests bound.
    pub fn flips(&self) -> (u32, u32) {
        (self.flips_to_flat, self.flips_to_tree)
    }

    /// The live representation's name (`"flat"` or `"tree"`).
    pub fn repr_name(&self) -> &'static str {
        if self.flat() {
            "flat"
        } else {
            "tree"
        }
    }

    /// This clock's dense cutoff (see the module docs).
    pub fn dense_cutoff(&self) -> u64 {
        self.dense_cutoff
    }

    /// Overrides this clock's dense cutoff (clamped to ≥ 1). Values
    /// are representation independent at any setting.
    pub fn set_dense_cutoff(&mut self, entries: u64) {
        self.dense_cutoff = entries.max(1);
    }

    /// This clock's tree-mode observation sampling period.
    pub fn tree_obs_period(&self) -> u8 {
        self.obs_period
    }

    /// Overrides this clock's tree-mode observation sampling period
    /// (clamped to ≥ 1; 1 observes every operation). Values are
    /// representation independent at any setting — the period only
    /// trades migration responsiveness against per-op bookkeeping.
    pub fn set_tree_obs_period(&mut self, period: u8) {
        self.obs_period = period.max(1);
    }

    /// The represented time at raw index `i`, whichever representation
    /// is live.
    #[inline]
    fn value_at(&self, i: u32) -> LocalTime {
        if self.flat() {
            time_at(&self.flat, i)
        } else {
            self.tree.get_idx(i)
        }
    }

    /// The dense value slice of the live representation.
    #[inline]
    fn value_slice(&self) -> &[LocalTime] {
        if self.flat() {
            &self.flat
        } else {
            self.tree.times()
        }
    }

    /// The owner thread, from whichever representation is live.
    #[inline]
    fn root_of(&self) -> Option<ThreadId> {
        if self.flat() {
            self.root
        } else {
            self.tree.root_tid()
        }
    }

    /// O(1) emptiness screen: a flat clock without an owner has never
    /// been published into (values only arrive through rooted sources),
    /// a tree clock is empty iff it has no root.
    #[inline]
    fn fast_empty(&self) -> bool {
        if self.flat() {
            self.root.is_none()
        } else {
            self.tree.is_empty()
        }
    }

    // ---- density window ----------------------------------------------

    /// Feeds one destination-side observation (`touched` entries
    /// against `arena` slots) into the window — a plain `&mut` path:
    /// accumulate, and judge the window immediately once it is full.
    fn observe_mut(&mut self, touched: u64, arena: u64) {
        let w = self.window.shared.get_mut();
        *w = pack_obs(*w, touched, arena);
        if packed_ops(*w) >= u64::from(WINDOW_OPS) {
            self.harvest();
        }
    }

    /// The copy-*source* hook: the one observation that arrives
    /// through a shared reference. A single packed relaxed
    /// load-add-store; the verdict is deferred to the next `&mut`
    /// entry point ([`state_for_mut`](Self::state_for_mut)). Saturates
    /// at 7 pending ops (further shared observations are dropped until
    /// harvested — they are probe-sampled anyway).
    fn observe_shared(&self, touched: u64, arena: u64) {
        let cur = self.window.shared.load(Ordering::Relaxed);
        if packed_ops(cur) < SH_OPS_MASK {
            self.window
                .shared
                .store(pack_obs(cur, touched, arena), Ordering::Relaxed);
        }
    }

    /// Ticks the copy-probe countdown through `&self` (relaxed
    /// load/store on the shared word). Returns `true` when the probe
    /// fires, re-arming it to `reset`.
    fn copy_probe_tick(&self, reset: u8) -> bool {
        let cur = self.window.shared.load(Ordering::Relaxed);
        let probe = (cur >> SH_PROBE) & SH_PROBE_MASK;
        let next = if probe == 0 {
            (cur & !(SH_PROBE_MASK << SH_PROBE)) | (u64::from(reset) << SH_PROBE)
        } else {
            cur - (1 << SH_PROBE)
        };
        self.window.shared.store(next, Ordering::Relaxed);
        probe == 0
    }

    /// Judges the completed window: resets the accumulator (keeping
    /// the probe countdown), walks the hysteresis score, and requests
    /// a representation flip by setting a pending state bit once the
    /// score saturates. Always on a `&mut` path.
    fn harvest(&mut self) {
        let w = self.window.shared.get_mut();
        let acc = *w;
        *w = acc & (SH_PROBE_MASK << SH_PROBE);
        let dense = is_dense(
            acc & SH_FIELD,
            (acc >> SH_ARENA) & SH_FIELD,
            packed_ops(acc),
            self.dense_cutoff,
        );
        let mut score = self.window.score;
        if dense {
            score = (score + 1).min(HYSTERESIS);
            if score >= HYSTERESIS && self.state & ST_FLAT == 0 {
                self.state |= ST_FLIP_TO_FLAT;
                score = 0;
            }
        } else {
            score = (score - 1).max(-HYSTERESIS);
            if score <= -HYSTERESIS && self.state & ST_FLAT != 0 {
                self.state |= ST_FLIP_TO_TREE;
                score = 0;
            }
        }
        self.window.score = score;
    }

    /// The hot-path state read: harvests a full window left behind by
    /// shared-reference observations, executes a pending
    /// representation flip, and returns the state word. Called from
    /// `increment`, the one guaranteed `&mut` touch per engine event
    /// (which keeps verdicts and flips prompt even when the saturating
    /// observation came from a copy through `&self`).
    #[inline]
    fn state_for_mut(&mut self) -> u8 {
        if packed_ops(*self.window.shared.get_mut()) >= u64::from(WINDOW_OPS) {
            self.harvest();
        }
        if self.state & ST_FLIP_MASK == 0 {
            return self.state;
        }
        self.execute_flip()
    }

    /// The out-of-line flip executor: clears the pending bits and
    /// performs the migration the window requested.
    #[cold]
    fn execute_flip(&mut self) -> u8 {
        let s = self.state;
        self.state = s & !ST_FLIP_MASK;
        if s & ST_FLIP_TO_FLAT != 0 && s & ST_FLAT == 0 {
            self.flip_to_flat();
        } else if s & ST_FLIP_TO_TREE != 0 && s & ST_FLAT != 0 && self.root.is_some() {
            self.flip_to_tree();
        }
        self.state
    }

    /// Tree→flat: the values *are* the tree's dense times array; the
    /// links are simply dropped (O(present) teardown). The tree keeps
    /// its arena buffers for the flip back.
    fn flip_to_flat(&mut self) {
        self.root = self.tree.root_tid();
        self.flat.clear();
        self.flat.extend_from_slice(self.tree.times());
        self.tree.clear();
        self.state |= ST_FLAT;
        self.window.join_probe = 0;
        *self.window.shared.get_mut() &= !(SH_PROBE_MASK << SH_PROBE);
        self.flips_to_flat += 1;
    }

    /// Flat→tree: re-materializes the tree as the star shape (every
    /// known thread directly under the root at the root's current time
    /// — link work O(present); see [`TreeClock::adopt_flat`]). A
    /// rootless clock stays flat: there is no thread to hang the star
    /// under (never the case for the thread clocks that carry windows).
    fn flip_to_tree(&mut self) {
        let Some(r) = self.root else {
            return;
        };
        self.tree.adopt_flat(&self.flat, r.raw());
        self.flat.clear();
        self.state &= !ST_FLAT;
        self.flips_to_tree += 1;
    }

    // ---- join --------------------------------------------------------

    #[inline]
    fn join_dispatch<const COUNT: bool>(&mut self, other: &Self) -> OpStats {
        match (self.flat(), other.flat()) {
            (false, false) => {
                let s = self.tree.join_impl::<COUNT>(&other.tree);
                if self.obs_skip > 0 {
                    self.obs_skip -= 1;
                } else {
                    // The uncounted tree join reports its surgically
                    // moved entry count in `moved` (and nothing else)
                    // — exactly the density observation; the counted
                    // join's `moved` is the same quantity, measured by
                    // Algorithm 2.
                    self.obs_skip = self.obs_period - 1;
                    let arena = self.tree.num_threads().max(other.tree.num_threads()) as u64;
                    self.observe_mut(s.moved, arena);
                }
                if COUNT {
                    s
                } else {
                    OpStats::NOOP
                }
            }
            (false, true) => self.tree_join_flat::<COUNT>(other),
            (true, _) => self.flat_join_slice_src::<COUNT>(other.value_slice()),
        }
    }

    /// Tree destination ⊔ flat source: pointwise maximum on the dense
    /// arrays, then a flat re-attachment under the destination's root.
    fn tree_join_flat<const COUNT: bool>(&mut self, other: &Self) -> OpStats {
        let Some(or) = other.root else {
            // A rootless flat clock is empty by construction (values
            // only ever arrive through rooted sources): no-op join.
            debug_assert!(other.flat.iter().all(|&t| t == 0));
            return OpStats::NOOP;
        };
        let src = &other.flat;
        let Some(z) = self.tree.root_idx() else {
            // Join into an empty clock: an exact copy, root included
            // (not observed: repr-neutral bulk transfer).
            let mut stats = OpStats::NOOP;
            if COUNT {
                for &t in src {
                    stats.examined += 1;
                    if t != 0 {
                        stats.changed += 1;
                        stats.moved += 1;
                    }
                }
            }
            self.tree.adopt_flat(src, or.raw());
            return stats;
        };
        assert!(
            time_at(src, z) <= self.tree.get_idx(z),
            "HybridClock::join: `other` has progressed on self's root thread {} — \
             this cannot happen in a causal ordering (misuse of the clock)",
            ThreadId::new(z),
        );
        let arena = self.tree.num_threads().max(src.len()) as u64;
        if time_at(src, or.raw()) <= self.tree.get_idx(or.raw()) {
            // Source root has not progressed: nothing new (direct
            // monotonicity) — same O(1) screen the tree join applies.
            let mut stats = OpStats::NOOP;
            if COUNT {
                stats.examined = 1;
            }
            self.observe_mut(0, arena);
            return stats;
        }
        let changed = self.tree.flat_join_slice(src, z);
        self.observe_mut(changed, arena);
        if COUNT {
            OpStats {
                examined: src.len() as u64,
                changed,
                moved: changed,
            }
        } else {
            OpStats::NOOP
        }
    }

    /// Flat destination ⊔ any source (presented as a dense slice): the
    /// vectorizable pointwise maximum. The uncounted path counts
    /// nothing on most joins and runs a branchless counting sweep every
    /// [`PROBE_PERIOD`]-th call to feed the density window.
    fn flat_join_slice_src<const COUNT: bool>(&mut self, src: &[LocalTime]) -> OpStats {
        if let Some(r) = self.root {
            assert!(
                time_at(src, r.raw()) <= time_at(&self.flat, r.raw()),
                "HybridClock::join: `other` has progressed on self's root thread {r} — \
                 this cannot happen in a causal ordering (misuse of the clock)",
            );
        }
        if src.len() > self.flat.len() {
            self.flat.resize(src.len(), 0);
        }
        let arena = self.flat.len() as u64;
        if COUNT {
            let mut stats = OpStats::NOOP;
            for (mine, &theirs) in self.flat.iter_mut().zip(src.iter()) {
                stats.examined += 1;
                let progressed = theirs > *mine;
                *mine = (*mine).max(theirs);
                stats.changed += u64::from(progressed);
                stats.moved += u64::from(progressed);
            }
            self.observe_mut(stats.changed, arena);
            return stats;
        }
        if self.window.join_probe == 0 {
            // Density probe: a branchless counting sweep (compare +
            // max + widen-accumulate, vectorized like the plain sweep;
            // a branchy `if` here would mispredict on every other
            // entry in the dense regime), feeding the window so a
            // workload turning sparse flips back to tree.
            let mut changed = 0u64;
            for (mine, &theirs) in self.flat.iter_mut().zip(src.iter()) {
                changed += u64::from(theirs > *mine);
                *mine = (*mine).max(theirs);
            }
            self.window.join_probe = PROBE_PERIOD - 1;
            self.observe_mut(changed, arena);
        } else {
            self.window.join_probe -= 1;
            // The pure sweep: branchless max the compiler vectorizes —
            // the whole point of the flat regime.
            for (mine, &theirs) in self.flat.iter_mut().zip(src.iter()) {
                *mine = (*mine).max(theirs);
            }
        }
        OpStats::NOOP
    }

    // ---- copy --------------------------------------------------------

    /// Makes `self` represent exactly `other`'s value, adopting
    /// `other`'s representation (a copied-into clock mirrors its
    /// source: lock and last-write clocks follow their publishing
    /// thread's regime, which is what makes the publishing thread's
    /// window the right owner of the copy observation). `monotone`
    /// selects the surgical tree copy on the tree×tree path; the
    /// wholesale flat paths are identical either way. Returns exact
    /// [`OpStats`] when `COUNT`: `changed` compares against `self`'s
    /// *old* value, whichever representation held it.
    #[inline]
    fn perform_copy<const COUNT: bool>(&mut self, other: &Self, monotone: bool) -> OpStats {
        if !self.flat() && !other.flat() {
            let s = if monotone {
                self.tree.monotone_copy_impl::<COUNT>(&other.tree)
            } else {
                self.tree.clone_structure_from::<COUNT>(&other.tree)
            };
            if monotone {
                // The surgical copy's moved count (transferred present
                // entries, for a first copy into an empty clock) is the
                // observation — attributed to the *source* (see the
                // module docs), sampled at the source's observation
                // period through its shared probe. Bulk transfers
                // matter too: a tree clone writes 6× the bytes of a
                // flat copy (links + times vs times alone), so dense
                // first copies into fresh lock clocks are exactly what
                // must push a publishing thread toward flat.
                if other.copy_probe_tick(other.obs_period - 1) {
                    let arena = self.num_threads().max(other.num_threads()) as u64;
                    other.observe_shared(s.moved, arena);
                }
            }
            return s;
        }
        let arena = self.num_threads().max(other.num_threads()) as u64;
        if other.flat() {
            // Destination becomes flat: a wholesale array copy.
            let src = &other.flat;
            let mut stats = OpStats::NOOP;
            if COUNT {
                let changed = count_diffs(self.value_slice(), src);
                stats.examined = (self.num_threads().max(src.len())) as u64;
                stats.changed = changed;
                stats.moved = changed;
                other.observe_shared(changed, arena);
            } else {
                // Probe the copy density on the source's window.
                if other.copy_probe_tick(PROBE_PERIOD - 1) {
                    other.observe_shared(count_diffs(self.value_slice(), src), arena);
                }
            }
            if !self.flat() {
                self.tree.clear();
                self.state |= ST_FLAT;
            }
            self.flat.clear();
            self.flat.extend_from_slice(src);
            self.root = other.root;
            return stats;
        }
        // Flat destination becomes a tree replica of the source — the
        // transitional path while regimes disagree; the wholesale
        // rebuild is O(k + present) and the diff count rides along.
        let changed = count_diffs(&self.flat, other.tree.times());
        other.observe_shared(changed, arena);
        self.flat.clear();
        self.state &= !ST_FLAT;
        if !self.tree.is_empty() {
            self.tree.clear();
        }
        self.tree.clone_structure_from::<false>(&other.tree);
        if COUNT {
            OpStats {
                examined: arena,
                changed,
                moved: changed,
            }
        } else {
            OpStats::NOOP
        }
    }

    #[inline]
    fn copy_dispatch<const COUNT: bool>(&mut self, other: &Self) -> OpStats {
        if !self.flat() && !other.flat() {
            // The tree×tree fast path: the inner implementation
            // performs the same precondition and empty-source checks,
            // so the hybrid layer adds nothing but the observation.
            return self.perform_copy::<COUNT>(other, true);
        }
        if let Some(r) = self.root_of() {
            assert!(
                self.value_at(r.raw()) <= other.value_at(r.raw()),
                "HybridClock::monotone_copy: self ⋢ other on self's root thread {r} — \
                 use copy_check_monotone for unordered copies",
            );
        }
        if other.fast_empty() && other.value_slice().iter().all(|&t| t == 0) {
            // Copying an empty clock: only valid into an empty clock
            // (mirrors TreeClock::monotone_copy).
            assert!(
                self.is_empty(),
                "HybridClock::monotone_copy: copying an empty clock into a non-empty \
                 one violates the precondition self ⊑ other"
            );
            return OpStats::NOOP;
        }
        self.perform_copy::<COUNT>(other, true)
    }

    /// The shared `CopyCheckMonotone` logic: an O(1) ordering test, then
    /// either the monotone copy or a deep replacement.
    fn copy_check_dispatch<const COUNT: bool>(&mut self, other: &Self) -> (CopyMode, OpStats) {
        let monotone = self.leq(other);
        if other.fast_empty() && other.value_slice().iter().all(|&t| t == 0) {
            if self.is_empty() {
                return (CopyMode::Monotone, OpStats::NOOP);
            }
            // Deep-copying an empty value: become empty.
            let stats = self.perform_copy::<COUNT>(other, false);
            return (CopyMode::Deep, stats);
        }
        let stats = self.perform_copy::<COUNT>(other, monotone);
        (
            if monotone {
                CopyMode::Monotone
            } else {
                CopyMode::Deep
            },
            stats,
        )
    }
}

impl LogicalClock for HybridClock {
    const NAME: &'static str = "hybrid";

    fn new() -> Self {
        HybridClock::default()
    }

    fn with_threads(threads: usize) -> Self {
        HybridClock {
            tree: TreeClock::with_threads(threads),
            ..HybridClock::default()
        }
    }

    fn init_root(&mut self, t: ThreadId) {
        assert!(
            self.is_empty(),
            "HybridClock::init_root: clock already initialized"
        );
        if self.flat() {
            // A recycled clock kept its learned flat representation:
            // root directly in the flat array (a pool-recycled thread
            // clock re-entering the same dense workload skips the
            // whole re-learning phase this way).
            let i = t.index();
            if i >= self.flat.len() {
                self.flat.resize(i + 1, 0);
            }
            self.root = Some(t);
        } else {
            self.tree.init_root(t);
        }
    }

    fn root_tid(&self) -> Option<ThreadId> {
        self.root_of()
    }

    fn tune_dense_cutoff(&mut self, entries: u64) {
        self.set_dense_cutoff(entries);
    }

    fn tune_tree_obs_period(&mut self, period: u8) {
        self.set_tree_obs_period(period);
    }

    #[inline]
    fn get(&self, t: ThreadId) -> LocalTime {
        self.value_at(t.raw())
    }

    #[inline]
    fn increment(&mut self, amount: LocalTime) {
        // `increment` is the hottest entry point, but it is also the
        // only guaranteed `&mut` touch of a thread that acts purely as
        // a copy *source* (a publisher whose acquires all hit fresh
        // lazy locks) — without harvesting shared-hook observations and
        // executing pending flips here, such a thread's window would
        // never be judged.
        let s = self.state_for_mut();
        if s & ST_FLAT != 0 {
            let root = self
                .root
                .expect("HybridClock::increment: clock has no root thread");
            let i = root.index();
            if i >= self.flat.len() {
                self.flat.resize(i + 1, 0);
            }
            self.flat[i] += amount;
        } else {
            self.tree.increment(amount);
        }
    }

    /// O(1) root-entry comparison, exactly as for the tree clock (the
    /// flat representation keeps the owner around for this).
    fn leq(&self, other: &Self) -> bool {
        match self.root_of() {
            None => true,
            Some(r) => self.value_at(r.raw()) <= other.value_at(r.raw()),
        }
    }

    #[inline]
    fn join(&mut self, other: &Self) {
        self.join_dispatch::<false>(other);
    }

    fn join_counted(&mut self, other: &Self) -> OpStats {
        self.join_dispatch::<true>(other)
    }

    #[inline]
    fn monotone_copy(&mut self, other: &Self) {
        self.copy_dispatch::<false>(other);
    }

    fn monotone_copy_counted(&mut self, other: &Self) -> OpStats {
        self.copy_dispatch::<true>(other)
    }

    fn copy_check_monotone(&mut self, other: &Self) -> CopyMode {
        self.copy_check_dispatch::<false>(other).0
    }

    fn copy_check_monotone_counted(&mut self, other: &Self) -> (CopyMode, OpStats) {
        self.copy_check_dispatch::<true>(other)
    }

    fn vector_time(&self) -> VectorTime {
        if self.flat() {
            VectorTime::from(self.flat.clone())
        } else {
            self.tree.vector_time()
        }
    }

    fn is_empty(&self) -> bool {
        if self.flat() {
            self.root.is_none() && self.flat.iter().all(|&t| t == 0)
        } else {
            self.tree.is_empty()
        }
    }

    fn num_threads(&self) -> usize {
        if self.flat() {
            self.flat.len()
        } else {
            self.tree.num_threads()
        }
    }

    /// Resets the clock to the empty state while *keeping the learned
    /// representation*: values, owner and the window accumulators are
    /// discarded, but a clock that had settled flat stays flat. A
    /// pool-recycled clock re-entering the same workload (the next
    /// benchmark repetition, the next conformance case) then skips the
    /// re-learning phase entirely — and if its next role has a
    /// different density profile, the fresh window migrates it within
    /// one hysteresis period.
    fn clear(&mut self) {
        self.tree.clear();
        self.flat.clear();
        self.root = None;
        // Keep the learned mode bit, drop any pending flip.
        self.state &= ST_FLAT;
        self.window.reset_for_recycle();
        self.flips_to_flat = 0;
        self.flips_to_tree = 0;
    }

    fn reserve_threads(&mut self, threads: usize) {
        if self.flat() {
            if self.flat.len() < threads {
                self.flat.resize(threads, 0);
            }
        } else {
            self.tree.reserve_threads(threads);
        }
    }

    /// Restores a checkpointed value into the *learned* representation:
    /// a clock that had settled flat is refilled flat, otherwise the
    /// tree re-materializes as the star shape.
    fn restore_value(&mut self, times: &[LocalTime], root: Option<ThreadId>) {
        assert!(
            self.is_empty(),
            "HybridClock::restore_value: destination must be empty"
        );
        let Some(r) = root else {
            assert!(
                times.iter().all(|&t| t == 0),
                "HybridClock::restore_value: a rootless clock must be all-zero"
            );
            return;
        };
        if self.flat() {
            self.flat.clear();
            self.flat.extend_from_slice(times);
            if self.flat.len() <= r.index() {
                self.flat.resize(r.index() + 1, 0);
            }
            self.root = Some(r);
        } else {
            self.tree.adopt_flat(times, r.raw());
        }
    }

    fn heap_bytes(&self) -> usize {
        self.tree.heap_bytes() + self.flat.capacity() * std::mem::size_of::<LocalTime>()
    }
}

// The tentpole guarantee this refactor bought: the hybrid clock (and
// with it every engine, detector and session above) is a movable,
// shareable value — no `Cell` left anywhere in the stack.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<HybridClock>();
};

impl PartialEq for HybridClock {
    /// Value equality (trailing zeros insignificant, representation and
    /// owner ignored), like the other clock backends.
    fn eq(&self, other: &Self) -> bool {
        let n = self.num_threads().max(other.num_threads());
        (0..n as u32).all(|i| self.value_at(i) == other.value_at(i))
    }
}

impl Eq for HybridClock {}

impl fmt::Debug for HybridClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HybridClock({}, ", self.repr_name())?;
        match self.root_of() {
            Some(r) => write!(f, "root={r}, ")?,
            None => write!(f, "no-root, ")?,
        }
        write!(f, "{})", self.vector_time())
    }
}

impl fmt::Display for HybridClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.vector_time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rooted(t: u32, time: LocalTime) -> HybridClock {
        let mut c = HybridClock::new();
        c.init_root(ThreadId::new(t));
        c.increment(time);
        c
    }

    /// One round of dense all-to-one traffic: every peer advances and
    /// `clock` joins each (most of the arena moves per join).
    fn dense_round(clock: &mut HybridClock, peers: &mut [HybridClock]) {
        for p in peers.iter_mut() {
            p.increment(1);
        }
        for p in peers.iter() {
            clock.increment(1);
            clock.join(p);
        }
    }

    /// Tree-mode operations needed to saturate the window toward a
    /// flip (observations are sampled every `DEFAULT_TREE_OBS_PERIOD`
    /// ops).
    const SATURATE: usize =
        DEFAULT_TREE_OBS_PERIOD as usize * WINDOW_OPS as usize * (HYSTERESIS as usize + 1);

    #[test]
    fn new_clock_is_empty_tree() {
        let c = HybridClock::new();
        assert!(c.is_empty());
        assert!(!c.is_flat());
        assert_eq!(c.root_tid(), None);
        assert_eq!(c.get(ThreadId::new(7)), 0);
        assert_eq!(c.dense_cutoff(), DEFAULT_DENSE_CUTOFF);
    }

    #[test]
    fn basic_join_and_copy_match_tree_semantics() {
        let mut a = rooted(0, 3);
        let b = rooted(1, 5);
        a.join(&b);
        assert_eq!(a.get(ThreadId::new(0)), 3);
        assert_eq!(a.get(ThreadId::new(1)), 5);
        assert!(b.leq(&a));
        let mut lock = HybridClock::new();
        lock.monotone_copy(&a);
        assert_eq!(lock.vector_time(), a.vector_time());
        assert_eq!(lock.root_tid(), Some(ThreadId::new(0)));
    }

    #[test]
    fn sustained_dense_joins_flip_to_flat_and_back_on_sparse() {
        // K must exceed the dense cutoff: at or below it the arena is
        // flat-cheap by fiat and the clock (correctly) never returns
        // to the tree representation.
        const K: usize = DEFAULT_DENSE_CUTOFF as usize + 8;
        let mut hub = rooted(0, 1);
        let mut peers: Vec<HybridClock> = (1..K as u32).map(|t| rooted(t, 1)).collect();
        // Each round: every peer advances, the peers chain-join so the
        // last one holds every fresh increment, and the hub joins only
        // that one — a join moving nearly the whole arena (dense).
        for _ in 0..(DEFAULT_TREE_OBS_PERIOD as usize * SATURATE) {
            for p in peers.iter_mut() {
                p.increment(1);
            }
            for i in 1..peers.len() {
                let (before, rest) = peers.split_at_mut(i);
                rest[0].join(&before[i - 1]);
            }
            hub.increment(1);
            hub.join(peers.last().unwrap());
        }
        assert!(hub.is_flat(), "dense workload must flip to flat");
        assert_eq!(hub.flips().0, 1);

        // Now the workload turns sparse: joins that change nothing.
        // Observations arrive at probe frequency, so the flip back
        // takes PROBE_PERIOD × window × hysteresis joins.
        let quiet = peers[0].clone();
        for _ in 0..((PROBE_PERIOD as usize + 1) * SATURATE + 1) {
            hub.increment(1);
            hub.join(&quiet);
        }
        assert!(!hub.is_flat(), "sparse workload must flip back to tree");
        assert_eq!(hub.flips(), (1, 1));
        // The re-materialized tree still holds the flat values.
        assert_eq!(
            hub.get(ThreadId::new(1)),
            quiet.get(ThreadId::new(1)).max(hub.get(ThreadId::new(1)))
        );
    }

    #[test]
    fn dense_copies_flip_the_source_thread() {
        // The pairwise profile: sparse joins, dense copies (a stale
        // lock clock differs from the publishing thread on most
        // entries). The *source* thread must flip to flat even though
        // its own joins are quiet — the shared-hook observations are
        // harvested at the publisher's next `&mut` touch (increment).
        const K: u32 = 8;
        let mut publisher = rooted(0, 1);
        for t in 1..K {
            publisher.join(&rooted(t, 1)); // knows everyone
        }
        let mut locks: Vec<HybridClock> = Vec::new();
        for i in 0..(SATURATE * 2) {
            publisher.increment(1);
            // Copy into a stale lock (old value far behind): dense.
            let mut lock = rooted(1, 1);
            lock.increment(0);
            let _ = lock.copy_check_monotone(&publisher);
            locks.push(lock);
            let _ = i;
        }
        assert!(
            publisher.is_flat(),
            "dense copies must flip the publishing thread to flat"
        );
        // And the copy targets adopted the source representation.
        assert!(locks.last().unwrap().is_flat());
    }

    #[test]
    fn alternating_workload_does_not_thrash() {
        // Alternating one dense and one sparse operation: the window
        // aggregates them into one stable verdict, so the clock settles
        // into a single representation instead of ping-ponging.
        let mut c = rooted(0, 1);
        let mut dense_src = rooted(1, 1);
        let sparse_src = rooted(2, 1);
        c.join(&sparse_src); // learn t2 once so later joins are no-ops
        for _ in 0..400 {
            dense_src.increment(1); // 1 change in a 3-slot arena: dense
            c.increment(1);
            c.join(&dense_src);
            c.increment(1);
            c.join(&sparse_src); // no progress: sparse
        }
        let (to_flat, to_tree) = c.flips();
        assert!(
            to_flat + to_tree <= 1,
            "alternating workload must settle, not thrash (flips: {:?})",
            c.flips()
        );
    }

    #[test]
    fn flat_and_tree_mode_values_agree_with_counted_stats() {
        // Mirror a hybrid against a hybrid driven only via counted ops:
        // values and `changed` accounting must agree in every mix.
        let mut timed = rooted(0, 2);
        let mut counted = rooted(0, 2);
        let mut src = rooted(1, 1);
        for step in 0..200u32 {
            src.increment(1 + step % 3);
            timed.increment(1);
            counted.increment(1);
            timed.join(&src);
            let s = counted.join_counted(&src);
            assert!(s.changed <= s.examined);
            assert_eq!(timed.vector_time(), counted.vector_time(), "step {step}");
        }
    }

    #[test]
    fn copy_adopts_source_representation() {
        const K: usize = 6;
        let mut hub = rooted(0, 1);
        let mut peers: Vec<HybridClock> = (1..K as u32).map(|t| rooted(t, 1)).collect();
        for _ in 0..(SATURATE / K + 4) {
            for p in peers.iter_mut() {
                let snap = hub.clone();
                p.increment(1);
                p.join(&snap);
            }
            dense_round(&mut hub, &mut peers);
        }
        assert!(hub.is_flat());
        let mut lock = HybridClock::new();
        lock.monotone_copy(&hub);
        assert!(lock.is_flat(), "copy target must mirror its source");
        assert_eq!(lock.vector_time(), hub.vector_time());

        let tree_src = rooted(9, 4);
        let mut lw = HybridClock::new();
        lw.copy_check_monotone(&tree_src);
        assert!(!lw.is_flat());
        assert_eq!(lw.get(ThreadId::new(9)), 4);
    }

    #[test]
    fn counted_copy_changed_is_exact_across_representations() {
        // Build a flat source and copy it twice: the first counted copy
        // reports exactly the nonzero entries, the second reports 0.
        let mut src = rooted(0, 1);
        let mut peers: Vec<HybridClock> = (1..5u32).map(|t| rooted(t, 1)).collect();
        for _ in 0..(SATURATE + 8) {
            dense_round(&mut src, &mut peers);
        }
        assert!(src.is_flat());
        let mut dst = HybridClock::new();
        let s1 = dst.monotone_copy_counted(&src);
        assert!(dst.is_flat());
        assert_eq!(
            s1.changed as usize,
            src.value_slice().iter().filter(|&&t| t != 0).count()
        );
        let s2 = dst.monotone_copy_counted(&src);
        assert_eq!(s2.changed, 0);
        assert_eq!(dst.vector_time(), src.vector_time());
    }

    #[test]
    fn clear_empties_values_but_keeps_the_learned_representation() {
        let mut c = rooted(0, 1);
        let mut peers: Vec<HybridClock> = (1..6u32).map(|t| rooted(t, 1)).collect();
        for _ in 0..(SATURATE + 8) {
            dense_round(&mut c, &mut peers);
        }
        assert!(c.is_flat());
        c.clear();
        assert!(c.is_empty());
        assert!(
            c.is_flat(),
            "a recycled clock keeps its learned representation"
        );
        assert_eq!(c.flips(), (0, 0));
        assert_eq!(c.root_tid(), None);
        assert_eq!(c.vector_time(), VectorTime::new());
        // And it is reusable as a fresh thread clock — flat from the
        // start, skipping the re-learning phase.
        c.init_root(ThreadId::new(3));
        c.increment(2);
        assert!(c.is_flat());
        assert_eq!(c.get(ThreadId::new(3)), 2);

        // A tree-mode clock clears back to an empty tree.
        let mut t = rooted(7, 1);
        t.clear();
        assert!(t.is_empty());
        assert!(!t.is_flat());
    }

    #[test]
    fn pool_recycles_hybrid_clocks() {
        use crate::ClockPool;
        let mut pool = ClockPool::<HybridClock>::new();
        let mut a = pool.acquire();
        a.init_root(ThreadId::new(2));
        a.increment(9);
        pool.release(a);
        let b = pool.acquire();
        assert_eq!(pool.recycled(), 1);
        assert!(b.is_empty());
        assert_eq!(b.get(ThreadId::new(2)), 0);
    }

    #[test]
    #[should_panic(expected = "progressed on self's root")]
    fn flat_join_rejects_foreign_progress_on_own_thread() {
        // Force `a` flat, then feed it a source claiming a later time of
        // `a`'s own thread.
        let mut a = rooted(0, 1);
        let mut peers: Vec<HybridClock> = (1..6u32).map(|t| rooted(t, 1)).collect();
        for _ in 0..(SATURATE + 8) {
            dense_round(&mut a, &mut peers);
        }
        assert!(a.is_flat());
        let mut src = rooted(1, 1);
        src.join(&rooted(0, 1000));
        a.join(&src);
    }

    #[test]
    fn leq_agrees_with_pointwise_comparison_in_both_modes() {
        let a = rooted(0, 2);
        let mut b = rooted(1, 2);
        b.join(&a);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        // Same after `b` turns flat.
        let mut peers: Vec<HybridClock> = (2..8u32).map(|t| rooted(t, 1)).collect();
        for _ in 0..(SATURATE + 8) {
            dense_round(&mut b, &mut peers);
        }
        assert!(b.is_flat());
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
    }

    #[test]
    fn small_arenas_settle_flat_even_when_sparse() {
        // The k-dependent threshold: an arena at or below the dense
        // cutoff is flat-cheap, so even no-progress joins eventually
        // migrate a small clock to the flat representation — and never
        // back.
        let mut c = rooted(0, 1);
        let quiet = rooted(1, 1);
        c.join(&quiet);
        for _ in 0..(PROBE_PERIOD as usize + 1) * SATURATE * 2 {
            c.increment(1);
            c.join(&quiet); // changes nothing: nominally sparse
        }
        assert!(c.is_flat(), "small arena must settle flat");
        assert_eq!(c.flips(), (1, 0));
    }

    #[test]
    fn dense_cutoff_is_per_clock_and_defaults_from_the_global() {
        // A clock pinned below its arena size judges no-progress joins
        // sparse and stays in (returns to) the tree representation,
        // where the default-cutoff clock settles flat.
        let mut pinned = rooted(0, 1);
        pinned.set_dense_cutoff(2);
        assert_eq!(pinned.dense_cutoff(), 2);
        let quiet = {
            let mut q = rooted(5, 1); // arena of 6 > pinned cutoff 2
            q.increment(1);
            q
        };
        pinned.join(&quiet);
        for _ in 0..(PROBE_PERIOD as usize + 1) * SATURATE * 2 {
            pinned.increment(1);
            pinned.join(&quiet);
        }
        assert!(
            !pinned.is_flat(),
            "a cutoff below the arena size must keep sparse joins tree-bound"
        );

        // The process-wide default is what constructors adopt; values
        // are representation independent at any setting, so briefly
        // lowering it cannot perturb concurrent tests' values. The
        // guard restores the previous value even if an assert below
        // panics.
        {
            let _cutoff = DenseCutoffGuard::set(64);
            let adopted = HybridClock::new();
            assert_eq!(adopted.dense_cutoff(), 64);
        }
        assert_eq!(default_dense_cutoff(), DEFAULT_DENSE_CUTOFF);
        assert_eq!(
            HybridClock::new().dense_cutoff(),
            DEFAULT_DENSE_CUTOFF,
            "restored default"
        );
        // The spec-conservative anchor stays documented and distinct.
        assert_eq!(CACHE_LINE_CUTOFF, 32);
        const { assert!(CACHE_LINE_CUTOFF < DEFAULT_DENSE_CUTOFF) };
    }

    #[test]
    fn shared_observations_saturate_without_corrupting_the_probe() {
        // More than 7 shared-hook observations between `&mut` touches:
        // the op count saturates (extras are dropped) instead of
        // overflowing into the probe bits.
        let src = rooted(0, 3);
        for _ in 0..40 {
            src.observe_shared(1000, 1000);
        }
        assert_eq!(packed_ops(src.window.shared.load(Ordering::Relaxed)), 7);
        // The probe countdown still ticks and re-arms correctly.
        assert!(src.copy_probe_tick(3), "armed probe fires at zero");
        assert!(!src.copy_probe_tick(3));
        assert!(!src.copy_probe_tick(3));
        assert!(!src.copy_probe_tick(3));
        assert!(src.copy_probe_tick(3), "probe fires after the countdown");
        // The next `&mut` entry harvests the saturated window.
        let mut src = src;
        src.increment(1);
        assert_eq!(packed_ops(src.window.shared.load(Ordering::Relaxed)), 0);
    }

    #[test]
    fn restore_value_round_trips_in_both_representations() {
        use crate::LogicalClock;
        let times = [3u32, 0, 7, 2];
        let mut tree = HybridClock::new();
        tree.restore_value(&times, Some(ThreadId::new(2)));
        assert!(!tree.is_flat());
        assert_eq!(tree.root_tid(), Some(ThreadId::new(2)));
        assert_eq!(tree.vector_time(), VectorTime::from(times.to_vec()));

        // A clock that learned the flat representation restores flat.
        let mut flat = HybridClock::new();
        let mut peers: Vec<HybridClock> = (1..6u32).map(|t| rooted(t, 1)).collect();
        flat.init_root(ThreadId::new(0));
        flat.increment(1);
        for _ in 0..(SATURATE + 8) {
            dense_round(&mut flat, &mut peers);
        }
        assert!(flat.is_flat());
        flat.clear();
        flat.restore_value(&times, Some(ThreadId::new(0)));
        assert!(flat.is_flat());
        assert_eq!(flat.vector_time(), VectorTime::from(times.to_vec()));
        assert_eq!(flat.root_tid(), Some(ThreadId::new(0)));
    }

    #[test]
    fn count_diffs_handles_unequal_lengths() {
        assert_eq!(count_diffs(&[1, 2, 0], &[1, 3]), 1);
        assert_eq!(count_diffs(&[1, 2, 4], &[1, 2]), 1);
        assert_eq!(count_diffs(&[], &[0, 0, 5]), 1);
        assert_eq!(count_diffs(&[7], &[7]), 0);
    }

    #[test]
    fn hybrid_clocks_move_across_threads() {
        // The tentpole property, exercised dynamically: a learned
        // clock is a plain movable value.
        let mut c = rooted(0, 2);
        let peer = rooted(1, 5);
        c.join(&peer);
        let handle = std::thread::spawn(move || {
            c.increment(1);
            c.get(ThreadId::new(1))
        });
        assert_eq!(handle.join().unwrap(), 5);
    }

    #[test]
    fn display_and_debug_are_value_based() {
        let a = rooted(0, 3);
        assert_eq!(a.to_string(), a.vector_time().to_string());
        assert!(format!("{a:?}").contains("tree"));
    }
}
