//! Arena node representation for [`TreeClock`](crate::TreeClock).
//!
//! The paper's implementation represents a tree clock as "two arrays of
//! length k, the first one encoding the shape of the tree and the second
//! one encoding the integer timestamps". We follow that layout exactly:
//! the local times live in a dense `Vec<LocalTime>` (so `Get` and the
//! progress comparisons of a join touch the same compact memory a
//! vector clock would), while the tree shape lives in a parallel arena
//! of link [`Node`]s. Children form an intrusive doubly-linked list
//! ordered by descending attachment clock (`aclk`); pushing at the front
//! preserves the order because attachment times only grow.
//!
//! Membership is encoded in the parent link: [`ABSENT`] means the
//! thread is not in the tree (its time is 0), [`NIL`] marks the root.

/// Sentinel index meaning "no node" (the paper's `⊥`).
pub(crate) const NIL: u32 = u32::MAX;

/// Sentinel parent value meaning "this thread is not in the tree".
pub(crate) const ABSENT: u32 = u32::MAX - 1;

/// Tree links of one node; the thread id is the node's index in the
/// arena and its local time lives in the parallel `clks` array.
#[derive(Clone, Debug)]
pub(crate) struct Node {
    /// Attachment clock: the parent's local time when this node was
    /// attached (`u.aclk`); meaningless for the root.
    pub(crate) aclk: u32,
    /// Parent node index, [`NIL`] for the root, [`ABSENT`] if the
    /// thread is not part of the tree.
    pub(crate) parent: u32,
    /// First child (the child with the largest `aclk`), or [`NIL`].
    pub(crate) head_child: u32,
    /// Next sibling in descending-`aclk` order, or [`NIL`].
    pub(crate) next_sib: u32,
    /// Previous sibling, or [`NIL`] if this is the head child.
    pub(crate) prev_sib: u32,
}

impl Default for Node {
    fn default() -> Self {
        Node {
            aclk: 0,
            parent: ABSENT,
            head_child: NIL,
            next_sib: NIL,
            prev_sib: NIL,
        }
    }
}

impl Node {
    /// Whether the thread is part of the tree.
    #[inline]
    pub(crate) fn present(&self) -> bool {
        self.parent != ABSENT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_node_is_absent_and_unlinked() {
        let n = Node::default();
        assert!(!n.present());
        assert_eq!(n.parent, ABSENT);
        assert_eq!(n.head_child, NIL);
        assert_eq!(n.next_sib, NIL);
    }

    #[test]
    fn nodes_are_compact() {
        // The link arena is the "shape array" of the paper; keeping it
        // to five words preserves the cache behaviour the sublinear
        // operations rely on.
        assert_eq!(std::mem::size_of::<Node>(), 20);
    }
}
