//! The tree-clock `Join` operation (Algorithm 2, lines 16–27 and
//! `getUpdatedNodesJoin`).
//!
//! `Join` walks `other`'s tree top-down, descending into a child only if
//! its time has *progressed* relative to `self` (direct monotonicity) and
//! abandoning a child list as soon as an attachment clock is already
//! known (indirect monotonicity). The progressed nodes are collected in
//! post-order on a stack `S`, detached from `self`, and re-attached in a
//! shape mirroring `other`; finally the updated subtree is hung under
//! `self`'s root.
//!
//! The `COUNT` const parameter selects the instrumented variant that
//! tallies [`OpStats`]; the plain variant compiles the counters out so
//! timed runs measure only the algorithm.
//!
//! The traversal borrows the scratch stacks (`gather`, `frames`)
//! directly as disjoint fields of `self` — no `mem::take`/restore pair
//! runs on the per-event path (that swap used to cost a handful of ns
//! per operation, a measurable slice of the sparse-regime fixed
//! overhead).

use crate::clock::OpStats;
use crate::{LocalTime, ThreadId};

use super::node::{Node, NIL};
use super::TreeClock;

/// One frame of the iterative pre-order traversal: a node of `other` and
/// the next child of that node still to be examined.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Frame {
    pub(crate) node: u32,
    pub(crate) next_child: u32,
}

/// The represented time of thread index `idx` in a dense times slice
/// (0 if out of range) — the split-borrow twin of
/// [`TreeClock::get_idx`].
#[inline]
pub(crate) fn time_at(clks: &[LocalTime], idx: u32) -> LocalTime {
    clks.get(idx as usize).copied().unwrap_or(0)
}

impl TreeClock {
    /// Returns both the join's result statistics and (for the uncounted
    /// path) the number of surgically moved entries in `stats.moved`,
    /// which the hybrid clock reads as its density observation.
    pub(crate) fn join_impl<const COUNT: bool>(&mut self, other: &TreeClock) -> OpStats {
        let mut stats = OpStats::NOOP;
        let Some(zp) = other.root_idx() else {
            return stats; // joining an empty clock is a no-op
        };
        if COUNT {
            stats.examined += 1; // the root progress check
        }
        if other.clks[zp as usize] <= self.get_idx(zp) {
            return stats;
        }
        let Some(z) = self.root_idx() else {
            // Joining into an empty clock yields an exact copy.
            let mut s = self.clone_structure_from::<COUNT>(other);
            s.examined += stats.examined;
            return s;
        };
        assert!(
            zp != z && other.get_idx(z) <= self.clks[z as usize],
            "TreeClock::join: `other` has progressed on self's root thread {} — \
             this cannot happen in a causal ordering (misuse of the clock)",
            ThreadId::new(z),
        );

        // Timed-path fast path: when recent joins kept moving most of
        // the tree (dense communication — the regime where the surgical
        // walk's pointer chasing loses to a flat loop), join on the
        // dense arrays instead. Value-identical; see `flat_join`.
        if !COUNT && self.take_dense_path() {
            self.flat_join(other, z);
            stats.moved = self.nodes.len() as u64;
            return stats;
        }

        self.gather.clear();
        self.frames.clear();
        Self::gather_join::<COUNT>(
            &self.clks,
            other,
            zp,
            &mut self.gather,
            &mut self.frames,
            &mut stats,
        );
        let moved = self.gather.len();
        if !COUNT {
            self.note_density(moved, self.nodes.len().max(other.nodes.len()));
            stats.moved = moved as u64;
        }
        Self::detach_nodes_in(&mut self.nodes, self.root, &self.gather);
        Self::attach_nodes_in::<COUNT>(
            &mut self.nodes,
            &mut self.clks,
            &mut self.num_present,
            other,
            &mut self.gather,
            &mut stats,
        );

        // Place the updated subtree under the root of `self`, attached at
        // the root's current time, at the front of the child list.
        self.nodes[zp as usize].aclk = self.clks[z as usize];
        Self::push_child_in(&mut self.nodes, zp, z);

        debug_assert_eq!(self.check_invariants(), Ok(()));
        stats
    }

    /// Value-equivalent join on the dense arrays: a (vectorizable)
    /// pointwise maximum, followed by re-hanging every known thread
    /// directly under the root at the root's *current* time.
    ///
    /// Attaching at the current root time is sound for both monotonicity
    /// principles: any later joiner that already knows this root's
    /// current local time transitively knows everything the root knows
    /// *now* — including every child's current value — so skipping the
    /// flat child list is exactly as safe as skipping a surgically
    /// maintained one. What the flat shape gives up is *granularity*
    /// (children can no longer be skipped individually by older
    /// knowledge), which is precisely worthless in the dense regime that
    /// triggers this path: most entries change every operation anyway.
    ///
    /// Only the uncounted (timed) path takes this shortcut; the counted
    /// variants always run Algorithm 2 verbatim, so all work accounting
    /// (`OpStats`, Theorem 1 checks) measures the paper's algorithm.
    pub(crate) fn flat_join(&mut self, other: &TreeClock, z: u32) {
        if other.clks.len() > self.clks.len() {
            self.ensure_slot(other.clks.len() as u32 - 1);
        }
        for (mine, &theirs) in self.clks.iter_mut().zip(other.clks.iter()) {
            if theirs > *mine {
                *mine = theirs;
            }
        }
        self.rebuild_star(z, |i| other.is_present(i));
        debug_assert_eq!(self.check_invariants(), Ok(()));
    }

    /// The slice twin of [`flat_join`](Self::flat_join), for a source
    /// that *is* a flat array (the hybrid clock's `Tree ⊔ Flat` case):
    /// pointwise maximum against `times`, then a flat re-attachment of
    /// every known thread under `self`'s root `z`. Returns the number of
    /// entries whose value changed (the caller's density observation and
    /// exact `VTWork` contribution).
    pub(crate) fn flat_join_slice(&mut self, times: &[LocalTime], z: u32) -> u64 {
        if times.len() > self.clks.len() {
            self.ensure_slot(times.len() as u32 - 1);
        }
        let mut changed = 0u64;
        for (mine, &theirs) in self.clks.iter_mut().zip(times.iter()) {
            changed += u64::from(theirs > *mine);
            *mine = (*mine).max(theirs);
        }
        self.rebuild_star(z, |_| false);
        debug_assert_eq!(self.check_invariants(), Ok(()));
        changed
    }

    /// Rebuilds the tree shape flat: every known thread becomes a direct
    /// child of root `z`, attached at the root's current time, in a
    /// single forward sweep over the arena. A thread is *known* when its
    /// local time is nonzero, its node is currently in the tree, or
    /// `keep_extra` says so (used by [`flat_join`](Self::flat_join) to
    /// retain zero-time nodes present in the join source).
    pub(crate) fn rebuild_star(&mut self, z: u32, keep_extra: impl Fn(u32) -> bool) {
        let root_time = self.clks[z as usize];
        let mut head = NIL;
        let mut prev = NIL;
        let mut count = 1u32;
        for i in 0..self.nodes.len() as u32 {
            if i == z {
                continue;
            }
            let iu = i as usize;
            if self.clks[iu] == 0 && !self.nodes[iu].present() && !keep_extra(i) {
                continue;
            }
            {
                let n = &mut self.nodes[iu];
                n.parent = z;
                n.aclk = root_time;
                n.head_child = NIL;
                n.prev_sib = prev;
                n.next_sib = NIL;
            }
            if prev == NIL {
                head = i;
            } else {
                self.nodes[prev as usize].next_sib = i;
            }
            prev = i;
            count += 1;
        }
        {
            let r = &mut self.nodes[z as usize];
            r.parent = NIL;
            r.head_child = head;
            r.next_sib = NIL;
            r.prev_sib = NIL;
            r.aclk = 0;
        }
        self.num_present = count;
    }

    /// Materializes a tree from a flat times array: the values become
    /// `self`'s local times and every known thread hangs directly under
    /// `root` (the star shape [`flat_join`](Self::flat_join) also
    /// produces, sound by the same argument). This is the hybrid clock's
    /// dense→sparse re-materialization: the scan is one forward sweep
    /// and the link work is O(present entries).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not empty.
    pub(crate) fn adopt_flat(&mut self, times: &[LocalTime], root: u32) {
        assert!(
            self.root == NIL,
            "TreeClock::adopt_flat: destination must be empty"
        );
        let max_idx = (times.len() as u32).max(root + 1) - 1;
        self.ensure_slot(max_idx);
        self.clks[..times.len()].copy_from_slice(times);
        // Entries past `times.len()` were zeroed by the teardown that
        // emptied this clock; nothing to reset.
        self.root = root;
        self.rebuild_star(root, |_| false);
        debug_assert_eq!(self.check_invariants(), Ok(()));
    }

    /// Iterative `getUpdatedNodesJoin`: collects, in post-order, every
    /// node of `other` (starting at `start`, which the caller has already
    /// determined to be progressed) whose clock has progressed relative
    /// to the receiver's times `self_clks`.
    pub(crate) fn gather_join<const COUNT: bool>(
        self_clks: &[LocalTime],
        other: &TreeClock,
        start: u32,
        gathered: &mut Vec<u32>,
        frames: &mut Vec<Frame>,
        stats: &mut OpStats,
    ) {
        let o_nodes: &[Node] = &other.nodes;
        let o_clks: &[LocalTime] = &other.clks;
        let mut frame = Frame {
            node: start,
            next_child: o_nodes[start as usize].head_child,
        };
        'outer: loop {
            let mut child = frame.next_child;
            let parent_known = time_at(self_clks, frame.node);
            while child != NIL {
                let v = &o_nodes[child as usize];
                if COUNT {
                    stats.examined += 1;
                }
                if time_at(self_clks, child) < o_clks[child as usize] {
                    // Direct monotonicity: the child has progressed —
                    // descend into it.
                    frame.next_child = v.next_sib;
                    frames.push(frame);
                    frame = Frame {
                        node: child,
                        next_child: v.head_child,
                    };
                    continue 'outer;
                }
                if v.aclk <= parent_known {
                    // Indirect monotonicity: this child (and, by the
                    // descending-aclk order, all later ones) was attached
                    // at a parent time `self` already knows about.
                    break;
                }
                child = v.next_sib;
            }
            // All relevant children handled: emit the node (post-order).
            gathered.push(frame.node);
            match frames.pop() {
                Some(f) => frame = f,
                None => return,
            }
        }
    }
}
