//! The tree-clock `MonotoneCopy` operation (Algorithm 2, lines 28–35 and
//! `getUpdatedNodesCopy`).
//!
//! When the destination is already dominated by the source
//! (`self ⊑ other`), copying has the same semantics as joining, so the
//! same monotonicity arguments let it run sublinearly. The one extra
//! wrinkle is that the destination's root must move: the destination
//! re-roots itself at the source's root thread, and its old root node is
//! repositioned like any other updated node (collected by the traversal
//! even if its time did not progress — line 67 of Algorithm 2).
//!
//! Like the join, the traversal borrows the scratch stacks as disjoint
//! fields — no per-operation swap-out/restore.

use crate::clock::{LogicalClock, OpStats};
use crate::ThreadId;

use super::join::{time_at, Frame};
use super::node::NIL;
use super::TreeClock;

impl TreeClock {
    /// Like the join, the uncounted path reports the surgically moved
    /// entry count in `stats.moved` (and nothing else) — the hybrid
    /// clock's density observation for copies.
    pub(crate) fn monotone_copy_impl<const COUNT: bool>(&mut self, other: &TreeClock) -> OpStats {
        let mut stats = OpStats::NOOP;
        let Some(zp) = other.root_idx() else {
            assert!(
                self.is_empty(),
                "TreeClock::monotone_copy: copying an empty clock into a non-empty \
                 one violates the precondition self ⊑ other"
            );
            return stats;
        };
        let Some(z) = self.root_idx() else {
            // Copy into an empty clock: a deep copy, and every entry of
            // `other` is new information. The uncounted path reports
            // the transferred present-entry count as its `moved`
            // observation (the clone replicates exactly those).
            let mut s = self.clone_structure_from::<COUNT>(other);
            if !COUNT {
                s.moved = other.node_count() as u64;
            }
            return s;
        };
        assert!(
            self.clks[z as usize] <= other.get_idx(z),
            "TreeClock::monotone_copy: self ⋢ other on self's root thread {} — \
             use copy_check_monotone for unordered copies",
            ThreadId::new(z),
        );

        // Timed-path fast path: when recent copies kept replacing most
        // of the tree, skip the traversal and replicate `other` outright
        // (a full replica is always a valid monotone copy — the result
        // must represent `other`'s vector time, and `other`'s own tree
        // satisfies every invariant).
        if !COUNT && self.take_dense_path() {
            self.clone_structure_from::<false>(other);
            stats.moved = self.nodes.len().max(other.nodes.len()) as u64;
            return stats;
        }

        self.gather.clear();
        self.frames.clear();

        if COUNT {
            stats.examined += 1; // the root of `other` is always processed
        }
        let found_old_root = Self::gather_copy::<COUNT>(
            &self.clks,
            other,
            zp,
            z,
            &mut self.gather,
            &mut self.frames,
            &mut stats,
        );
        let moved = self.gather.len();
        if !COUNT {
            self.note_density(moved, self.nodes.len().max(other.nodes.len()));
            stats.moved = moved as u64;
        }

        // The sibling pruning stops a scan once a child's attachment
        // clock shows the destination already knew the rest of the
        // siblings. That is value-correct, but when the destination's
        // old root has not progressed and sits past such a cut it is
        // never reached and cannot be repositioned. Star-materialized
        // sources (a flat representation lifted to a tree attaches
        // every child with aclk 0) make this reachable in practice:
        // fall back to a full replica, which is always a valid
        // monotone copy.
        if z != zp && !found_old_root {
            self.gather.clear();
            let clone_stats = self.clone_structure_from::<COUNT>(other);
            stats += clone_stats;
            return stats;
        }

        // Adaptive fallback: when most of the arena progressed, the
        // surgical detach/re-attach (scattered writes) is slower than
        // replacing the whole structure with `other`'s — which is a
        // valid monotone copy (the result must represent `other`'s
        // vector time, and `other`'s own tree trivially satisfies all
        // invariants). The threshold is *arena*-based because that is
        // what the timed path's flat replica costs; it also keeps the
        // examined-entry count within the Theorem 1 budget: the counted
        // clone walks the union of the two present-node sets — at most
        // `max(len)` entries here, and at least half that many changed.
        if moved >= self.nodes.len().max(other.nodes.len()) / 2 {
            // The clone's own traversal reuses the scratch stack; clear
            // it first so the copy walk starts fresh.
            self.gather.clear();
            let clone_stats = self.clone_structure_from::<COUNT>(other);
            stats += clone_stats;
            return stats;
        }

        Self::detach_nodes_in(&mut self.nodes, self.root, &self.gather);
        Self::attach_nodes_in::<COUNT>(
            &mut self.nodes,
            &mut self.clks,
            &mut self.num_present,
            other,
            &mut self.gather,
            &mut stats,
        );

        // Re-root at the source's root thread.
        self.root = zp;
        {
            let r = &mut self.nodes[zp as usize];
            r.parent = NIL;
            r.next_sib = NIL;
            r.prev_sib = NIL;
        }
        debug_assert!(
            {
                let old = &self.nodes[z as usize];
                z == zp || old.parent != NIL
            },
            "old root was not repositioned — monotone-copy precondition violated"
        );

        debug_assert_eq!(self.check_invariants(), Ok(()));
        stats
    }

    /// Iterative `getUpdatedNodesCopy`: like the join traversal, but the
    /// start node is unconditionally collected, and the destination's old
    /// root (`old_root`, the `z` parameter of Algorithm 2) is collected
    /// even when it has not progressed, so that it can be repositioned
    /// under the new root.
    ///
    /// Returns whether `old_root` was collected; the caller must handle
    /// the (rare) miss — the sibling pruning can cut a scan short of a
    /// non-progressed `old_root`.
    #[allow(clippy::too_many_arguments)]
    fn gather_copy<const COUNT: bool>(
        self_clks: &[crate::LocalTime],
        other: &TreeClock,
        start: u32,
        old_root: u32,
        gathered: &mut Vec<u32>,
        frames: &mut Vec<Frame>,
        stats: &mut OpStats,
    ) -> bool {
        let o_nodes = &other.nodes[..];
        let o_clks = &other.clks[..];
        let mut found_old_root = false;
        let mut frame = Frame {
            node: start,
            next_child: o_nodes[start as usize].head_child,
        };
        'outer: loop {
            let mut child = frame.next_child;
            let parent_known = time_at(self_clks, frame.node);
            while child != NIL {
                let v = &o_nodes[child as usize];
                if COUNT {
                    stats.examined += 1;
                }
                if time_at(self_clks, child) < o_clks[child as usize] {
                    frame.next_child = v.next_sib;
                    frames.push(frame);
                    frame = Frame {
                        node: child,
                        next_child: v.head_child,
                    };
                    continue 'outer;
                }
                // The destination's old root must be collected for
                // repositioning even though it has not progressed.
                if child == old_root {
                    gathered.push(child);
                    found_old_root = true;
                }
                if v.aclk <= parent_known {
                    break;
                }
                child = v.next_sib;
            }
            if frame.node == old_root {
                found_old_root = true;
            }
            gathered.push(frame.node);
            match frames.pop() {
                Some(f) => frame = f,
                None => return found_old_root,
            }
        }
    }
}
