//! The tree-clock `MonotoneCopy` operation (Algorithm 2, lines 28–35 and
//! `getUpdatedNodesCopy`).
//!
//! When the destination is already dominated by the source
//! (`self ⊑ other`), copying has the same semantics as joining, so the
//! same monotonicity arguments let it run sublinearly. The one extra
//! wrinkle is that the destination's root must move: the destination
//! re-roots itself at the source's root thread, and its old root node is
//! repositioned like any other updated node (collected by the traversal
//! even if its time did not progress — line 67 of Algorithm 2).

use std::mem;

use crate::clock::{LogicalClock, OpStats};
use crate::ThreadId;

use super::join::Frame;
use super::node::NIL;
use super::TreeClock;

impl TreeClock {
    pub(crate) fn monotone_copy_impl<const COUNT: bool>(&mut self, other: &TreeClock) -> OpStats {
        let mut stats = OpStats::NOOP;
        let Some(zp) = other.root_idx() else {
            assert!(
                self.is_empty(),
                "TreeClock::monotone_copy: copying an empty clock into a non-empty \
                 one violates the precondition self ⊑ other"
            );
            return stats;
        };
        let Some(z) = self.root_idx() else {
            // Copy into an empty clock: a deep copy, and every entry of
            // `other` is new information.
            return self.clone_structure_from::<COUNT>(other);
        };
        assert!(
            self.clks[z as usize] <= other.get_idx(z),
            "TreeClock::monotone_copy: self ⋢ other on self's root thread {} — \
             use copy_check_monotone for unordered copies",
            ThreadId::new(z),
        );

        // Timed-path fast path: when recent copies kept replacing most
        // of the tree, skip the traversal and replicate `other` outright
        // (a full replica is always a valid monotone copy — the result
        // must represent `other`'s vector time, and `other`'s own tree
        // satisfies every invariant).
        if !COUNT && self.take_dense_path() {
            self.clone_structure_from::<false>(other);
            return stats;
        }

        let mut gathered = mem::take(&mut self.gather);
        let mut frames = mem::take(&mut self.frames);
        gathered.clear();
        frames.clear();

        if COUNT {
            stats.examined += 1; // the root of `other` is always processed
        }
        self.gather_copy::<COUNT>(other, zp, z, &mut gathered, &mut frames, &mut stats);
        if !COUNT {
            self.note_density(gathered.len(), self.nodes.len().max(other.nodes.len()));
        }

        // Adaptive fallback: when most of the arena progressed, the
        // surgical detach/re-attach (scattered writes) is slower than
        // replacing the whole structure with `other`'s — which is a
        // valid monotone copy (the result must represent `other`'s
        // vector time, and `other`'s own tree trivially satisfies all
        // invariants). The threshold is *arena*-based because that is
        // what the timed path's flat replica costs; it also keeps the
        // examined-entry count within the Theorem 1 budget: the counted
        // clone walks the union of the two present-node sets — at most
        // `max(len)` entries here, and at least half that many changed.
        if gathered.len() >= self.nodes.len().max(other.nodes.len()) / 2 {
            // Restore the scratch buffers *before* the clone so its own
            // traversal reuses `gathered`'s capacity instead of
            // allocating a throwaway vector.
            gathered.clear();
            self.gather = gathered;
            self.frames = frames;
            let clone_stats = self.clone_structure_from::<COUNT>(other);
            stats += clone_stats;
            return stats;
        }

        self.detach_nodes(&gathered);
        self.attach_nodes::<COUNT>(other, &mut gathered, &mut stats);

        // Re-root at the source's root thread.
        self.root = zp;
        {
            let r = &mut self.nodes[zp as usize];
            r.parent = NIL;
            r.next_sib = NIL;
            r.prev_sib = NIL;
        }
        debug_assert!(
            {
                let old = &self.nodes[z as usize];
                z == zp || old.parent != NIL
            },
            "old root was not repositioned — monotone-copy precondition violated"
        );

        self.gather = gathered;
        self.frames = frames;
        debug_assert_eq!(self.check_invariants(), Ok(()));
        stats
    }

    /// Iterative `getUpdatedNodesCopy`: like the join traversal, but the
    /// start node is unconditionally collected, and the destination's old
    /// root (`old_root`, the `z` parameter of Algorithm 2) is collected
    /// even when it has not progressed, so that it can be repositioned
    /// under the new root.
    fn gather_copy<const COUNT: bool>(
        &self,
        other: &TreeClock,
        start: u32,
        old_root: u32,
        gathered: &mut Vec<u32>,
        frames: &mut Vec<Frame>,
        stats: &mut OpStats,
    ) {
        let mut frame = Frame {
            node: start,
            next_child: other.nodes[start as usize].head_child,
        };
        'outer: loop {
            let mut child = frame.next_child;
            let parent_known = self.get_idx(frame.node);
            while child != NIL {
                let v = &other.nodes[child as usize];
                if COUNT {
                    stats.examined += 1;
                }
                if self.get_idx(child) < other.clks[child as usize] {
                    frame.next_child = v.next_sib;
                    frames.push(frame);
                    frame = Frame {
                        node: child,
                        next_child: v.head_child,
                    };
                    continue 'outer;
                }
                // The destination's old root must be collected for
                // repositioning even though it has not progressed.
                if child == old_root {
                    gathered.push(child);
                }
                if v.aclk <= parent_known {
                    break;
                }
                child = v.next_sib;
            }
            gathered.push(frame.node);
            match frames.pop() {
                Some(f) => frame = f,
                None => return,
            }
        }
    }
}
