//! Unit tests for the tree clock, including the paper's worked examples:
//! the traces of Figure 2 (producing the trees of Figure 3) and the full
//! Appendix B run (Figures 11 and 12), with exact work counts.

use crate::clock::{CopyMode, LogicalClock, OpStats};
use crate::{ThreadId, TreeClock, VectorTime};

fn t(i: u32) -> ThreadId {
    ThreadId::new(i)
}

/// A `sync(ℓ)` step as in Figure 2: one local event that acquires and
/// releases `lock` (the paper counts it as a single local time unit).
fn sync(thread: &mut TreeClock, lock: &mut TreeClock) {
    thread.increment(1);
    thread.join(lock);
    lock.monotone_copy(thread);
}

fn rooted(i: u32, time: u32) -> TreeClock {
    let mut c = TreeClock::new();
    c.init_root(t(i));
    c.increment(time);
    c
}

// ---------------------------------------------------------------------
// Basics
// ---------------------------------------------------------------------

#[test]
fn new_clock_is_empty() {
    let c = TreeClock::new();
    assert!(c.is_empty());
    assert_eq!(c.root_tid(), None);
    assert_eq!(c.get(t(5)), 0);
    assert_eq!(c.node_count(), 0);
}

#[test]
fn init_root_and_increment() {
    let c = rooted(2, 7);
    assert_eq!(c.root_tid(), Some(t(2)));
    assert_eq!(c.get(t(2)), 7);
    assert_eq!(c.node_count(), 1);
    assert!(!c.is_empty());
}

#[test]
#[should_panic(expected = "already initialized")]
fn double_init_panics() {
    let mut c = rooted(0, 1);
    c.init_root(t(1));
}

#[test]
#[should_panic(expected = "no root thread")]
fn increment_without_root_panics() {
    let mut c = TreeClock::new();
    c.increment(1);
}

#[test]
fn join_with_empty_clock_is_noop() {
    let mut c = rooted(0, 3);
    let stats = c.join_counted(&TreeClock::new());
    assert_eq!(stats, OpStats::NOOP);
    assert_eq!(c.get(t(0)), 3);
}

#[test]
fn join_into_empty_clock_copies() {
    let mut empty = TreeClock::new();
    let src = rooted(1, 4);
    empty.join(&src);
    assert_eq!(empty.get(t(1)), 4);
    assert_eq!(empty.root_tid(), Some(t(1)));
    assert_eq!(empty.check_invariants(), Ok(()));
}

#[test]
fn join_already_known_is_cheap_noop() {
    let mut a = rooted(0, 1);
    let b = rooted(1, 5);
    a.join(&b);
    // Joining the same information again touches only the root.
    let stats = a.join_counted(&b);
    assert_eq!(stats, OpStats::new(1, 0, 0));
}

#[test]
#[should_panic(expected = "progressed on self's root thread")]
fn join_rejects_foreign_progress_on_own_thread() {
    let mut src = rooted(1, 1);
    src.join(&rooted(0, 5));
    let mut a = rooted(0, 1);
    a.join(&src);
}

#[test]
fn monotone_copy_into_empty_is_deep_copy() {
    let mut lock = TreeClock::new();
    let mut c = rooted(0, 2);
    c.join(&rooted(1, 1));
    let stats = lock.monotone_copy_counted(&c);
    assert_eq!(lock.vector_time(), c.vector_time());
    assert_eq!(lock.root_tid(), Some(t(0)));
    assert_eq!(stats.changed, 2);
    assert_eq!(lock.check_invariants(), Ok(()));
}

#[test]
fn monotone_copy_of_empty_into_empty_is_noop() {
    let mut a = TreeClock::new();
    let stats = a.monotone_copy_counted(&TreeClock::new());
    assert_eq!(stats, OpStats::NOOP);
    assert!(a.is_empty());
}

#[test]
#[should_panic(expected = "self ⋢ other")]
fn monotone_copy_rejects_non_monotone_target() {
    let mut lw = rooted(1, 9);
    let c = rooted(0, 2);
    lw.monotone_copy(&c);
}

#[test]
fn copy_check_monotone_takes_fast_path_when_ordered() {
    let mut lw = TreeClock::new();
    let mut c = rooted(0, 1);
    lw.monotone_copy(&c); // lw = [1]
    c.increment(2);
    let mode = lw.copy_check_monotone(&c);
    assert_eq!(mode, CopyMode::Monotone);
    assert_eq!(lw.get(t(0)), 3);
}

#[test]
fn copy_check_monotone_falls_back_to_deep_copy() {
    // lw knows t1@9, which c does not: the copy is not monotone
    // (in SHB this is exactly a write-read race).
    let mut lw = rooted(1, 9);
    let c = rooted(0, 2);
    let mode = lw.copy_check_monotone(&c);
    assert_eq!(mode, CopyMode::Deep);
    assert_eq!(lw.get(t(1)), 0); // entries may decrease: copy, not join
    assert_eq!(lw.get(t(0)), 2);
    assert_eq!(lw.root_tid(), Some(t(0)));
    assert_eq!(lw.check_invariants(), Ok(()));
}

#[test]
fn clock_grows_for_large_thread_ids() {
    let mut a = rooted(0, 1);
    a.join(&rooted(100, 42));
    assert_eq!(a.get(t(100)), 42);
    assert!(a.num_threads() >= 101);
    assert_eq!(a.check_invariants(), Ok(()));
}

#[test]
fn equality_is_vector_time_equality() {
    // Same times, different shapes (learned in different orders).
    let mut a = rooted(0, 1);
    a.join(&rooted(1, 1));
    a.join(&rooted(2, 1));

    let mut via = rooted(1, 1);
    via.join(&rooted(2, 1));
    let mut b = rooted(0, 1);
    b.join(&via);

    assert_ne!(a.children(t(0)), b.children(t(0))); // shapes differ
    assert_eq!(a, b); // values agree
}

#[test]
fn leq_uses_root_entry() {
    let mut a = rooted(0, 1);
    let b = rooted(1, 1);
    a.join(&b);
    assert!(b.leq(&a));
    assert!(!a.leq(&b));
    assert!(TreeClock::new().leq(&b));
}

#[test]
fn vector_time_reflects_all_nodes() {
    let mut a = rooted(0, 2);
    a.join(&rooted(3, 5));
    assert_eq!(a.vector_time(), VectorTime::from(vec![2, 0, 0, 5]));
}

// ---------------------------------------------------------------------
// Figure 2a → Figure 3 (left): direct monotonicity
// ---------------------------------------------------------------------

#[test]
fn figure_2a_direct_monotonicity() {
    let mut c1 = TreeClock::new();
    let mut c2 = TreeClock::new();
    let mut c3 = TreeClock::new();
    let mut c4 = TreeClock::new();
    c1.init_root(t(1));
    c2.init_root(t(2));
    c3.init_root(t(3));
    c4.init_root(t(4));
    let (mut l1, mut l2, mut l3) = (TreeClock::new(), TreeClock::new(), TreeClock::new());

    sync(&mut c1, &mut l1); // e1: t1 sync(l1)
    sync(&mut c2, &mut l1); // e2: t2 sync(l1)
    sync(&mut c3, &mut l1); // e3: t3 sync(l1)
    sync(&mut c2, &mut l2); // e4: t2 sync(l2)
    sync(&mut c4, &mut l2); // e5: t4 sync(l2)
    sync(&mut c3, &mut l3); // e6: t3 sync(l3)

    // e7: t4 sync(l3). Before the join, t4 knows t2@2 while l3 records
    // t2@1, so the join must not descend below t2 (and never examine t1).
    c4.increment(1);
    let stats = c4.join_counted(&l3);
    // examined: the root progress check (t3) + one child comparison (t2).
    assert_eq!(stats.examined, 2);
    assert_eq!(stats.changed, 1); // only t3's entry progressed
    assert_eq!(stats.moved, 1);
    l3.monotone_copy(&c4);

    // Figure 3 (left): the tree clock of t4 after e7.
    assert_eq!(
        c4.to_string(),
        "(t4, 2, ⊥)[(t3, 2, 2), (t2, 2, 1)[(t1, 1, 1)]]"
    );
    assert_eq!(c4.check_invariants(), Ok(()));
}

// ---------------------------------------------------------------------
// Figure 2b → Figure 3 (right): indirect monotonicity
// ---------------------------------------------------------------------

#[test]
fn figure_2b_indirect_monotonicity() {
    let mut c1 = TreeClock::new();
    let mut c2 = TreeClock::new();
    let mut c3 = TreeClock::new();
    let mut c4 = TreeClock::new();
    c1.init_root(t(1));
    c2.init_root(t(2));
    c3.init_root(t(3));
    c4.init_root(t(4));
    let (mut l1, mut l2, mut l3) = (TreeClock::new(), TreeClock::new(), TreeClock::new());

    sync(&mut c1, &mut l1); // e1: t1 sync(l1)
    sync(&mut c2, &mut l2); // e2: t2 sync(l2)
    sync(&mut c3, &mut l1); // e3: t3 sync(l1), learns t1 at t3-time 1
    sync(&mut c3, &mut l2); // e4: t3 sync(l2), learns t2 at t3-time 2
    sync(&mut c4, &mut l2); // e5: t4 sync(l2), learns e1-e4 through t3
    assert_eq!(
        c4.to_string(),
        "(t4, 1, ⊥)[(t3, 2, 1)[(t2, 1, 2), (t1, 1, 1)]]"
    );
    sync(&mut c3, &mut l3); // e6: t3 sync(l3)

    // e7: t4 sync(l3): t3 progressed (2 -> 3), but its children were
    // attached at t3-times <= 2, all of which t4 already knows about:
    // the child scan stops at t2 and never reaches t1.
    c4.increment(1);
    let stats = c4.join_counted(&l3);
    assert_eq!(stats.examined, 2); // root check + t2, then the break
    assert_eq!(stats.changed, 1);
    assert_eq!(stats.moved, 1);

    // Figure 3 (right): the tree clock of t4 after e7.
    assert_eq!(
        c4.to_string(),
        "(t4, 2, ⊥)[(t3, 3, 2)[(t2, 1, 2), (t1, 1, 1)]]"
    );
    assert_eq!(c4.check_invariants(), Ok(()));
}

// ---------------------------------------------------------------------
// Appendix B: the full 16-event run of Figures 11 and 12
// ---------------------------------------------------------------------

/// Drives Algorithm 3 by hand on the Appendix B trace and checks the
/// intermediate clock trees shown in Figures 11b and 12, including the
/// exact sets of examined/updated nodes of Figure 12.
#[test]
fn appendix_b_example_run() {
    let mut c: Vec<TreeClock> = (0..6).map(|_| TreeClock::new()).collect();
    for i in 1..=5u32 {
        c[i as usize].init_root(t(i));
    }
    let mut l1 = TreeClock::new();
    let mut l2 = TreeClock::new();
    let mut l3 = TreeClock::new();

    let acq = |c: &mut TreeClock, l: &mut TreeClock| {
        c.increment(1);
        c.join_counted(l)
    };
    let rel = |c: &mut TreeClock, l: &mut TreeClock| {
        c.increment(1);
        l.monotone_copy_counted(c)
    };

    acq(&mut c[1], &mut l1); // e1
    rel(&mut c[1], &mut l1); // e2
    assert_eq!(l1.to_string(), "(t1, 2, ⊥)");
    acq(&mut c[4], &mut l2); // e3
    rel(&mut c[4], &mut l2); // e4
    assert_eq!(l2.to_string(), "(t4, 2, ⊥)");
    acq(&mut c[5], &mut l3); // e5
    rel(&mut c[5], &mut l3); // e6
    assert_eq!(l3.to_string(), "(t5, 2, ⊥)");

    acq(&mut c[3], &mut l1); // e7
    assert_eq!(c[3].to_string(), "(t3, 1, ⊥)[(t1, 2, 1)]");
    acq(&mut c[3], &mut l3); // e8
    assert_eq!(c[3].to_string(), "(t3, 2, ⊥)[(t5, 2, 2), (t1, 2, 1)]");
    rel(&mut c[3], &mut l3); // e9
    assert_eq!(l3.to_string(), "(t3, 3, ⊥)[(t5, 2, 2), (t1, 2, 1)]");
    rel(&mut c[3], &mut l1); // e10
    assert_eq!(l1.to_string(), "(t3, 4, ⊥)[(t5, 2, 2), (t1, 2, 1)]");
    acq(&mut c[3], &mut l2); // e11
    assert_eq!(
        c[3].to_string(),
        "(t3, 5, ⊥)[(t4, 2, 5), (t5, 2, 2), (t1, 2, 1)]"
    );
    rel(&mut c[3], &mut l2); // e12
    assert_eq!(
        l2.to_string(),
        "(t3, 6, ⊥)[(t4, 2, 5), (t5, 2, 2), (t1, 2, 1)]"
    );

    acq(&mut c[2], &mut l1); // e13
    assert_eq!(
        c[2].to_string(),
        "(t2, 1, ⊥)[(t3, 4, 1)[(t5, 2, 2), (t1, 2, 1)]]"
    );
    rel(&mut c[2], &mut l1); // e14
    assert_eq!(
        l1.to_string(),
        "(t2, 2, ⊥)[(t3, 4, 1)[(t5, 2, 2), (t1, 2, 1)]]"
    );

    // e15 (Figure 12a): t2 joins l2. The traversal compares the root t3
    // and children t4 (progressed) and t5 (known, attached at t3-time 2
    // <= t2's knowledge 4 of t3 -> break). t1 is never examined. The
    // updated nodes are exactly {t3, t4}.
    let stats = acq(&mut c[2], &mut l2);
    assert_eq!(stats.examined, 3);
    assert_eq!(stats.moved, 2);
    assert_eq!(stats.changed, 2);
    assert_eq!(
        c[2].to_string(),
        "(t2, 3, ⊥)[(t3, 6, 3)[(t4, 2, 5), (t5, 2, 2), (t1, 2, 1)]]"
    );

    // e16 (Figure 12b): l2 monotone-copies t2's clock. Only t2 (the new
    // root) and t3 (l2's old root, repositioned) are touched; t3's
    // subtree moves wholesale.
    let stats = rel(&mut c[2], &mut l2);
    assert_eq!(stats.examined, 2);
    assert_eq!(stats.moved, 2);
    assert_eq!(stats.changed, 1); // only t2's entry changes value
    assert_eq!(
        l2.to_string(),
        "(t2, 4, ⊥)[(t3, 6, 3)[(t4, 2, 5), (t5, 2, 2), (t1, 2, 1)]]"
    );
    assert_eq!(l2.check_invariants(), Ok(()));

    // Final sanity: every clock agrees with its vector-time meaning.
    assert_eq!(c[2].vector_time(), VectorTime::from(vec![0, 2, 4, 6, 2, 2]));
}

// ---------------------------------------------------------------------
// Re-rooting copies
// ---------------------------------------------------------------------

#[test]
fn monotone_copy_rewires_old_root_under_new_root() {
    // lock = (t1, 1); t2 joins it then releases: the lock clock must
    // re-root at t2 and keep t1 as a child.
    let mut lock = TreeClock::new();
    lock.monotone_copy(&rooted(1, 1));
    let mut c2 = rooted(2, 1);
    c2.join(&lock);
    c2.increment(1);
    let stats = lock.monotone_copy_counted(&c2);
    assert_eq!(lock.root_tid(), Some(t(2)));
    assert_eq!(lock.to_string(), "(t2, 2, ⊥)[(t1, 1, 1)]");
    assert_eq!(stats.moved, 2); // t2 (new root) + t1 (old root, rewired)
    assert_eq!(lock.check_invariants(), Ok(()));
}

#[test]
fn monotone_copy_with_same_root_thread_updates_in_place() {
    let mut lock = TreeClock::new();
    let mut c1 = rooted(1, 1);
    lock.monotone_copy(&c1); // lock rooted at t1
    c1.increment(3);
    let stats = lock.monotone_copy_counted(&c1); // same root thread, time 1 -> 4
    assert_eq!(lock.root_tid(), Some(t(1)));
    assert_eq!(lock.get(t(1)), 4);
    assert_eq!(stats.changed, 1);
    assert_eq!(lock.check_invariants(), Ok(()));
}

/// Regression: the gather traversal prunes siblings once a child's
/// attachment clock shows the destination already knew the rest of the
/// list — but the destination's old root may sit *past* that cut when
/// it has not progressed. Star-materialized sources (every child under
/// the root with `aclk = 0`, the shape the hybrid backend and
/// `restore_value` produce) hit this on the very first non-progressed
/// child. The copy must still re-root correctly and keep every entry.
#[test]
fn monotone_copy_star_source_repositions_unreached_old_root() {
    // Source: a star rooted at t9 — t0..t8 attached with aclk 0.
    let mut src_desc = vec![(t(9), 4u32, None)];
    let src_times = [5u32, 7, 7, 7, 7, 7, 7, 7, 6];
    for (i, &clk) in src_times.iter().enumerate() {
        src_desc.push((t(i as u32), clk, Some((t(9), 0))));
    }
    let src = TreeClock::from_structure(&src_desc).unwrap();

    // Destination: a lock clock rooted at t8 that equals the source on
    // t1..t6 and t8 and lags only on t0. The traversal descends into
    // t0, then breaks at t1 (aclk 0 ≤ known 0) — before reaching the
    // old root t8.
    let mut dst_desc = vec![(t(8), 6u32, None)];
    let dst_times = [3u32, 7, 7, 7, 7, 7, 7];
    for (i, &clk) in dst_times.iter().enumerate() {
        dst_desc.push((t(i as u32), clk, Some((t(8), 6 - i as u32))));
    }
    let mut lock = TreeClock::from_structure(&dst_desc).unwrap();

    lock.monotone_copy(&src);
    assert_eq!(lock.root_tid(), Some(t(9)));
    assert_eq!(lock.vector_time(), src.vector_time());
    assert_eq!(lock.check_invariants(), Ok(()));
}

#[test]
fn repeated_lock_handoff_keeps_invariants() {
    // A ring of threads passing one lock around twice.
    let k = 8u32;
    let mut threads: Vec<TreeClock> = (0..k).map(|i| rooted(i, 0)).collect();
    let mut lock = TreeClock::new();
    for round in 0..2 {
        for (i, thread) in threads.iter_mut().enumerate() {
            thread.increment(1);
            thread.join(&lock);
            thread.increment(1);
            lock.monotone_copy(thread);
            assert_eq!(lock.check_invariants(), Ok(()), "round {round}, thread {i}");
        }
    }
    // After the first full round, everyone is (transitively) known.
    let last = &threads[(k - 1) as usize];
    for i in 0..k {
        assert!(last.get(t(i)) > 0, "t{i} unknown to the last thread");
    }
}

// ---------------------------------------------------------------------
// Adaptive copy fallback
// ---------------------------------------------------------------------

/// When most of the tree progressed, `monotone_copy` switches to a flat
/// structural clone; semantics (vector time, invariants) must be
/// indistinguishable from the surgical path.
#[test]
fn adaptive_copy_fallback_is_semantically_transparent() {
    // Target knows a little; source knows a lot more about everyone.
    let mut lock = TreeClock::new();
    lock.monotone_copy(&rooted(0, 1));
    let mut c = rooted(0, 1);
    for i in 1..12u32 {
        c.increment(1);
        c.join(&rooted(i, 7));
    }
    c.increment(1);
    let stats = lock.monotone_copy_counted(&c);
    // Nearly every entry changed -> the fallback path ran; the result
    // must still be exactly `c`'s vector time with valid structure.
    assert!(stats.changed >= 11);
    assert_eq!(lock.vector_time(), c.vector_time());
    assert_eq!(lock.root_tid(), Some(t(0)));
    assert_eq!(lock.check_invariants(), Ok(()));
    // And the work accounting still respects the Theorem 1 budget.
    assert!(stats.examined <= 3 * (stats.changed + 1));
}

/// Small update sets must keep using the surgical path (the clone
/// would examine the whole arena).
#[test]
fn small_copies_stay_surgical() {
    let mut lock = TreeClock::new();
    let mut c = rooted(0, 1);
    for i in 1..32u32 {
        c.increment(1);
        c.join(&rooted(i, 1));
    }
    lock.monotone_copy(&c); // lock now mirrors c
    c.increment(1); // one new local event
    let stats = lock.monotone_copy_counted(&c);
    assert!(
        stats.examined < 8,
        "a one-entry copy must not examine the whole tree (examined {})",
        stats.examined
    );
    assert_eq!(lock.get(t(0)), c.get(t(0)));
    assert_eq!(lock.check_invariants(), Ok(()));
}
