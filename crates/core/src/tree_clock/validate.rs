//! Structural invariant checking for [`TreeClock`].
//!
//! The checker verifies every property the algorithms rely on; it runs
//! inside `debug_assert!` after each mutating operation and is exercised
//! heavily by the property-based tests.

use std::error::Error;
use std::fmt;

use super::node::NIL;
use super::TreeClock;

/// A violated [`TreeClock`] structural invariant (also returned by
/// [`TreeClock::from_structure`] for malformed descriptions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    message: String,
}

impl InvariantViolation {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        InvariantViolation {
            message: message.into(),
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tree clock invariant violated: {}", self.message)
    }
}

impl Error for InvariantViolation {}

impl TreeClock {
    /// Checks every structural invariant of the tree clock:
    ///
    /// 1. an empty clock has no present nodes;
    /// 2. the root is present and has no parent and no attachment clock
    ///    semantics;
    /// 3. parent/child/sibling links are mutually consistent;
    /// 4. every present node is reachable from the root exactly once (no
    ///    cycles, no orphans);
    /// 5. each child list is sorted by non-increasing attachment clock,
    ///    and every attachment clock is at most the parent's clock;
    /// 6. absent slots carry no stale time.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let present_count = self.nodes.iter().filter(|s| s.present()).count();
        let Some(root) = self.root_idx() else {
            if present_count != 0 {
                return Err(InvariantViolation::new(format!(
                    "empty clock (no root) but {present_count} nodes present"
                )));
            }
            return Ok(());
        };

        let root_slot = self
            .nodes
            .get(root as usize)
            .ok_or_else(|| InvariantViolation::new("root index out of bounds"))?;
        if !root_slot.present() {
            return Err(InvariantViolation::new("root node is not present"));
        }
        if root_slot.parent != NIL {
            return Err(InvariantViolation::new("root node has a parent"));
        }

        for (i, slot) in self.nodes.iter().enumerate() {
            if !slot.present() && self.clks[i] != 0 {
                return Err(InvariantViolation::new(format!(
                    "absent slot {i} has non-zero time {}",
                    self.clks[i]
                )));
            }
        }

        // Iterative DFS from the root, checking link consistency.
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut reached = 0usize;
        while let Some(u) = stack.pop() {
            let iu = u as usize;
            if visited[iu] {
                return Err(InvariantViolation::new(format!(
                    "node t{u} reached twice (cycle or shared child)"
                )));
            }
            visited[iu] = true;
            reached += 1;
            let node = &self.nodes[iu];
            let node_clk = self.clks[iu];
            let mut child = node.head_child;
            let mut prev = NIL;
            let mut prev_aclk = None::<u32>;
            while child != NIL {
                let c = self
                    .nodes
                    .get(child as usize)
                    .ok_or_else(|| InvariantViolation::new("child index out of bounds"))?;
                if !c.present() {
                    return Err(InvariantViolation::new(format!(
                        "node t{u} links to absent child t{child}"
                    )));
                }
                if c.parent != u {
                    return Err(InvariantViolation::new(format!(
                        "child t{child} of t{u} has parent link t{}",
                        c.parent
                    )));
                }
                if c.prev_sib != prev {
                    return Err(InvariantViolation::new(format!(
                        "child t{child} of t{u} has wrong prev_sib"
                    )));
                }
                if c.aclk > node_clk {
                    return Err(InvariantViolation::new(format!(
                        "child t{child} attached at {} but parent t{u} is only at {}",
                        c.aclk, node_clk
                    )));
                }
                if let Some(pa) = prev_aclk {
                    if c.aclk > pa {
                        return Err(InvariantViolation::new(format!(
                            "children of t{u} not in descending attachment order \
                             ({} after {})",
                            c.aclk, pa
                        )));
                    }
                }
                prev_aclk = Some(c.aclk);
                stack.push(child);
                prev = child;
                child = c.next_sib;
            }
        }
        if reached != present_count {
            return Err(InvariantViolation::new(format!(
                "{present_count} nodes present but only {reached} reachable from root"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LogicalClock, ThreadId};

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn empty_clock_is_valid() {
        assert_eq!(TreeClock::new().check_invariants(), Ok(()));
    }

    #[test]
    fn initialized_clock_is_valid() {
        let mut tc = TreeClock::new();
        tc.init_root(t(3));
        tc.increment(2);
        assert_eq!(tc.check_invariants(), Ok(()));
    }

    #[test]
    fn from_structure_rejects_two_roots() {
        let err = TreeClock::from_structure(&[(t(0), 1, None), (t(1), 1, None)]).unwrap_err();
        assert!(err.to_string().contains("two roots"));
    }

    #[test]
    fn from_structure_rejects_duplicate_threads() {
        let err = TreeClock::from_structure(&[
            (t(0), 3, None),
            (t(1), 1, Some((t(0), 1))),
            (t(1), 2, Some((t(0), 2))),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn from_structure_rejects_aclk_beyond_parent_clock() {
        let err =
            TreeClock::from_structure(&[(t(0), 3, None), (t(1), 1, Some((t(0), 5)))]).unwrap_err();
        assert!(err.to_string().contains("attached at 5"));
    }

    #[test]
    fn from_structure_rejects_unordered_child_list() {
        let err = TreeClock::from_structure(&[
            (t(0), 9, None),
            (t(1), 1, Some((t(0), 2))),
            (t(2), 1, Some((t(0), 7))), // larger aclk listed after smaller
        ])
        .unwrap_err();
        assert!(err.to_string().contains("descending"));
    }

    #[test]
    fn from_structure_accepts_paper_figure_3_left() {
        // Figure 3 (left): t4's clock after e7 in the trace of Figure 2a.
        let tc = TreeClock::from_structure(&[
            (t(4), 2, None),
            (t(3), 2, Some((t(4), 2))),
            (t(2), 2, Some((t(4), 1))),
            (t(1), 1, Some((t(2), 1))),
        ])
        .unwrap();
        assert_eq!(tc.get(t(4)), 2);
        assert_eq!(tc.get(t(1)), 1);
        assert_eq!(tc.children(t(4)), vec![t(3), t(2)]);
        assert_eq!(tc.children(t(2)), vec![t(1)]);
    }

    #[test]
    fn violation_formats_with_context() {
        let v = InvariantViolation::new("boom");
        assert_eq!(v.to_string(), "tree clock invariant violated: boom");
    }
}
