//! The tree clock data structure (Algorithm 2 of the paper).
//!
//! A [`TreeClock`] represents the same vector timestamp as a
//! [`VectorClock`](crate::VectorClock), but arranges the per-thread
//! entries in a rooted tree whose edges record *how* the information was
//! acquired: if `v` is the parent of `u`, then the clock learned `u`'s
//! time through `v`, at `v`-time `u.aclk` (the *attachment clock*).
//!
//! Two consequences of causality make joins fast (Section 3.1):
//!
//! - **Direct monotonicity** — if the receiving clock already knows
//!   `u.clk` of `u.tid`, it already knows everything below `u`, so the
//!   join never descends into `u`'s subtree.
//! - **Indirect monotonicity** — children are kept in descending
//!   attachment-clock order, so once a child's `aclk` is at-or-before the
//!   receiver's knowledge of the parent, the rest of the child list can
//!   be skipped.
//!
//! The representation is the paper's "two arrays of length k" — a dense
//! array of local times plus a parallel arena of tree links, indexed by
//! thread id (the `ThrMap` of Algorithm 2 is the identity map) — and all
//! traversals are iterative.

mod copy;
mod display;
mod join;
mod node;
mod validate;

#[cfg(test)]
mod tests;

pub use validate::InvariantViolation;

use crate::clock::{CopyMode, LogicalClock, OpStats};
use crate::{LocalTime, ThreadId, VectorTime};

use node::{Node, NIL};

/// One node of an explicit tree description for
/// [`TreeClock::from_structure`]: `(tid, clk, parent)` with `parent`
/// being `None` for the root and `Some((parent_tid, aclk))` otherwise.
pub type NodeDescriptor = (ThreadId, LocalTime, Option<(ThreadId, LocalTime)>);

/// A hierarchical logical clock with sublinear join and copy operations.
///
/// See the [module documentation](self) for the design and the crate
/// root for a usage example. `TreeClock` implements
/// [`LogicalClock`], so it is a drop-in replacement for
/// [`VectorClock`](crate::VectorClock) in any partial-order computation.
///
/// # Example
///
/// ```rust
/// use tc_core::{LogicalClock, ThreadId, TreeClock};
///
/// // Thread t2's clock after learning about t1:
/// let mut c2 = TreeClock::new();
/// c2.init_root(ThreadId::new(2));
/// c2.increment(2);
///
/// let mut c1 = TreeClock::new();
/// c1.init_root(ThreadId::new(1));
/// c1.increment(1);
///
/// c2.join(&c1);
/// assert_eq!(c2.get(ThreadId::new(1)), 1);
/// // The tree remembers that t1 was attached at t2-time 2:
/// let info = c2.node(ThreadId::new(1)).unwrap();
/// assert_eq!(info.parent, Some(ThreadId::new(2)));
/// assert_eq!(info.aclk, 2);
/// ```
#[derive(Clone)]
pub struct TreeClock {
    /// Dense local times; `clks[i] == 0` also covers absent threads
    /// (the "timestamps array" of the paper's implementation).
    clks: Vec<LocalTime>,
    /// Tree links, parallel to `clks` (the "shape array").
    nodes: Vec<Node>,
    /// Root node index, or `NIL` when the clock is empty.
    root: u32,
    /// Number of present (in-tree) nodes, maintained incrementally so
    /// the sparse copy/clear paths and the adaptive fallback threshold
    /// are O(1) to size.
    num_present: u32,
    /// Consecutive *uncounted* operations that moved most of the tree.
    /// Drives the adaptive dense fast paths of the timed hot path (see
    /// [`flat_join`](Self::flat_join)); the instrumented (`COUNT`)
    /// variants always run the exact surgical algorithm.
    dense_streak: u8,
    /// Uncounted operations taken by a dense fast path since the last
    /// surgical probe (the fast path re-measures density periodically).
    dense_ops: u32,
    /// Scratch stack `S` of Algorithm 2, reused across operations.
    gather: Vec<u32>,
    /// Scratch traversal frames, reused across operations.
    frames: Vec<join::Frame>,
}

/// Consecutive dense operations before the timed path switches to the
/// dense (flat) fast paths.
const DENSE_STREAK_LIMIT: u8 = 3;

/// While in dense mode, every `DENSE_PROBE_PERIOD`-th operation runs the
/// surgical algorithm to re-measure density (and exit dense mode when
/// the workload turns sparse again).
const DENSE_PROBE_PERIOD: u32 = 256;

/// A read-only snapshot of one tree-clock node, for inspection and
/// testing (compare against the paper's figures).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeView {
    /// The thread whose time this node stores.
    pub tid: ThreadId,
    /// Last known local time of `tid`.
    pub clk: LocalTime,
    /// Attachment clock (0 and meaningless for the root).
    pub aclk: LocalTime,
    /// Parent thread, or `None` for the root.
    pub parent: Option<ThreadId>,
}

impl TreeClock {
    /// Creates an empty tree clock.
    pub fn new() -> Self {
        TreeClock {
            clks: Vec::new(),
            nodes: Vec::new(),
            root: NIL,
            num_present: 0,
            dense_streak: 0,
            dense_ops: 0,
            gather: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Records whether an uncounted surgical operation was *dense*,
    /// feeding the adaptive fast-path switch.
    ///
    /// Density is judged against the *arena length*, not the tree size:
    /// the flat fast path costs Θ(arena) per operation, so it only pays
    /// off when the surgically moved set is a sizable fraction of the
    /// arena. (Judging against the tree size would classify every small
    /// tree as dense and make sparse scenarios sweep the whole arena.)
    #[inline]
    pub(crate) fn note_density(&mut self, moved: usize, arena: usize) {
        if moved * 4 >= arena.max(1) {
            self.dense_streak = self.dense_streak.saturating_add(1);
        } else {
            self.dense_streak = 0;
        }
    }

    /// Returns `true` when the timed path should take the dense fast
    /// path for this operation (recent operations were dense, and this
    /// one is not a periodic surgical re-probe).
    #[inline]
    pub(crate) fn take_dense_path(&mut self) -> bool {
        if self.dense_streak < DENSE_STREAK_LIMIT {
            return false;
        }
        self.dense_ops = self.dense_ops.wrapping_add(1);
        !self.dense_ops.is_multiple_of(DENSE_PROBE_PERIOD)
    }

    // ---- internal arena helpers -------------------------------------

    /// The represented time of thread index `idx` (0 if absent).
    #[inline]
    pub(crate) fn get_idx(&self, idx: u32) -> LocalTime {
        self.clks.get(idx as usize).copied().unwrap_or(0)
    }

    #[inline]
    pub(crate) fn root_idx(&self) -> Option<u32> {
        if self.root == NIL {
            None
        } else {
            Some(self.root)
        }
    }

    #[inline]
    pub(crate) fn is_present(&self, idx: u32) -> bool {
        self.nodes.get(idx as usize).is_some_and(|n| n.present())
    }

    /// Grows both arrays so index `idx` is addressable.
    pub(crate) fn ensure_slot(&mut self, idx: u32) {
        let len = idx as usize + 1;
        if len > self.nodes.len() {
            self.nodes.resize_with(len, Node::default);
            self.clks.resize(len, 0);
        }
    }

    /// Removes `child` from its parent's child list. The caller is
    /// responsible for re-linking it (or marking it absent).
    ///
    /// Takes the node arena directly so callers holding other disjoint
    /// field borrows (the scratch stacks) can still unlink.
    #[inline]
    pub(crate) fn unlink_in(nodes: &mut [Node], child: u32) {
        let Node {
            parent,
            next_sib: next,
            prev_sib: prev,
            ..
        } = nodes[child as usize];
        if prev == NIL {
            nodes[parent as usize].head_child = next;
        } else {
            nodes[prev as usize].next_sib = next;
        }
        if next != NIL {
            nodes[next as usize].prev_sib = prev;
        }
    }

    /// Pushes `child` at the front of `parent`'s child list (the paper's
    /// `pushChild`). The front position keeps the list in descending
    /// attachment-clock order.
    #[inline]
    pub(crate) fn push_child_in(nodes: &mut [Node], child: u32, parent: u32) {
        let old_head = nodes[parent as usize].head_child;
        {
            let c = &mut nodes[child as usize];
            c.parent = parent;
            c.prev_sib = NIL;
            c.next_sib = old_head;
        }
        if old_head != NIL {
            nodes[old_head as usize].prev_sib = child;
        }
        nodes[parent as usize].head_child = child;
    }

    /// Detaches from this tree every node whose thread appears in the
    /// gathered stack (the paper's `detachNodes`).
    pub(crate) fn detach_nodes_in(nodes: &mut [Node], root: u32, gathered: &[u32]) {
        for &vp in gathered {
            if let Some(n) = nodes.get(vp as usize) {
                if n.present() && vp != root {
                    Self::unlink_in(nodes, vp);
                }
            }
        }
    }

    /// Re-attaches the gathered nodes, mirroring the shape of `other`'s
    /// corresponding subtree (the paper's `attachNodes`). Pops from the
    /// stack so parents are processed before their children.
    ///
    /// Operates on the destination's fields directly (instead of
    /// `&mut self`) so the gathered stack can be the destination's own
    /// scratch buffer — borrowed disjointly, with no swap-out.
    pub(crate) fn attach_nodes_in<const COUNT: bool>(
        nodes: &mut Vec<Node>,
        clks: &mut Vec<LocalTime>,
        num_present: &mut u32,
        other: &TreeClock,
        gathered: &mut Vec<u32>,
        stats: &mut OpStats,
    ) {
        if let Some(max) = gathered.iter().copied().max() {
            let len = max as usize + 1;
            if len > nodes.len() {
                nodes.resize_with(len, Node::default);
                clks.resize(len, 0);
            }
        }
        while let Some(up) = gathered.pop() {
            let iu = up as usize;
            if !nodes[iu].present() {
                *num_present += 1;
            }
            let o_clk = other.clks[iu];
            let src = &other.nodes[iu];
            let (o_aclk, o_parent) = (src.aclk, src.parent);
            if COUNT {
                stats.moved += 1;
                if clks[iu] != o_clk {
                    stats.changed += 1;
                }
            }
            clks[iu] = o_clk;
            if o_parent != NIL {
                nodes[iu].aclk = o_aclk;
                Self::push_child_in(nodes, up, o_parent);
            } else if !nodes[iu].present() {
                // New root of an empty-side attach: mark in-tree; the
                // caller sets the root pointer.
                nodes[iu].parent = NIL;
            }
        }
    }

    /// Deep copy: makes `self` an exact structural replica of `other`.
    ///
    /// Used when joining into / copying into an empty clock and as the
    /// fallback of [`copy_check_monotone`](LogicalClock::copy_check_monotone).
    ///
    /// The copy is *sparse*: it walks the present nodes of the two trees
    /// instead of their dense arrays, so the cost — both the physical
    /// work and the `examined` entries reported when `COUNT` — is
    /// `O(|self| ∪ |other|)` present entries, not `Θ(k)` array length.
    /// This is what lets a first copy into a fresh per-variable clock
    /// cost only the information it actually transfers, which in turn is
    /// what keeps SHB/MAZ tree-clock work inside the paper's plain
    /// `3·VTWork` bound on short traces (the conformance checker used to
    /// need a per-copy dimension surcharge to excuse the dense copy).
    ///
    /// `changed` (the `VTWork` contribution) stays exact: every entry
    /// outside the union of present sets is 0 on both sides.
    pub(crate) fn clone_structure_from<const COUNT: bool>(&mut self, other: &TreeClock) -> OpStats {
        let mut stats = OpStats::NOOP;
        if !COUNT {
            // Timed path: replicating the two dense arrays is a pair of
            // memcpys — far faster than the sparse walk for the array
            // lengths a thread dimension produces. The walk below is the
            // *model*-accurate variant: it establishes that the
            // information transferred is O(present), which is what the
            // counted runs (and Theorem 1's corpus checks) measure.
            self.clks.clone_from(&other.clks);
            self.nodes.clone_from(&other.nodes);
            self.root = other.root;
            self.num_present = other.num_present;
            return stats;
        }
        let Some(zp) = other.root_idx() else {
            // Copying an empty clock is just a (counted) clear.
            Self::clear_tree_in::<COUNT>(
                &mut self.nodes,
                &mut self.clks,
                &mut self.root,
                &mut self.num_present,
                None,
                &mut stats,
            );
            return stats;
        };

        // Phase 1: walk `other`'s tree (preorder, via a cursor into the
        // scratch stack), comparing against self's *old* values.
        self.gather.clear();
        self.gather.push(zp);
        let mut max_idx = zp;
        let mut cursor = 0;
        while cursor < self.gather.len() {
            let u = self.gather[cursor];
            cursor += 1;
            max_idx = max_idx.max(u);
            if COUNT {
                stats.examined += 1;
                if join::time_at(&self.clks, u) != other.clks[u as usize] {
                    stats.changed += 1;
                }
                stats.moved += 1;
            }
            let mut c = other.nodes[u as usize].head_child;
            while c != NIL {
                self.gather.push(c);
                c = other.nodes[c as usize].next_sib;
            }
        }

        // Phase 2: tear down self's old tree. Entries present in self
        // but not in other drop back to 0; they are the only old entries
        // phase 1 has not already examined.
        Self::clear_tree_in::<COUNT>(
            &mut self.nodes,
            &mut self.clks,
            &mut self.root,
            &mut self.num_present,
            Some(other),
            &mut stats,
        );

        // Phase 3: materialize other's nodes. Links can be copied
        // verbatim — they only reference present nodes of `other`, all
        // of which are in `gathered`.
        self.ensure_slot(max_idx);
        for idx in 0..self.gather.len() {
            let u = self.gather[idx] as usize;
            self.nodes[u] = other.nodes[u].clone();
            self.clks[u] = other.clks[u];
        }
        self.root = other.root;
        self.num_present = other.num_present;

        self.gather.clear();
        debug_assert_eq!(self.check_invariants(), Ok(()));
        stats
    }

    /// Iteratively dismantles a clock's tree in O(present) time and
    /// O(1) space (descending head-child chains, unlinking leaves),
    /// resetting every visited node and local time. Operates on the
    /// fields directly so callers can hold other disjoint borrows.
    ///
    /// When `COUNT`, accounts entries *not* present in `keep_counts_of`
    /// (they were not examined by the caller's own walk): each costs one
    /// `examined`, and one `changed` if its time drops from nonzero to 0.
    fn clear_tree_in<const COUNT: bool>(
        nodes: &mut [Node],
        clks: &mut [LocalTime],
        root: &mut u32,
        num_present: &mut u32,
        keep_counts_of: Option<&TreeClock>,
        stats: &mut OpStats,
    ) {
        let mut cur = *root;
        while cur != NIL {
            let head = nodes[cur as usize].head_child;
            if head != NIL {
                cur = head;
                continue;
            }
            let Node {
                parent,
                next_sib: next,
                ..
            } = nodes[cur as usize];
            if COUNT && !keep_counts_of.is_some_and(|o| o.is_present(cur)) {
                stats.examined += 1;
                if clks[cur as usize] != 0 {
                    stats.changed += 1;
                }
            }
            nodes[cur as usize] = Node::default();
            clks[cur as usize] = 0;
            if parent == NIL {
                break; // the root is always dismantled last
            }
            // `cur` was its parent's head child (we always descend the
            // head chain), so the sibling list shrinks from the front.
            nodes[parent as usize].head_child = next;
            cur = parent;
        }
        *root = NIL;
        *num_present = 0;
    }

    /// Read-only view of the dense local-times array — the value this
    /// clock represents, indexed by thread id (the hybrid clock's flat
    /// interop surface; non-present entries are 0 by invariant).
    #[inline]
    pub(crate) fn times(&self) -> &[LocalTime] {
        &self.clks
    }

    // ---- inspection --------------------------------------------------

    /// Returns a snapshot of the node for thread `t`, or `None` if the
    /// thread is not in the tree.
    pub fn node(&self, t: ThreadId) -> Option<NodeView> {
        let n = self.nodes.get(t.index())?;
        if !n.present() {
            return None;
        }
        Some(NodeView {
            tid: t,
            clk: self.clks[t.index()],
            aclk: if n.parent == NIL { 0 } else { n.aclk },
            parent: if n.parent == NIL {
                None
            } else {
                Some(ThreadId::new(n.parent))
            },
        })
    }

    /// Returns the children of thread `t`'s node, front (largest
    /// attachment clock) to back.
    pub fn children(&self, t: ThreadId) -> Vec<ThreadId> {
        let mut out = Vec::new();
        let Some(n) = self.nodes.get(t.index()) else {
            return out;
        };
        if !n.present() {
            return out;
        }
        let mut c = n.head_child;
        while c != NIL {
            out.push(ThreadId::new(c));
            c = self.nodes[c as usize].next_sib;
        }
        out
    }

    /// Number of threads present in the tree (O(1): maintained
    /// incrementally).
    pub fn node_count(&self) -> usize {
        debug_assert_eq!(
            self.num_present as usize,
            self.nodes.iter().filter(|s| s.present()).count(),
            "num_present counter out of sync"
        );
        self.num_present as usize
    }

    // ---- construction from explicit structure ------------------------

    /// Builds a tree clock from an explicit node list, for tests and
    /// benchmarks that replay shapes from the paper's figures.
    ///
    /// Each entry is `(tid, clk, parent)` where `parent` is
    /// `None` for the root and `Some((parent_tid, aclk))` otherwise.
    /// Children end up in the child list in the order given (which must
    /// be descending in `aclk`, as the data structure maintains).
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantViolation`] if the description is not a
    /// well-formed tree clock (duplicate threads, missing/cyclic parents,
    /// unordered sibling lists, …).
    pub fn from_structure(nodes: &[NodeDescriptor]) -> Result<TreeClock, InvariantViolation> {
        let mut tc = TreeClock::new();
        for &(tid, clk, parent) in nodes {
            tc.ensure_slot(tid.raw());
            if tc.nodes[tid.index()].present() {
                return Err(InvariantViolation::new(format!(
                    "duplicate node for thread {tid}"
                )));
            }
            tc.clks[tid.index()] = clk;
            tc.num_present += 1;
            match parent {
                None => {
                    if tc.root != NIL {
                        return Err(InvariantViolation::new("two roots specified"));
                    }
                    tc.nodes[tid.index()].parent = NIL;
                    tc.root = tid.raw();
                }
                Some((p, aclk)) => {
                    if !tc.is_present(p.raw()) {
                        return Err(InvariantViolation::new(format!(
                            "parent {p} of {tid} not defined before its child"
                        )));
                    }
                    tc.nodes[tid.index()].aclk = aclk;
                    // Append at the *back* so the input order becomes the
                    // front-to-back child order.
                    let mut tail = tc.nodes[p.index()].head_child;
                    if tail == NIL {
                        Self::push_child_in(&mut tc.nodes, tid.raw(), p.raw());
                    } else {
                        while tc.nodes[tail as usize].next_sib != NIL {
                            tail = tc.nodes[tail as usize].next_sib;
                        }
                        tc.nodes[tail as usize].next_sib = tid.raw();
                        tc.nodes[tid.index()].prev_sib = tail;
                        tc.nodes[tid.index()].parent = p.raw();
                    }
                }
            }
        }
        tc.check_invariants()?;
        Ok(tc)
    }
}

impl LogicalClock for TreeClock {
    const NAME: &'static str = "tree";

    fn new() -> Self {
        TreeClock::new()
    }

    fn with_threads(threads: usize) -> Self {
        let mut tc = TreeClock::new();
        tc.nodes.resize_with(threads, Node::default);
        tc.clks.resize(threads, 0);
        tc
    }

    fn init_root(&mut self, t: ThreadId) {
        assert!(
            self.root == NIL,
            "TreeClock::init_root: clock already initialized"
        );
        self.ensure_slot(t.raw());
        self.nodes[t.index()].parent = NIL;
        self.clks[t.index()] = 0;
        self.root = t.raw();
        self.num_present += 1;
    }

    fn root_tid(&self) -> Option<ThreadId> {
        self.root_idx().map(ThreadId::new)
    }

    #[inline]
    fn get(&self, t: ThreadId) -> LocalTime {
        self.get_idx(t.raw())
    }

    fn increment(&mut self, amount: LocalTime) {
        assert!(
            self.root != NIL,
            "TreeClock::increment: clock has no root thread"
        );
        self.clks[self.root as usize] += amount;
    }

    /// O(1) root-entry comparison (the paper's `LessThan`); see the
    /// trait documentation for the validity contract.
    fn leq(&self, other: &Self) -> bool {
        match self.root_idx() {
            None => true,
            Some(r) => self.clks[r as usize] <= other.get_idx(r),
        }
    }

    fn join(&mut self, other: &Self) {
        self.join_impl::<false>(other);
    }

    fn join_counted(&mut self, other: &Self) -> OpStats {
        self.join_impl::<true>(other)
    }

    fn monotone_copy(&mut self, other: &Self) {
        self.monotone_copy_impl::<false>(other);
    }

    fn monotone_copy_counted(&mut self, other: &Self) -> OpStats {
        self.monotone_copy_impl::<true>(other)
    }

    fn copy_check_monotone(&mut self, other: &Self) -> CopyMode {
        if self.leq(other) {
            self.monotone_copy_impl::<false>(other);
            CopyMode::Monotone
        } else {
            self.clone_structure_from::<false>(other);
            CopyMode::Deep
        }
    }

    fn copy_check_monotone_counted(&mut self, other: &Self) -> (CopyMode, OpStats) {
        if self.leq(other) {
            (CopyMode::Monotone, self.monotone_copy_impl::<true>(other))
        } else {
            (CopyMode::Deep, self.clone_structure_from::<true>(other))
        }
    }

    fn vector_time(&self) -> VectorTime {
        VectorTime::from(self.clks.clone())
    }

    fn is_empty(&self) -> bool {
        self.root == NIL
    }

    fn num_threads(&self) -> usize {
        self.nodes.len()
    }

    /// Re-materializes the clock from a checkpointed value as the star
    /// shape (every present thread directly under the root), the same
    /// O(present) construction the dense fast path and the hybrid
    /// backend use.
    fn restore_value(&mut self, times: &[LocalTime], root: Option<ThreadId>) {
        assert!(
            self.root == NIL,
            "TreeClock::restore_value: destination must be empty"
        );
        let Some(r) = root else {
            assert!(
                times.iter().all(|&t| t == 0),
                "TreeClock::restore_value: a rootless clock must be all-zero"
            );
            return;
        };
        self.adopt_flat(times, r.raw());
    }

    /// Sparse reset: dismantles the tree in O(present) time, keeping
    /// the arena buffers for reuse (e.g. via a
    /// [`ClockPool`](crate::pool::ClockPool)).
    fn clear(&mut self) {
        let mut ignored = OpStats::NOOP;
        Self::clear_tree_in::<false>(
            &mut self.nodes,
            &mut self.clks,
            &mut self.root,
            &mut self.num_present,
            None,
            &mut ignored,
        );
        // A recycled clock starts a fresh life: do not let a previous
        // role's density profile steer the adaptive fast paths.
        self.dense_streak = 0;
        self.dense_ops = 0;
    }

    fn reserve_threads(&mut self, threads: usize) {
        if threads > 0 {
            self.ensure_slot(threads as u32 - 1);
        }
    }

    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.clks.capacity() * size_of::<LocalTime>()
            + self.nodes.capacity() * size_of::<Node>()
            + self.gather.capacity() * size_of::<u32>()
            + self.frames.capacity() * size_of::<join::Frame>()
    }
}

impl Default for TreeClock {
    /// Same as [`TreeClock::new`]. (A derived `Default` would zero the
    /// root index, which is a valid thread id, not the `NIL` sentinel —
    /// the clock would silently claim thread 0 as its root.)
    fn default() -> Self {
        TreeClock::new()
    }
}

impl PartialEq for TreeClock {
    /// Two tree clocks are equal when they represent the same *vector
    /// time*; the tree shapes may differ. This is an O(k) comparison.
    fn eq(&self, other: &Self) -> bool {
        let n = self.clks.len().max(other.clks.len());
        (0..n as u32).all(|i| self.get_idx(i) == other.get_idx(i))
    }
}

impl Eq for TreeClock {}
