//! Rendering of tree clocks in the paper's `(tid, clk, aclk)` notation.

use std::fmt;

use super::node::NIL;
use super::TreeClock;

impl TreeClock {
    /// Writes the subtree rooted at `u` as `(t, clk, aclk)[children…]`.
    fn fmt_subtree(&self, f: &mut fmt::Formatter<'_>, u: u32, is_root: bool) -> fmt::Result {
        let n = &self.nodes[u as usize];
        let clk = self.clks[u as usize];
        if is_root {
            write!(f, "(t{u}, {clk}, ⊥)")?;
        } else {
            write!(f, "(t{u}, {clk}, {})", n.aclk)?;
        }
        if n.head_child != NIL {
            write!(f, "[")?;
            let mut c = n.head_child;
            let mut first = true;
            while c != NIL {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                self.fmt_subtree(f, c, false)?;
                c = self.nodes[c as usize].next_sib;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// Single-line rendering in the paper's node notation, e.g.
/// `(t2, 4, ⊥)[(t3, 6, 3)[(t4, 3, 5), (t1, 2, 1), (t5, 2, 2)]]`
/// (the tree of Figure 11b after event e16).
impl fmt::Display for TreeClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.root_idx() {
            None => write!(f, "(empty)"),
            Some(r) => self.fmt_subtree(f, r, true),
        }
    }
}

impl fmt::Debug for TreeClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TreeClock{{{self}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LogicalClock, ThreadId};

    #[test]
    fn empty_clock_displays_nonempty_text() {
        // C-DEBUG-NONEMPTY: even conceptually empty values render text.
        assert_eq!(TreeClock::new().to_string(), "(empty)");
        assert_eq!(format!("{:?}", TreeClock::new()), "TreeClock{(empty)}");
    }

    #[test]
    fn nested_tree_renders_in_paper_notation() {
        let t = ThreadId::new;
        let tc = TreeClock::from_structure(&[
            (t(4), 2, None),
            (t(3), 2, Some((t(4), 2))),
            (t(2), 2, Some((t(4), 1))),
            (t(1), 1, Some((t(2), 1))),
        ])
        .unwrap();
        assert_eq!(
            tc.to_string(),
            "(t4, 2, ⊥)[(t3, 2, 2), (t2, 2, 1)[(t1, 1, 1)]]"
        );
    }

    #[test]
    fn single_node_has_no_bracket_suffix() {
        let mut tc = TreeClock::new();
        tc.init_root(ThreadId::new(0));
        tc.increment(4);
        assert_eq!(tc.to_string(), "(t0, 4, ⊥)");
    }
}
