//! The classic flat vector clock — the baseline the paper improves upon.
//!
//! A [`VectorClock`] stores one [`LocalTime`] per thread in a dense
//! array. Every join and copy touches all `k` entries, so both
//! operations cost Θ(k) regardless of how many entries actually change —
//! precisely the inefficiency tree clocks eliminate.

use std::fmt;

use crate::clock::{CopyMode, LogicalClock, OpStats};
use crate::{LocalTime, ThreadId, VectorTime};

/// A flat vector clock: an integer array indexed by thread id.
///
/// This implementation matches the data structure of Section 2.2 of the
/// paper. It is intentionally simple — a plain `Vec<LocalTime>` plus the
/// identity of the owning thread (for [`increment`]) — because its role
/// in this crate is to be the faithful baseline for every experiment.
///
/// The vector grows on demand when a new thread id is observed, which
/// supports dynamic thread creation.
///
/// [`increment`]: LogicalClock::increment
///
/// # Example
///
/// ```rust
/// use tc_core::{LogicalClock, ThreadId, VectorClock};
///
/// let mut release = VectorClock::new(); // a lock's clock starts empty
/// let mut c = VectorClock::new();
/// c.init_root(ThreadId::new(0));
/// c.increment(1);
/// release.monotone_copy(&c); // the release event publishes t0's time
/// assert_eq!(release.get(ThreadId::new(0)), 1);
/// ```
#[derive(Clone, Default)]
pub struct VectorClock {
    times: Vec<LocalTime>,
    root: Option<ThreadId>,
}

impl VectorClock {
    /// Creates an empty vector clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    fn ensure_len(&mut self, len: usize) {
        if self.times.len() < len {
            self.times.resize(len, 0);
        }
    }

    /// Direct read-only view of the underlying times array.
    pub fn as_slice(&self) -> &[LocalTime] {
        &self.times
    }
}

impl LogicalClock for VectorClock {
    const NAME: &'static str = "vector";

    fn new() -> Self {
        VectorClock::default()
    }

    fn with_threads(threads: usize) -> Self {
        VectorClock {
            times: vec![0; threads],
            root: None,
        }
    }

    fn init_root(&mut self, t: ThreadId) {
        assert!(
            self.is_empty(),
            "VectorClock::init_root: clock already initialized"
        );
        self.ensure_len(t.index() + 1);
        self.root = Some(t);
    }

    fn root_tid(&self) -> Option<ThreadId> {
        self.root
    }

    #[inline]
    fn get(&self, t: ThreadId) -> LocalTime {
        self.times.get(t.index()).copied().unwrap_or(0)
    }

    fn increment(&mut self, amount: LocalTime) {
        let root = self
            .root
            .expect("VectorClock::increment: clock has no root thread");
        self.ensure_len(root.index() + 1);
        self.times[root.index()] += amount;
    }

    /// Full pointwise comparison — Θ(k) for a vector clock.
    fn leq(&self, other: &Self) -> bool {
        self.times
            .iter()
            .enumerate()
            .all(|(i, &mine)| mine <= other.times.get(i).copied().unwrap_or(0))
    }

    /// The fast join: a branchless pointwise-maximum loop the compiler
    /// can vectorize — the strongest possible baseline for the paper's
    /// comparison.
    fn join(&mut self, other: &Self) {
        if let (Some(r), true) = (self.root, !other.times.is_empty()) {
            assert!(
                other.get(r) <= self.get(r),
                "VectorClock::join: other has progressed on self's root thread {r}"
            );
        }
        self.ensure_len(other.times.len());
        for (mine, &theirs) in self.times.iter_mut().zip(other.times.iter()) {
            *mine = (*mine).max(theirs);
        }
    }

    fn join_counted(&mut self, other: &Self) -> OpStats {
        if let (Some(r), true) = (self.root, !other.times.is_empty()) {
            assert!(
                other.get(r) <= self.get(r),
                "VectorClock::join: other has progressed on self's root thread {r}"
            );
        }
        self.ensure_len(other.times.len());
        let mut stats = OpStats::NOOP;
        for (mine, &theirs) in self.times.iter_mut().zip(other.times.iter()) {
            stats.examined += 1;
            if theirs > *mine {
                *mine = theirs;
                stats.changed += 1;
                stats.moved += 1;
            }
        }
        stats
    }

    /// The fast copy: a flat replacement of all k entries (`memcpy`
    /// speed) — a vector clock cannot exploit monotonicity.
    fn monotone_copy(&mut self, other: &Self) {
        if let Some(r) = self.root {
            assert!(
                self.get(r) <= other.get(r),
                "VectorClock::monotone_copy: self ⋢ other on root thread {r}"
            );
        }
        self.times.clear();
        self.times.extend_from_slice(&other.times);
        self.root = other.root;
    }

    fn monotone_copy_counted(&mut self, other: &Self) -> OpStats {
        if let Some(r) = self.root {
            assert!(
                self.get(r) <= other.get(r),
                "VectorClock::monotone_copy: self ⋢ other on root thread {r}"
            );
        }
        let mut stats = OpStats::NOOP;
        self.ensure_len(other.times.len());
        for (i, mine) in self.times.iter_mut().enumerate() {
            let theirs = other.times.get(i).copied().unwrap_or(0);
            stats.examined += 1;
            if *mine != theirs {
                stats.changed += 1;
                stats.moved += 1;
            }
            *mine = theirs;
        }
        self.root = other.root;
        stats
    }

    fn copy_check_monotone(&mut self, other: &Self) -> CopyMode {
        // Flat representation: the copy is the same Θ(k) operation
        // either way.
        self.times.clear();
        self.times.extend_from_slice(&other.times);
        self.root = other.root;
        CopyMode::Deep
    }

    fn copy_check_monotone_counted(&mut self, other: &Self) -> (CopyMode, OpStats) {
        let mut stats = OpStats::NOOP;
        self.ensure_len(other.times.len());
        for (i, mine) in self.times.iter_mut().enumerate() {
            let theirs = other.times.get(i).copied().unwrap_or(0);
            stats.examined += 1;
            if *mine != theirs {
                stats.changed += 1;
                stats.moved += 1;
            }
            *mine = theirs;
        }
        self.root = other.root;
        (CopyMode::Deep, stats)
    }

    fn vector_time(&self) -> VectorTime {
        VectorTime::from(self.times.clone())
    }

    fn is_empty(&self) -> bool {
        self.root.is_none() && self.times.iter().all(|&t| t == 0)
    }

    fn num_threads(&self) -> usize {
        self.times.len()
    }

    /// A flat restore: the values *are* the representation.
    fn restore_value(&mut self, times: &[LocalTime], root: Option<ThreadId>) {
        assert!(
            self.is_empty(),
            "VectorClock::restore_value: destination must be empty"
        );
        assert!(
            root.is_some() || times.iter().all(|&t| t == 0),
            "VectorClock::restore_value: a rootless clock must be all-zero"
        );
        self.times.clear();
        self.times.extend_from_slice(times);
        if let Some(r) = root {
            self.ensure_len(r.index() + 1);
        }
        self.root = root;
    }

    /// Keeps the allocation, drops the contents (a recycled flat clock
    /// re-grows by zero-extension, with no new allocation).
    fn clear(&mut self) {
        self.times.clear();
        self.root = None;
    }

    fn reserve_threads(&mut self, threads: usize) {
        self.ensure_len(threads);
    }

    /// Flat override of the residual-excision hook: zeroing one entry
    /// is O(1) on this representation.
    fn clear_slot(&mut self, t: ThreadId) {
        if let Some(entry) = self.times.get_mut(t.index()) {
            *entry = 0;
        }
    }

    fn heap_bytes(&self) -> usize {
        self.times.capacity() * std::mem::size_of::<LocalTime>()
    }
}

impl PartialEq for VectorClock {
    /// Two vector clocks are equal when they represent the same vector
    /// time (trailing zeros are insignificant); the owner is ignored.
    fn eq(&self, other: &Self) -> bool {
        let n = self.times.len().max(other.times.len());
        (0..n).all(|i| {
            self.times.get(i).copied().unwrap_or(0) == other.times.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for VectorClock {}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VectorClock(")?;
        match self.root {
            Some(r) => write!(f, "root={r}, ")?,
            None => write!(f, "no-root, ")?,
        }
        write!(f, "{})", self.vector_time())
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.vector_time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rooted(t: u32, time: LocalTime) -> VectorClock {
        let mut c = VectorClock::new();
        c.init_root(ThreadId::new(t));
        c.increment(time);
        c
    }

    #[test]
    fn new_clock_is_empty() {
        let c = VectorClock::new();
        assert!(c.is_empty());
        assert_eq!(c.root_tid(), None);
        assert_eq!(c.get(ThreadId::new(3)), 0);
    }

    #[test]
    fn init_and_increment() {
        let c = rooted(2, 5);
        assert_eq!(c.root_tid(), Some(ThreadId::new(2)));
        assert_eq!(c.get(ThreadId::new(2)), 5);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "already initialized")]
    fn double_init_panics() {
        let mut c = rooted(0, 1);
        c.init_root(ThreadId::new(1));
    }

    #[test]
    #[should_panic(expected = "no root thread")]
    fn increment_without_root_panics() {
        let mut c = VectorClock::new();
        c.increment(1);
    }

    #[test]
    fn join_takes_pointwise_max_and_reports_k_examined() {
        let mut a = rooted(0, 3);
        let b = rooted(1, 7);
        let stats = a.join_counted(&b);
        assert_eq!(a.get(ThreadId::new(0)), 3);
        assert_eq!(a.get(ThreadId::new(1)), 7);
        assert_eq!(stats.changed, 1);
        assert_eq!(stats.examined, 2); // the whole (grown) vector
    }

    #[test]
    fn join_with_empty_is_noop() {
        let mut a = rooted(0, 3);
        let before = a.vector_time();
        a.join(&VectorClock::new());
        assert_eq!(a.vector_time(), before);
    }

    #[test]
    #[should_panic(expected = "progressed on self's root")]
    fn join_rejects_foreign_progress_on_own_thread() {
        // Make a source clock that knows a *later* time of t0 than t0's
        // own clock does — impossible in a causal ordering.
        let mut src = rooted(1, 1);
        src.join(&rooted(0, 5));
        let mut a = rooted(0, 1);
        a.join(&src);
    }

    #[test]
    fn monotone_copy_copies_everything() {
        let mut lock = VectorClock::new();
        let mut c = rooted(0, 2);
        c.join(&rooted(1, 4));
        let stats = lock.monotone_copy_counted(&c);
        assert_eq!(lock.vector_time(), c.vector_time());
        assert_eq!(stats.examined, 2);
        assert_eq!(stats.changed, 2);
    }

    #[test]
    fn copy_check_monotone_is_flat_copy() {
        let mut lw = rooted(1, 9); // lw knows something c doesn't
        let c = rooted(0, 2);
        let mode = lw.copy_check_monotone(&c);
        assert_eq!(mode, CopyMode::Deep);
        // Entries may *decrease*: copy is assignment, not join.
        assert_eq!(lw.get(ThreadId::new(1)), 0);
        assert_eq!(lw.get(ThreadId::new(0)), 2);
    }

    #[test]
    fn leq_is_full_pointwise_comparison() {
        let a = rooted(0, 1);
        let mut b = rooted(1, 1);
        let c = a.clone();
        b.join(&a);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(a.leq(&c));
    }

    #[test]
    fn equality_ignores_trailing_zeros_and_owner() {
        let a = rooted(0, 2);
        let mut b = VectorClock::with_threads(8);
        b.init_root(ThreadId::new(0));
        b.increment(2);
        assert_eq!(a, b);
    }

    #[test]
    fn vector_time_round_trip() {
        let mut a = rooted(0, 2);
        a.join(&rooted(3, 9));
        assert_eq!(a.vector_time().as_slice(), &[2, 0, 0, 9]);
    }

    #[test]
    fn with_threads_preallocates() {
        let c = VectorClock::with_threads(16);
        assert_eq!(c.num_threads(), 16);
        assert!(c.is_empty());
    }
}
