//! Identifiers shared by all clock data structures: thread ids, local
//! times, and epochs (thread-id/time pairs).

use std::fmt;

/// A local (scalar) logical time of a single thread.
///
/// The paper's traces contain up to a few billion events in total; local
/// times count events *per thread* and comfortably fit in 32 bits, which
/// keeps both clock representations compact.
pub type LocalTime = u32;

/// A dense thread identifier.
///
/// Thread ids index directly into clock representations (the vector of a
/// [`VectorClock`](crate::VectorClock), the node arena of a
/// [`TreeClock`](crate::TreeClock)), so they are expected to be small and
/// dense: `0, 1, 2, …`. Trace front-ends intern arbitrary thread names
/// down to these ids.
///
/// # Example
///
/// ```rust
/// use tc_core::ThreadId;
///
/// let t = ThreadId::new(3);
/// assert_eq!(t.index(), 3);
/// assert_eq!(t.to_string(), "t3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Creates a thread id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the raw dense index of this thread id.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the dense index as a `usize`, suitable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ThreadId {
    #[inline]
    fn from(index: u32) -> Self {
        ThreadId(index)
    }
}

impl From<ThreadId> for u32 {
    #[inline]
    fn from(tid: ThreadId) -> Self {
        tid.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An *epoch*: the pair `(thread, local time)` identifying a single event.
///
/// Epochs are the unit of the FastTrack-style O(1) ordering checks used by
/// the analysis layer (Remark 1 of the paper: `Get` is O(1) on both clock
/// representations, so all epoch optimizations carry over to tree clocks).
/// An epoch `c@t` is ordered before a clock `C` exactly when
/// `c <= C.get(t)`.
///
/// # Example
///
/// ```rust
/// use tc_core::{Epoch, LogicalClock, ThreadId, VectorClock};
///
/// let t1 = ThreadId::new(1);
/// let mut c = VectorClock::new();
/// c.init_root(ThreadId::new(0));
/// c.increment(1);
///
/// let write = Epoch::new(t1, 4);
/// assert!(!write.leq_clock(&c)); // c knows nothing about t1 yet
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Epoch {
    tid: ThreadId,
    time: LocalTime,
}

impl Epoch {
    /// The "no event yet" epoch: time 0 of thread 0, which is ordered
    /// before every clock.
    pub const ZERO: Epoch = Epoch {
        tid: ThreadId::new(0),
        time: 0,
    };

    /// Creates an epoch for the event with the given local `time` on
    /// thread `tid`.
    #[inline]
    pub const fn new(tid: ThreadId, time: LocalTime) -> Self {
        Epoch { tid, time }
    }

    /// The thread that performed the event this epoch identifies.
    #[inline]
    pub const fn tid(self) -> ThreadId {
        self.tid
    }

    /// The local time of the event this epoch identifies.
    #[inline]
    pub const fn time(self) -> LocalTime {
        self.time
    }

    /// Returns `true` if this is the [`Epoch::ZERO`]-like "no event"
    /// epoch (time 0).
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.time == 0
    }

    /// O(1) ordering check: is the event identified by this epoch ordered
    /// at-or-before the state captured by `clock`?
    ///
    /// This is the fundamental race-check primitive: for a candidate pair
    /// `(e1, e2)` where `e1` is summarized by an epoch and `e2` by the
    /// clock of its thread, `!e1.leq_clock(c2)` means the two events are
    /// concurrent.
    #[inline]
    pub fn leq_clock<C: crate::LogicalClock>(self, clock: &C) -> bool {
        self.time <= clock.get(self.tid)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.time, self.tid)
    }
}

impl fmt::Debug for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.time, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_round_trips_through_u32() {
        let t = ThreadId::new(42);
        assert_eq!(u32::from(t), 42);
        assert_eq!(ThreadId::from(42u32), t);
        assert_eq!(t.index(), 42usize);
    }

    #[test]
    fn thread_id_orders_by_index() {
        assert!(ThreadId::new(1) < ThreadId::new(2));
        assert_eq!(ThreadId::default(), ThreadId::new(0));
    }

    #[test]
    fn thread_id_display_is_compact() {
        assert_eq!(format!("{}", ThreadId::new(7)), "t7");
        assert_eq!(format!("{:?}", ThreadId::new(7)), "t7");
    }

    #[test]
    fn epoch_accessors() {
        let e = Epoch::new(ThreadId::new(3), 17);
        assert_eq!(e.tid(), ThreadId::new(3));
        assert_eq!(e.time(), 17);
        assert!(!e.is_zero());
        assert!(Epoch::ZERO.is_zero());
    }

    #[test]
    fn epoch_display_matches_fasttrack_notation() {
        let e = Epoch::new(ThreadId::new(2), 9);
        assert_eq!(e.to_string(), "9@t2");
    }

    #[test]
    fn zero_epoch_precedes_everything() {
        use crate::VectorClock;
        let c = VectorClock::new();
        assert!(Epoch::ZERO.leq_clock(&c));
        assert!(Epoch::new(ThreadId::new(9), 0).leq_clock(&c));
    }
}
