//! Logical clock data structures for causal orderings in concurrent
//! executions.
//!
//! This crate implements the **tree clock** data structure from
//! *"A Tree Clock Data Structure for Causal Orderings in Concurrent
//! Executions"* (Mathur, Pavlogiannis, Tunç, Viswanathan — ASPLOS 2022),
//! together with the classic **vector clock** baseline it replaces and a
//! common [`LogicalClock`] abstraction so that higher-level algorithms
//! (happens-before, schedulable-happens-before, Mazurkiewicz) can swap one
//! for the other with a single type parameter.
//!
//! # Why tree clocks?
//!
//! A vector clock is a flat array of local times, one per thread. Its two
//! fundamental operations — *join* (pointwise maximum) and *copy* — always
//! cost Θ(k) for k threads, even when almost no entry changes. A tree
//! clock stores the same vector of local times, but arranges the entries in
//! a rooted tree that records *through whom* (tree edges) and *when*
//! (attachment clocks) each entry was learned. Two monotonicity properties
//! of causal orderings then let joins and copies skip every subtree whose
//! information is already known, so the operations run in time roughly
//! proportional to the number of entries that actually change. For
//! computing the happens-before partial order this is *vt-optimal*: no
//! data structure can asymptotically beat it on any input (Theorem 1 of
//! the paper).
//!
//! # Example
//!
//! ```rust
//! use tc_core::{LogicalClock, ThreadId, TreeClock};
//!
//! let t0 = ThreadId::new(0);
//! let t1 = ThreadId::new(1);
//!
//! // Each thread owns a clock rooted at itself.
//! let mut c0 = TreeClock::new();
//! c0.init_root(t0);
//! c0.increment(3); // t0 has performed 3 events
//!
//! let mut c1 = TreeClock::new();
//! c1.init_root(t1);
//! c1.increment(5); // t1 has performed 5 events
//!
//! // t0 synchronizes with t1 (e.g. acquires a lock t1 released):
//! c0.join(&c1);
//! assert_eq!(c0.get(t0), 3);
//! assert_eq!(c0.get(t1), 5);
//!
//! // The tree remembers that t0 learned t1's time at t0-time 3.
//! assert!(c1.leq(&c0));
//! ```
//!
//! # Crate layout
//!
//! - [`tree_clock`] — the [`TreeClock`] data structure (Algorithm 2 of the
//!   paper): arena representation, iterative `Join`, `MonotoneCopy` and
//!   `CopyCheckMonotone`.
//! - [`vector_clock`] — the flat [`VectorClock`] baseline.
//! - [`clock`] — the [`LogicalClock`] trait and per-operation work
//!   statistics ([`OpStats`]) used for the paper's `VTWork`/`TCWork`/
//!   `VCWork` accounting.
//! - [`vector_time`] — the plain [`VectorTime`] value type (a vector
//!   timestamp), partially ordered pointwise.
//! - [`hybrid`] — the adaptive [`HybridClock`], which is a flat array
//!   while the observed join density is high and re-materializes tree
//!   links when the workload turns sparse.
//! - [`ids`] — [`ThreadId`], [`LocalTime`] and [`Epoch`] identifiers.
//! - [`pool`] — the [`ClockPool`] free list and the [`LazyClock`]
//!   per-variable slot, which together make the engines' steady-state
//!   analysis allocation-free (see the README's "Performance" section).
//! - [`identity`] — the [`IdentityMap`] generation layer that remaps
//!   external thread ids onto recycled internal slots, keeping clock
//!   width proportional to *live* threads under spawn/join churn.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod hybrid;
pub mod identity;
pub mod ids;
pub mod pool;
pub mod tree_clock;
pub mod vector_clock;
pub mod vector_time;

pub use clock::{CopyMode, LogicalClock, OpStats};
pub use hybrid::{DenseCutoffGuard, HybridClock, DEFAULT_TREE_OBS_PERIOD};
pub use identity::{BindError, IdentityMap, IdentitySnapshot, SlotBinding};
pub use ids::{Epoch, LocalTime, ThreadId};
pub use pool::{ClockPool, LazyClock};
pub use tree_clock::TreeClock;
pub use vector_clock::VectorClock;
pub use vector_time::VectorTime;

// Every clock backend (and the pooling wrappers around them) is Send —
// asserted at compile time so a future backend cannot silently
// reintroduce thread-pinned interior mutability and break the
// streaming service's work-stealing core.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TreeClock>();
    assert_send::<VectorClock>();
    assert_send::<HybridClock>();
    assert_send::<ClockPool<TreeClock>>();
    assert_send::<ClockPool<VectorClock>>();
    assert_send::<ClockPool<HybridClock>>();
    assert_send::<LazyClock<HybridClock>>();
};
