//! External-to-internal thread identity management: generation-based
//! slot recycling.
//!
//! Every clock backend in this workspace indexes its representation by
//! [`ThreadId`] — the vector of a [`VectorClock`](crate::VectorClock),
//! the node arena of a [`TreeClock`](crate::TreeClock), the flat array
//! of the hybrid. Join-retirement (PR 5) bounds the *number* of live
//! clocks, but every clock still carries the **total-ever** thread
//! dimension: a streaming session with millions of spawn/join churns
//! drags dead entries in every clock forever.
//!
//! The [`IdentityMap`] fixes the *width*: external thread ids (what the
//! trace and every report speak) are remapped onto a small set of
//! recycled internal **slots**. Each slot carries a **generation**
//! counter, and a generation `g` of slot `s` occupies the half-open
//! local-time interval `(base_g, fin_g]` of that slot: a new occupant
//! adopts the slot at `base = fin` of the previous occupant, so slot
//! times stay globally monotone across generations and no clock ever
//! has to be rewound or scrubbed.
//!
//! # The reclamation rule
//!
//! A dead thread `u` (slot `s`, final slot time `fin`) is recyclable
//! once **every live clock has absorbed its final time**:
//! `live_floor[s] >= fin`, where `live_floor` is the pointwise minimum
//! over all live thread clocks (the same dominance machinery
//! `tc_stream` uses for lock eviction). Once the floor dominates `fin`,
//! knowledge of `u` can never change any future join, copy, or epoch
//! check — every live clock already knows everything `u` ever did — so
//! the slot's stale residue in auxiliary clocks is value-harmless and
//! the slot can be handed to a fresh thread.
//!
//! A direct consequence of the same dominance argument: a race can
//! never involve an event of a *pre-reclaim* generation (its epoch is
//! dominated by every live clock), so translating an internal race
//! epoch back to an external id via the slot's **current** binding is
//! always unambiguous.
//!
//! # External vs internal coordinates
//!
//! - **bind**: external id -> [`SlotBinding`] `(slot, generation,
//!   base)`; fresh externals pull from the free pool (adopting at
//!   `base`) or extend the slot space.
//! - **retire**: records the final slot time `fin` and queues the slot
//!   for reclamation.
//! - **reclaim**: sweeps the pending queue against a `live_floor`.
//! - **translate back**: an internal slot time `T` on slot `s` converts
//!   to external time `clamp(min(T, fin) - base, >= 0)` for the binding
//!   in question — clamped above by `fin` (later generations' progress
//!   is not ours) and below by `base` (earlier generations' progress is
//!   not ours either).

use std::fmt;

use crate::{Epoch, LocalTime, ThreadId};

/// Why an external id could not be bound to a slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BindError {
    /// The external id was retired (joined) and its slot has not been
    /// handed out again; the id acting again is a trace error.
    Retired,
    /// The external id was retired and its internal slot has since been
    /// recycled to a different external id — the strictest form of the
    /// same trace error, reported separately because the slot's state
    /// now belongs to another thread.
    Recycled,
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::Retired => write!(f, "external thread is retired"),
            BindError::Recycled => write!(f, "external thread's slot was recycled"),
        }
    }
}

/// The result of binding an external id: which internal slot speaks for
/// it, at which generation, and from which base time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotBinding {
    /// The internal slot all clocks index by.
    pub slot: ThreadId,
    /// The slot's generation this external id owns.
    pub generation: u32,
    /// The slot's local time at adoption; the occupant's own events
    /// live in `(base, fin]`.
    pub base: LocalTime,
    /// `true` if this call created the binding (the engine must adopt
    /// the slot before the external id's first event is processed).
    pub fresh: bool,
}

/// One external id's (permanent) record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ExtEntry {
    slot: u32,
    generation: u32,
    base: LocalTime,
    /// `Some(fin)` once retired: the slot's local time at death.
    fin: Option<LocalTime>,
}

/// A deterministic, serializable external-id ⇄ internal-slot map with
/// generation-based slot recycling. See the module docs for the
/// reclamation rule and coordinate conventions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdentityMap {
    /// Dense by external id; `None` for externals never seen.
    ext: Vec<Option<ExtEntry>>,
    /// Per-slot current generation (the highest ever handed out).
    slot_gen: Vec<u32>,
    /// Per-slot external id of the latest binding (stale after
    /// reclamation until the slot is re-bound, which is fine: race
    /// translation only consults slots with a live occupant or one
    /// whose epochs are not yet dominated — the current binding either
    /// way).
    slot_ext: Vec<u32>,
    /// Retired slots not yet proven dominated: `(slot, fin)`, in
    /// retirement order.
    pending: Vec<(u32, LocalTime)>,
    /// Reclaimed slots ready for reuse: `(slot, base)`, in reclamation
    /// order (popped LIFO; the order is serialized so a restored
    /// session hands out the same slots).
    free: Vec<(u32, LocalTime)>,
    /// Number of bindings that reused a previously-owned slot.
    recycled: u64,
    /// Externals currently bound and not retired.
    live: usize,
}

/// A plain-data snapshot of an [`IdentityMap`], the unit the `TCCP`
/// checkpoint format serializes. `entries` lists `(external, slot,
/// generation, base, fin)` for every external ever seen, in external-id
/// order; `pending` and `free` preserve queue order so a restored
/// session reuses the same slots in the same order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdentitySnapshot {
    /// `(external, slot, generation, base, fin)` per known external.
    pub entries: Vec<(u32, u32, u32, LocalTime, Option<LocalTime>)>,
    /// Retired-but-not-reclaimed `(slot, fin)` in retirement order.
    pub pending: Vec<(u32, LocalTime)>,
    /// Reclaimed `(slot, base)` in reclamation order.
    pub free: Vec<(u32, LocalTime)>,
    /// Lifetime count of slot reuses.
    pub recycled: u64,
}

impl IdentityMap {
    /// Creates an empty map: no externals, no slots.
    pub fn new() -> Self {
        IdentityMap::default()
    }

    /// Binds an external id, creating a binding on first sight.
    ///
    /// New externals prefer the free pool (recycling a slot at its
    /// recorded `base`) and otherwise extend the slot space. A retired
    /// external id binding again is a trace error, distinguished by
    /// whether its old slot was already handed to someone else.
    pub fn bind(&mut self, external: ThreadId) -> Result<SlotBinding, BindError> {
        let x = external.index();
        if let Some(Some(e)) = self.ext.get(x) {
            return if e.fin.is_some() {
                if self.slot_gen[e.slot as usize] == e.generation {
                    Err(BindError::Retired)
                } else {
                    Err(BindError::Recycled)
                }
            } else {
                Ok(SlotBinding {
                    slot: ThreadId::new(e.slot),
                    generation: e.generation,
                    base: e.base,
                    fresh: false,
                })
            };
        }
        let (slot, base) = match self.free.pop() {
            Some((slot, base)) => {
                self.recycled += 1;
                self.slot_gen[slot as usize] += 1;
                (slot, base)
            }
            None => {
                let slot = self.slot_gen.len() as u32;
                self.slot_gen.push(0);
                self.slot_ext.push(0);
                (slot, 0)
            }
        };
        let generation = self.slot_gen[slot as usize];
        self.slot_ext[slot as usize] = external.raw();
        if x >= self.ext.len() {
            self.ext.resize(x + 1, None);
        }
        self.ext[x] = Some(ExtEntry {
            slot,
            generation,
            base,
            fin: None,
        });
        self.live += 1;
        Ok(SlotBinding {
            slot: ThreadId::new(slot),
            generation,
            base,
            fresh: true,
        })
    }

    /// The error [`bind`](Self::bind) would return for `external`, if
    /// any — a non-mutating pre-check, so a caller binding several ids
    /// for one event can validate them all before mutating anything.
    pub fn rebind_error(&self, external: ThreadId) -> Option<BindError> {
        match self.ext.get(external.index())? {
            Some(e) if e.fin.is_some() => Some(if self.slot_gen[e.slot as usize] == e.generation {
                BindError::Retired
            } else {
                BindError::Recycled
            }),
            _ => None,
        }
    }

    /// `true` once any slot has been reclaimed or reused — from this
    /// point on the map's floor-based reclamation decisions assume fork
    /// discipline (every new thread inherits a live thread's knowledge
    /// at birth), exactly like dominated-state eviction.
    pub fn recycling_active(&self) -> bool {
        self.recycled > 0 || !self.free.is_empty()
    }

    /// Returns the live binding of `external`, if any (including
    /// retired ones, whose `fin` is set — callers that must not see
    /// retired ids use [`bind`](Self::bind)).
    pub fn binding_of(&self, external: ThreadId) -> Option<SlotBinding> {
        self.ext.get(external.index())?.map(|e| SlotBinding {
            slot: ThreadId::new(e.slot),
            generation: e.generation,
            base: e.base,
            fresh: false,
        })
    }

    /// Marks `external` retired at final slot time `fin` and queues its
    /// slot for reclamation.
    ///
    /// # Panics
    ///
    /// Panics if `external` was never bound or is already retired —
    /// the caller (the streaming detector) owns lifecycle ordering.
    pub fn retire(&mut self, external: ThreadId, fin: LocalTime) {
        let e = self.ext[external.index()]
            .as_mut()
            .expect("retire of an unbound external thread");
        assert!(
            e.fin.is_none(),
            "retire of an already-retired external thread"
        );
        assert!(fin >= e.base, "final slot time below the binding's base");
        e.fin = Some(fin);
        self.pending.push((e.slot, fin));
        self.live -= 1;
    }

    /// Sweeps the pending queue: every retired slot whose `fin` the
    /// `floor` dominates (entries past the floor's length count as 0)
    /// moves to the free pool. Returns how many slots were reclaimed.
    pub fn reclaim(&mut self, floor: &[LocalTime]) -> usize {
        self.reclaim_if(|slot, fin| floor.get(slot as usize).copied().unwrap_or(0) >= fin)
    }

    /// Sweeps the whole pending queue unconditionally — correct only
    /// when no live clock exists (the floor is vacuously infinite).
    pub fn reclaim_all(&mut self) -> usize {
        self.reclaim_if(|_, _| true)
    }

    fn reclaim_if(&mut self, mut dominated: impl FnMut(u32, LocalTime) -> bool) -> usize {
        let before = self.free.len();
        let mut kept = 0;
        for i in 0..self.pending.len() {
            let (slot, fin) = self.pending[i];
            if dominated(slot, fin) {
                self.free.push((slot, fin));
            } else {
                self.pending[kept] = (slot, fin);
                kept += 1;
            }
        }
        self.pending.truncate(kept);
        self.free.len() - before
    }

    /// `true` if at least one retired slot awaits reclamation.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// `true` if a reclaimed slot is ready for reuse.
    pub fn has_free(&self) -> bool {
        !self.free.is_empty()
    }

    /// Number of internal slots ever created — the width every clock
    /// actually pays for.
    pub fn slot_width(&self) -> usize {
        self.slot_gen.len()
    }

    /// Externals currently bound and not retired.
    pub fn live_threads(&self) -> usize {
        self.live
    }

    /// Externals ever bound.
    pub fn total_threads(&self) -> usize {
        self.ext.iter().filter(|e| e.is_some()).count()
    }

    /// Lifetime count of bindings that reused a slot.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// The external id currently speaking through `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never bound.
    pub fn external_of_slot(&self, slot: ThreadId) -> ThreadId {
        ThreadId::new(self.slot_ext[slot.index()])
    }

    /// Translates an internal epoch (slot coordinates) to external
    /// coordinates via the slot's current binding. By the dominance
    /// rule this is exact for every epoch that can still appear in a
    /// race or report (see the module docs).
    pub fn external_epoch(&self, e: Epoch) -> Epoch {
        let ext = self.external_of_slot(e.tid());
        let base = self.ext[ext.index()].expect("slot owner has no entry").base;
        Epoch::new(ext, e.time().saturating_sub(base))
    }

    /// Converts a slot-coordinate local time `slot_time` (as read from
    /// some clock at `external`'s slot) into `external`'s own local
    /// time: clamped above by its `fin` (a later generation's progress
    /// is not this thread's) and below by its `base`.
    pub fn external_time(&self, external: ThreadId, slot_time: LocalTime) -> LocalTime {
        let e = self.ext[external.index()].expect("unknown external thread");
        let capped = match e.fin {
            Some(fin) => slot_time.min(fin),
            None => slot_time,
        };
        capped.saturating_sub(e.base)
    }

    /// Iterates `(external, slot, retired)` over every external ever
    /// bound, in external-id order.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, ThreadId, bool)> + '_ {
        self.ext.iter().enumerate().filter_map(|(x, e)| {
            e.map(|e| {
                (
                    ThreadId::new(x as u32),
                    ThreadId::new(e.slot),
                    e.fin.is_some(),
                )
            })
        })
    }

    /// Captures the serializable state. Queue orders are preserved so
    /// restore + replay hands out identical slots.
    pub fn snapshot(&self) -> IdentitySnapshot {
        IdentitySnapshot {
            entries: self
                .ext
                .iter()
                .enumerate()
                .filter_map(|(x, e)| e.map(|e| (x as u32, e.slot, e.generation, e.base, e.fin)))
                .collect(),
            pending: self.pending.clone(),
            free: self.free.clone(),
            recycled: self.recycled,
        }
    }

    /// Rebuilds a map from a snapshot. Per-slot generation/owner tables
    /// are derived (highest generation per slot wins), not serialized.
    pub fn from_snapshot(snap: &IdentitySnapshot) -> Self {
        let mut map = IdentityMap::new();
        let slots = snap
            .entries
            .iter()
            .map(|&(_, slot, ..)| slot as usize + 1)
            .max()
            .unwrap_or(0);
        map.slot_gen = vec![0; slots];
        map.slot_ext = vec![0; slots];
        for &(x, slot, generation, base, fin) in &snap.entries {
            if x as usize >= map.ext.len() {
                map.ext.resize(x as usize + 1, None);
            }
            map.ext[x as usize] = Some(ExtEntry {
                slot,
                generation,
                base,
                fin,
            });
            if fin.is_none() {
                map.live += 1;
            }
            if generation >= map.slot_gen[slot as usize] {
                map.slot_gen[slot as usize] = generation;
                map.slot_ext[slot as usize] = x;
            }
        }
        map.pending = snap.pending.clone();
        map.free = snap.free.clone();
        map.recycled = snap.recycled;
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn fresh_externals_get_dense_slots() {
        let mut m = IdentityMap::new();
        for i in 0..4 {
            let b = m.bind(t(i)).unwrap();
            assert_eq!(b.slot, t(i));
            assert_eq!(b.base, 0);
            assert_eq!(b.generation, 0);
            assert!(b.fresh);
        }
        assert_eq!(m.slot_width(), 4);
        assert_eq!(m.live_threads(), 4);
        assert_eq!(m.total_threads(), 4);
        assert_eq!(m.recycled(), 0);
        // Re-binding is idempotent and not fresh.
        assert!(!m.bind(t(2)).unwrap().fresh);
        assert_eq!(m.slot_width(), 4);
    }

    #[test]
    fn reclaimed_slot_is_reused_at_its_final_time() {
        let mut m = IdentityMap::new();
        m.bind(t(0)).unwrap();
        m.bind(t(1)).unwrap();
        m.retire(t(1), 7);
        assert_eq!(m.live_threads(), 1);
        assert!(m.has_pending());
        // Floor below fin: nothing reclaimed.
        assert_eq!(m.reclaim(&[100, 6]), 0);
        assert_eq!(m.reclaim(&[100, 7]), 1);
        assert!(m.has_free());
        let b = m.bind(t(2)).unwrap();
        assert_eq!(b.slot, t(1));
        assert_eq!(b.base, 7);
        assert_eq!(b.generation, 1);
        assert!(b.fresh);
        assert_eq!(m.slot_width(), 2);
        assert_eq!(m.recycled(), 1);
        assert_eq!(m.external_of_slot(t(1)), t(2));
    }

    #[test]
    fn short_floor_counts_missing_entries_as_zero() {
        let mut m = IdentityMap::new();
        m.bind(t(0)).unwrap();
        m.bind(t(1)).unwrap();
        m.retire(t(1), 3);
        // The floor vector is narrower than the slot: entry reads 0.
        assert_eq!(m.reclaim(&[9]), 0);
        // A never-acting thread (fin == base == 0) is always free.
        m.bind(t(2)).unwrap();
        m.retire(t(2), 0);
        assert_eq!(m.reclaim(&[]), 1);
    }

    #[test]
    fn retired_and_recycled_rebinds_are_distinct_errors() {
        let mut m = IdentityMap::new();
        m.bind(t(0)).unwrap();
        m.bind(t(1)).unwrap();
        m.retire(t(1), 4);
        assert_eq!(m.bind(t(1)), Err(BindError::Retired));
        m.reclaim_all();
        let b = m.bind(t(2)).unwrap();
        assert_eq!(b.slot, t(1));
        assert_eq!(m.bind(t(1)), Err(BindError::Recycled));
    }

    #[test]
    fn external_coordinates_round_trip_across_generations() {
        let mut m = IdentityMap::new();
        m.bind(t(0)).unwrap();
        m.bind(t(1)).unwrap();
        m.retire(t(1), 10);
        m.reclaim_all();
        m.bind(t(2)).unwrap(); // slot 1, base 10
                               // Slot time 13 on slot 1 is external time 3 of t2.
        assert_eq!(m.external_epoch(Epoch::new(t(1), 13)), Epoch::new(t(2), 3));
        assert_eq!(m.external_time(t(2), 13), 3);
        // For the dead t1 the same slot time clamps to its fin.
        assert_eq!(m.external_time(t(1), 13), 10);
        // And slot times at-or-below t2's base are "before t2 existed".
        assert_eq!(m.external_time(t(2), 10), 0);
        assert_eq!(m.external_time(t(2), 4), 0);
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let mut m = IdentityMap::new();
        for i in 0..5 {
            m.bind(t(i)).unwrap();
        }
        m.retire(t(2), 6);
        m.retire(t(0), 9);
        m.reclaim(&[9, 9, 6, 9, 9]); // reclaims both
        m.bind(t(5)).unwrap(); // reuses one slot
        m.retire(t(4), 2); // left pending
        let snap = m.snapshot();
        let restored = IdentityMap::from_snapshot(&snap);
        assert_eq!(restored, m);
        // The restored map hands out the same next slot.
        let mut a = m.clone();
        let mut b = restored;
        assert_eq!(a.bind(t(6)), b.bind(t(6)));
        assert_eq!(a, b);
    }

    #[test]
    fn reclaim_preserves_pending_order() {
        let mut m = IdentityMap::new();
        for i in 0..4 {
            m.bind(t(i)).unwrap();
        }
        m.retire(t(1), 5);
        m.retire(t(3), 2);
        m.retire(t(2), 8);
        // Floor admits slots 3 and 2 but not 1.
        assert_eq!(m.reclaim(&[9, 4, 8, 9]), 2);
        // Free pops LIFO: slot 2 first, then slot 3.
        assert_eq!(m.bind(t(10)).unwrap().slot, t(2));
        assert_eq!(m.bind(t(11)).unwrap().slot, t(3));
        assert_eq!(m.bind(t(12)).unwrap().slot, t(4)); // slot 1 still pending
    }
}
