//! The plain vector-timestamp value type.
//!
//! A [`VectorTime`] is the mathematical object both clock data structures
//! represent: a mapping from threads to local times (absent threads map to
//! 0). It supports the three operations from Section 2.2 of the paper —
//! comparison (`⊑`, via [`PartialOrd`]), join (`⊔`) and increment — and is
//! used throughout the workspace as the *semantic* value of a clock, for
//! differential testing and for exported per-event timestamps.

use std::cmp::Ordering;
use std::fmt;

use crate::{LocalTime, ThreadId};

/// A vector timestamp: a mapping `Thrds -> N`, with absent threads
/// implicitly at time 0.
///
/// Two vector times that differ only in trailing zero entries are equal;
/// all operations treat the vector as conceptually infinite with zeros
/// beyond its length.
///
/// # Example
///
/// ```rust
/// use tc_core::{ThreadId, VectorTime};
///
/// let a = VectorTime::from(vec![1, 2, 0]);
/// let b = VectorTime::from(vec![1, 3]);
/// assert!(a <= b.joined(&a));
/// assert_eq!(b.get(ThreadId::new(1)), 3);
/// assert_eq!(b.get(ThreadId::new(17)), 0); // absent threads are 0
/// ```
#[derive(Clone, Default)]
pub struct VectorTime {
    times: Vec<LocalTime>,
}

impl VectorTime {
    /// Creates the zero vector time (every thread at time 0).
    #[inline]
    pub fn new() -> Self {
        VectorTime::default()
    }

    /// Creates a zero vector time with space reserved for `threads`
    /// threads.
    pub fn with_threads(threads: usize) -> Self {
        VectorTime {
            times: vec![0; threads],
        }
    }

    /// Returns the local time recorded for thread `t` (0 if absent).
    #[inline]
    pub fn get(&self, t: ThreadId) -> LocalTime {
        self.times.get(t.index()).copied().unwrap_or(0)
    }

    /// Sets the local time of thread `t`, growing the vector as needed.
    pub fn set(&mut self, t: ThreadId, time: LocalTime) {
        if t.index() >= self.times.len() {
            self.times.resize(t.index() + 1, 0);
        }
        self.times[t.index()] = time;
    }

    /// Increments the entry of thread `t` by `amount` (the paper's
    /// `V[t -> +i]`).
    pub fn increment(&mut self, t: ThreadId, amount: LocalTime) {
        let cur = self.get(t);
        self.set(t, cur + amount);
    }

    /// Pointwise-maximum join, in place: `self <- self ⊔ other`.
    ///
    /// Returns the number of entries whose value changed, which is
    /// exactly this operation's contribution to the paper's `VTWork`
    /// metric.
    pub fn join(&mut self, other: &VectorTime) -> usize {
        if other.times.len() > self.times.len() {
            self.times.resize(other.times.len(), 0);
        }
        let mut changed = 0;
        for (mine, theirs) in self.times.iter_mut().zip(other.times.iter()) {
            if *theirs > *mine {
                *mine = *theirs;
                changed += 1;
            }
        }
        changed
    }

    /// Returns the pointwise-maximum join `self ⊔ other` as a new value.
    pub fn joined(&self, other: &VectorTime) -> VectorTime {
        let mut out = self.clone();
        out.join(other);
        out
    }

    /// Pointwise comparison `self ⊑ other`.
    pub fn leq(&self, other: &VectorTime) -> bool {
        self.times
            .iter()
            .enumerate()
            .all(|(i, &mine)| mine <= other.times.get(i).copied().unwrap_or(0))
    }

    /// Returns `true` if neither `self ⊑ other` nor `other ⊑ self` — the
    /// timestamps are *concurrent* (the paper's `e1 ∥ e2`).
    pub fn concurrent_with(&self, other: &VectorTime) -> bool {
        !self.leq(other) && !other.leq(self)
    }

    /// Number of entries physically stored (threads with index beyond
    /// this are implicitly at time 0).
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if every entry is zero.
    pub fn is_empty(&self) -> bool {
        self.times.iter().all(|&t| t == 0)
    }

    /// Iterates over `(thread, time)` pairs with non-zero time.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, LocalTime)> + '_ {
        self.times
            .iter()
            .enumerate()
            .filter(|(_, &t)| t > 0)
            .map(|(i, &t)| (ThreadId::new(i as u32), t))
    }

    /// Consumes the vector time and returns the underlying dense vector.
    pub fn into_inner(self) -> Vec<LocalTime> {
        self.times
    }

    /// A view of the underlying dense vector.
    pub fn as_slice(&self) -> &[LocalTime] {
        &self.times
    }
}

impl From<Vec<LocalTime>> for VectorTime {
    fn from(times: Vec<LocalTime>) -> Self {
        VectorTime { times }
    }
}

impl FromIterator<(ThreadId, LocalTime)> for VectorTime {
    fn from_iter<I: IntoIterator<Item = (ThreadId, LocalTime)>>(iter: I) -> Self {
        let mut vt = VectorTime::new();
        for (t, time) in iter {
            vt.set(t, time);
        }
        vt
    }
}

impl Extend<(ThreadId, LocalTime)> for VectorTime {
    fn extend<I: IntoIterator<Item = (ThreadId, LocalTime)>>(&mut self, iter: I) {
        for (t, time) in iter {
            self.set(t, time);
        }
    }
}

impl PartialEq for VectorTime {
    fn eq(&self, other: &Self) -> bool {
        let n = self.times.len().max(other.times.len());
        (0..n).all(|i| {
            self.times.get(i).copied().unwrap_or(0) == other.times.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for VectorTime {}

/// Vector times are *partially* ordered pointwise: `partial_cmp` returns
/// `None` exactly when the two timestamps are concurrent.
impl PartialOrd for VectorTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self.leq(other), other.leq(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl VectorTime {
    /// Shared rendering for `Debug`/`Display`: `[3, 0, 7]`.
    fn fmt_dense(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.times.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Debug for VectorTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_dense(f)
    }
}

impl fmt::Display for VectorTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_dense(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(v: &[LocalTime]) -> VectorTime {
        VectorTime::from(v.to_vec())
    }

    #[test]
    fn absent_entries_are_zero() {
        let a = vt(&[1, 2]);
        assert_eq!(a.get(ThreadId::new(0)), 1);
        assert_eq!(a.get(ThreadId::new(5)), 0);
    }

    #[test]
    fn trailing_zeros_do_not_affect_equality() {
        assert_eq!(vt(&[1, 2]), vt(&[1, 2, 0, 0]));
        assert_ne!(vt(&[1, 2]), vt(&[1, 2, 1]));
    }

    #[test]
    fn join_is_pointwise_max_and_counts_changes() {
        let mut a = vt(&[27, 5, 9, 45, 17, 26]);
        let b = vt(&[11, 6, 5, 32, 14, 20]);
        // The join from Figure 1 of the paper: only the t2 entry changes
        // (the own-entry bump 27 -> 28 is a separate increment).
        let changed = a.join(&b);
        assert_eq!(changed, 1);
        assert_eq!(a, vt(&[27, 6, 9, 45, 17, 26]));
    }

    #[test]
    fn join_grows_the_shorter_vector() {
        let mut a = vt(&[1]);
        let changed = a.join(&vt(&[0, 0, 4]));
        assert_eq!(changed, 1);
        assert_eq!(a, vt(&[1, 0, 4]));
    }

    #[test]
    fn joined_leaves_operands_untouched() {
        let a = vt(&[1, 2]);
        let b = vt(&[2, 1]);
        assert_eq!(a.joined(&b), vt(&[2, 2]));
        assert_eq!(a, vt(&[1, 2]));
    }

    #[test]
    fn partial_order_detects_concurrency() {
        let a = vt(&[1, 2]);
        let b = vt(&[2, 1]);
        assert!(a.concurrent_with(&b));
        assert_eq!(a.partial_cmp(&b), None);
        assert!(vt(&[1, 1]) < vt(&[1, 2]));
        assert!(vt(&[1, 2]) >= vt(&[1, 2, 0]));
    }

    #[test]
    fn leq_handles_length_mismatch_both_ways() {
        assert!(vt(&[1, 0, 0]).leq(&vt(&[1])));
        assert!(vt(&[1]).leq(&vt(&[1, 0, 0])));
        assert!(!vt(&[1, 0, 1]).leq(&vt(&[1])));
    }

    #[test]
    fn increment_bumps_single_entry() {
        let mut a = vt(&[1, 2]);
        a.increment(ThreadId::new(1), 3);
        a.increment(ThreadId::new(4), 1);
        assert_eq!(a, vt(&[1, 5, 0, 0, 1]));
    }

    #[test]
    fn iter_skips_zero_entries() {
        let a = vt(&[3, 0, 7]);
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(pairs, vec![(ThreadId::new(0), 3), (ThreadId::new(2), 7)]);
    }

    #[test]
    fn from_iterator_collects_sparse_pairs() {
        let a: VectorTime = vec![(ThreadId::new(2), 5), (ThreadId::new(0), 1)]
            .into_iter()
            .collect();
        assert_eq!(a, vt(&[1, 0, 5]));
    }

    #[test]
    fn display_renders_dense_form() {
        assert_eq!(vt(&[1, 0, 2]).to_string(), "[1, 0, 2]");
    }

    #[test]
    fn is_empty_ignores_explicit_zeros() {
        assert!(vt(&[]).is_empty());
        assert!(vt(&[0, 0]).is_empty());
        assert!(!vt(&[0, 1]).is_empty());
    }
}
