//! The [`LogicalClock`] abstraction shared by tree clocks and vector
//! clocks, plus per-operation work statistics.
//!
//! Partial-order algorithms (`tc-orders`) are written once, generically
//! over `C: LogicalClock`; instantiating `C = TreeClock` or
//! `C = VectorClock` reproduces the paper's "drop-in replacement"
//! comparison.

use std::fmt::Debug;
use std::ops::AddAssign;

use crate::{LocalTime, ThreadId, VectorTime};

/// Work performed by a single clock operation, in data-structure entries.
///
/// These counters drive the paper's Figure 8/9 metrics:
///
/// - `examined` — entries *read/compared* by the operation. For a vector
///   clock this is always the vector length; for a tree clock it is the
///   number of loop iterations in `getUpdatedNodesJoin`/`Copy` (the
///   light-gray nodes of Figures 4 and 5).
/// - `changed` — entries whose *value* changed. This is data-structure
///   independent (both representations change exactly the entries whose
///   pointwise maximum increased) and sums to the paper's `VTWork` lower
///   bound.
/// - `moved` — tree-clock nodes detached/re-attached (the dark-gray nodes,
///   i.e. the size of the stack `S`); always equals `changed` for vector
///   clocks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Entries read or compared by the operation.
    pub examined: u64,
    /// Entries whose represented vector-time value changed.
    pub changed: u64,
    /// Entries physically relocated/rewritten by the operation.
    pub moved: u64,
}

impl OpStats {
    /// Statistics for an operation that did no work at all.
    pub const NOOP: OpStats = OpStats {
        examined: 0,
        changed: 0,
        moved: 0,
    };

    /// Convenience constructor.
    pub const fn new(examined: u64, changed: u64, moved: u64) -> Self {
        OpStats {
            examined,
            changed,
            moved,
        }
    }
}

impl AddAssign for OpStats {
    fn add_assign(&mut self, rhs: Self) {
        self.examined += rhs.examined;
        self.changed += rhs.changed;
        self.moved += rhs.moved;
    }
}

/// How a [`LogicalClock::copy_check_monotone`] call was executed.
///
/// Tree clocks test monotonicity in O(1) and fall back to a deep copy
/// only when the copy is not monotone (Section 5.1: this happens exactly
/// when the last write races with a read, so it is rare in practice).
/// Vector clocks always perform the same flat Θ(k) copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CopyMode {
    /// The fast, sublinear monotone copy was used.
    Monotone,
    /// A full deep copy was required (or the representation is flat).
    Deep,
}

/// A logical clock: a mutable data structure representing one
/// [`VectorTime`], supporting the in-place operations of Section 2.2 of
/// the paper.
///
/// # Ownership discipline
///
/// Clocks come in two flavors with the same interface:
///
/// - *Thread clocks* are created with [`init_root`](Self::init_root) and
///   are the only clocks that may be [`increment`](Self::increment)ed.
/// - *Auxiliary clocks* (for locks, variables, …) start
///   [`is_empty`](Self::is_empty) and only ever receive copies/joins.
///
/// # Contract
///
/// [`join`](Self::join) and [`monotone_copy`](Self::monotone_copy) assume
/// they are used to compute a causal ordering, which implies two cheaply
/// checkable invariants that implementations validate (see the method
/// docs). Outside such usage, convert to [`VectorTime`] and operate on
/// values instead.
pub trait LogicalClock: Clone + Debug + Default {
    /// A short, human-readable name of the representation (`"tree"`,
    /// `"vector"`), used by benchmark reports.
    const NAME: &'static str;

    /// Creates an empty clock (every thread at time 0, no root).
    fn new() -> Self;

    /// Creates an empty clock with space reserved for `threads` threads.
    fn with_threads(threads: usize) -> Self;

    /// Turns an empty clock into the clock *owned by* thread `t`, at time
    /// 0 (the paper's `Init(t)`).
    ///
    /// # Panics
    ///
    /// Panics if the clock is not empty.
    fn init_root(&mut self, t: ThreadId);

    /// The thread this clock is rooted at, if any.
    fn root_tid(&self) -> Option<ThreadId>;

    /// Returns the local time recorded for thread `t` (0 if unknown).
    /// O(1) for both representations (Remark 1 of the paper).
    fn get(&self, t: ThreadId) -> LocalTime;

    /// Advances the owner thread's own entry by `amount` (the paper's
    /// `Increment(i)`).
    ///
    /// # Panics
    ///
    /// Panics if the clock has no root (was never
    /// [`init_root`](Self::init_root)ed).
    fn increment(&mut self, amount: LocalTime);

    /// Ordering test `self ⊑ other` (the paper's `LessThan`).
    ///
    /// For tree clocks this is the O(1) root-entry check, which is valid
    /// whenever both clocks participate in the same causal-ordering
    /// computation (Lemma 3, direct monotonicity). For arbitrary clock
    /// values use `vector_time().leq(..)` instead.
    fn leq(&self, other: &Self) -> bool;

    /// In-place join `self <- self ⊔ other`.
    ///
    /// This is the fast, uninstrumented variant used by timed runs; use
    /// [`join_counted`](Self::join_counted) to obtain per-entry work
    /// statistics (the instrumentation has a measurable cost — it
    /// prevents vectorizing the vector-clock loop, for instance).
    ///
    /// # Panics
    ///
    /// Panics if `other` has progressed on `self`'s *own* (root) thread,
    /// i.e. `other.get(root) > self.get(root)` — in a causal ordering a
    /// thread is always the first to know its own time, so this indicates
    /// misuse.
    fn join(&mut self, other: &Self);

    /// [`join`](Self::join) with exact [`OpStats`] work accounting.
    fn join_counted(&mut self, other: &Self) -> OpStats;

    /// In-place copy `self <- other`, assuming `self ⊑ other` (the
    /// paper's `MonotoneCopy`). Fast variant; see
    /// [`monotone_copy_counted`](Self::monotone_copy_counted).
    ///
    /// # Panics
    ///
    /// Panics if the O(1)-checkable part of the precondition fails:
    /// `self.get(r) > other.get(r)` for `self`'s root thread `r`.
    fn monotone_copy(&mut self, other: &Self);

    /// [`monotone_copy`](Self::monotone_copy) with exact [`OpStats`]
    /// work accounting.
    fn monotone_copy_counted(&mut self, other: &Self) -> OpStats;

    /// In-place copy `self <- other` with no monotonicity assumption
    /// (the paper's `CopyCheckMonotone`, Section 5.1).
    ///
    /// Tree clocks test `self ⊑ other` in O(1) and use the sublinear
    /// monotone copy when possible, falling back to a linear deep copy;
    /// the returned [`CopyMode`] reports which path ran.
    fn copy_check_monotone(&mut self, other: &Self) -> CopyMode;

    /// [`copy_check_monotone`](Self::copy_check_monotone) with exact
    /// [`OpStats`] work accounting.
    fn copy_check_monotone_counted(&mut self, other: &Self) -> (CopyMode, OpStats);

    /// Extracts the represented vector timestamp as a value.
    fn vector_time(&self) -> VectorTime;

    /// Returns `true` if every entry is 0 and the clock has no root.
    fn is_empty(&self) -> bool;

    /// Number of thread slots currently allocated.
    fn num_threads(&self) -> usize;

    /// Resets the clock to the empty state (every thread at 0, no root)
    /// while keeping its allocated buffers, so a subsequent copy or join
    /// into it runs allocation-free. Cost is proportional to the
    /// information the clock holds (present entries), not its capacity.
    ///
    /// This is what [`ClockPool::release`](crate::pool::ClockPool::release)
    /// calls before free-listing a clock for reuse.
    fn clear(&mut self);

    /// Pre-sizes an empty clock so that entries for thread ids below
    /// `threads` can be stored without reallocating — the in-place
    /// equivalent of [`with_threads`](Self::with_threads), used when a
    /// recycled pool clock takes the role of a thread clock.
    fn reserve_threads(&mut self, threads: usize);

    /// Heap bytes currently owned by this clock's buffers (capacity, not
    /// length) — the quantity summed into the `peak_clock_bytes` column
    /// of the `tcr bench --json` perf baseline.
    fn heap_bytes(&self) -> usize;

    /// Restores an *empty* clock to the given value: entry `i` becomes
    /// `times[i]` (entries past the slice are 0) and the clock is rooted
    /// at `root` (un-rooted when `None`, in which case every time must
    /// be 0 — only empty clocks are rootless in a causal ordering).
    ///
    /// This is the checkpoint-restore entry point of the streaming
    /// subsystem: the representation is free to choose any internal
    /// shape for the value (the tree backend re-materializes the star
    /// shape), because all future *values* — and therefore all future
    /// reports — are determined by the restored value alone.
    ///
    /// # Panics
    ///
    /// Panics if the clock is not empty, or if `root` is `None` while
    /// some time is nonzero.
    fn restore_value(&mut self, times: &[LocalTime], root: Option<ThreadId>);

    /// Roots an *empty* clock at thread slot `t` with its own time
    /// already advanced to `base` — the slot-recycling form of
    /// [`init_root`](Self::init_root) used by the identity layer
    /// ([`IdentityMap`](crate::identity::IdentityMap)): a new occupant
    /// of a recycled slot adopts the slot at the previous occupant's
    /// final time, so slot times stay monotone across generations and
    /// every causal-ordering precondition (`join`/`monotone_copy` root
    /// checks) keeps holding on clocks that still carry the old
    /// generation's entries.
    ///
    /// # Panics
    ///
    /// Panics if the clock is not empty (via `init_root`).
    fn adopt_slot(&mut self, t: ThreadId, base: LocalTime) {
        self.init_root(t);
        if base > 0 {
            self.increment(base);
        }
    }

    /// Zeroes the entry of thread slot `t`, preserving the clock's
    /// value for every other slot and its root (re-rooting at time 0
    /// when `t` *is* the root). This is the residual-excision hook of
    /// the identity layer: under base-offset recycling stale entries
    /// are value-harmless and nothing on the hot path calls this, but
    /// the hook documents — and tests enforce — that every backend can
    /// scrub a recycled slot if a future policy wants the bytes back.
    ///
    /// The default rebuilds the clock from its vector-time value;
    /// backends with a cheap in-place path may override.
    fn clear_slot(&mut self, t: ThreadId) {
        let root = self.root_tid();
        let mut times = self.vector_time().into_inner();
        if t.index() < times.len() {
            times[t.index()] = 0;
        }
        self.clear();
        if root.is_some() || times.iter().any(|&v| v > 0) {
            self.restore_value(&times, root);
        }
    }

    /// Applies a representation-tuning hint: the dense cutoff, in
    /// entries. Backends without an adaptive representation ignore it
    /// (the default); the hybrid adopts it as its per-clock cutoff, so
    /// a [`ClockPool`](crate::pool::ClockPool) can tune every clock it
    /// hands out without touching the process-wide default. Values are
    /// representation independent at any setting.
    fn tune_dense_cutoff(&mut self, _entries: u64) {}

    /// Applies an observation-sampling hint: the tree-mode density-
    /// observation period, in operations. Backends without an adaptive
    /// representation ignore it (the default); the hybrid adopts it as
    /// its per-clock period, so a [`ClockPool`](crate::pool::ClockPool)
    /// can tune every clock it hands out. Values are representation
    /// independent at any setting.
    fn tune_tree_obs_period(&mut self, _period: u8) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_stats_accumulate() {
        let mut a = OpStats::new(3, 1, 1);
        a += OpStats::new(2, 2, 0);
        assert_eq!(a, OpStats::new(5, 3, 1));
        assert_eq!(OpStats::NOOP, OpStats::default());
    }

    #[test]
    fn copy_mode_is_comparable() {
        assert_ne!(CopyMode::Monotone, CopyMode::Deep);
    }

    fn adopt_slot_behaves_like_init_plus_increment<C: LogicalClock>() {
        let t2 = ThreadId::new(2);
        let mut adopted = C::new();
        adopted.adopt_slot(t2, 7);
        let mut manual = C::new();
        manual.init_root(t2);
        manual.increment(7);
        assert_eq!(adopted.vector_time(), manual.vector_time());
        assert_eq!(adopted.root_tid(), Some(t2));
        assert_eq!(adopted.get(t2), 7);
        // base 0 is exactly init_root.
        let mut zero = C::new();
        zero.adopt_slot(ThreadId::new(0), 0);
        assert_eq!(zero.get(ThreadId::new(0)), 0);
        assert_eq!(zero.root_tid(), Some(ThreadId::new(0)));
    }

    fn clear_slot_excises_one_entry<C: LogicalClock>() {
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let t3 = ThreadId::new(3);
        let mut c = C::new();
        c.init_root(t1);
        c.increment(5);
        let mut other = C::new();
        other.adopt_slot(t3, 9);
        c.join(&other);
        assert_eq!(c.get(t3), 9);
        c.clear_slot(t3);
        assert_eq!(c.get(t3), 0);
        assert_eq!(c.get(t1), 5);
        assert_eq!(c.root_tid(), Some(t1));
        // Clearing an absent slot is a no-op.
        c.clear_slot(ThreadId::new(17));
        assert_eq!(c.get(t1), 5);
        // Clearing the root keeps the clock rooted, at time 0.
        c.clear_slot(t1);
        assert_eq!(c.get(t1), 0);
        assert_eq!(c.root_tid(), Some(t1));
        // And an empty clock stays empty.
        let mut empty = C::new();
        empty.clear_slot(t0);
        assert!(empty.is_empty());
    }

    #[test]
    fn adopt_slot_matches_on_every_backend() {
        adopt_slot_behaves_like_init_plus_increment::<crate::VectorClock>();
        adopt_slot_behaves_like_init_plus_increment::<crate::TreeClock>();
        adopt_slot_behaves_like_init_plus_increment::<crate::HybridClock>();
    }

    #[test]
    fn clear_slot_matches_on_every_backend() {
        clear_slot_excises_one_entry::<crate::VectorClock>();
        clear_slot_excises_one_entry::<crate::TreeClock>();
        clear_slot_excises_one_entry::<crate::HybridClock>();
    }
}
