//! A free list of recycled clocks, so steady-state analysis runs
//! allocation-free.
//!
//! Partial-order engines materialize many auxiliary clocks over a run —
//! one per lock, one per variable (`LW_x`), one per thread-variable pair
//! (`R_{t,x}`) — and analyses typically run several engines over the
//! same trace (both clock backends, three partial orders, repeated
//! timing runs). Each of those clocks owns buffers that grow to the
//! thread dimension `k`; allocating them afresh for every engine is
//! pure malloc traffic on the hot path.
//!
//! A [`ClockPool`] keeps cleared clocks (with their grown buffers) on a
//! free list. [`acquire`](ClockPool::acquire) hands out an empty clock,
//! reusing a recycled one when available; [`release`](ClockPool::release)
//! [`clear`](crate::LogicalClock::clear)s a clock and free-lists it.
//! Engines take a pool at construction and give it back (with every
//! clock they created) at teardown, so the second run of anything —
//! the next repetition of a benchmark, the next engine of a conformance
//! check, the next corpus case of a sweep — performs no clock
//! allocations at all.
//!
//! # Example
//!
//! ```rust
//! use tc_core::{ClockPool, LogicalClock, ThreadId, TreeClock};
//!
//! let mut pool = ClockPool::<TreeClock>::new();
//! let mut c = pool.acquire();
//! c.init_root(ThreadId::new(3));
//! c.increment(7);
//! pool.release(c);
//!
//! // The recycled clock comes back empty, buffers intact.
//! let c = pool.acquire();
//! assert!(c.is_empty());
//! assert_eq!(c.get(ThreadId::new(3)), 0);
//! assert_eq!(pool.recycled(), 1);
//! ```

use crate::clock::LogicalClock;

/// A free list of cleared clocks with their allocations kept warm.
///
/// See the [module documentation](self) for the usage pattern. The pool
/// also counts its traffic ([`fresh`](Self::fresh) /
/// [`recycled`](Self::recycled)), which the perf baseline and the pool
/// unit tests use to assert that steady state is allocation-free.
#[derive(Debug)]
pub struct ClockPool<C> {
    free: Vec<C>,
    fresh: u64,
    recycled: u64,
}

impl<C: LogicalClock> ClockPool<C> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ClockPool {
            free: Vec::new(),
            fresh: 0,
            recycled: 0,
        }
    }

    /// Hands out an empty clock, recycling a free-listed one when
    /// available and allocating a fresh `C::new()` otherwise.
    pub fn acquire(&mut self) -> C {
        match self.free.pop() {
            Some(clock) => {
                debug_assert!(clock.is_empty(), "pooled clock was not cleared");
                self.recycled += 1;
                clock
            }
            None => {
                self.fresh += 1;
                C::new()
            }
        }
    }

    /// Clears `clock` and free-lists it for a later
    /// [`acquire`](Self::acquire). The clock's buffers are kept, so the
    /// next user inherits its capacity.
    pub fn release(&mut self, mut clock: C) {
        clock.clear();
        self.free.push(clock);
    }

    /// Number of clocks currently on the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Returns `true` if no clock is currently free-listed.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Number of `acquire` calls served by a fresh allocation.
    pub fn fresh(&self) -> u64 {
        self.fresh
    }

    /// Number of `acquire` calls served from the free list.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Heap bytes parked on the free list (the capacity a future
    /// acquire inherits).
    pub fn heap_bytes(&self) -> usize {
        self.free.iter().map(C::heap_bytes).sum()
    }

    /// Drains another pool's free list into this one, merging its
    /// traffic counters — used when an engine hands back its pool.
    pub fn absorb(&mut self, mut other: ClockPool<C>) {
        self.free.append(&mut other.free);
        self.fresh += other.fresh;
        self.recycled += other.recycled;
    }
}

impl<C: LogicalClock> Default for ClockPool<C> {
    fn default() -> Self {
        ClockPool::new()
    }
}

/// A lazily materialized clock slot: `None` until first written.
///
/// Engines keep one slot per variable (and per lock); a variable that
/// is never accessed — or only read before any write — costs one `Option`
/// discriminant instead of a full clock, and the slot materializes from
/// the [`ClockPool`] (inheriting recycled buffers) the first time an
/// ordering is actually published through it.
///
/// An empty slot is semantically identical to an empty clock: joins
/// against it are no-ops and are skipped entirely by the engines (they
/// record neither the operation nor any work).
#[derive(Clone, Debug, Default)]
pub struct LazyClock<C> {
    slot: Option<C>,
}

impl<C: LogicalClock> LazyClock<C> {
    /// Creates an unmaterialized slot.
    pub const fn empty() -> Self {
        LazyClock { slot: None }
    }

    /// The clock, if the slot has materialized.
    pub fn get(&self) -> Option<&C> {
        self.slot.as_ref()
    }

    /// Mutable access to the clock, if the slot has materialized.
    pub fn get_mut(&mut self) -> Option<&mut C> {
        self.slot.as_mut()
    }

    /// The clock, materializing it from `pool` on first use.
    pub fn get_or_acquire(&mut self, pool: &mut ClockPool<C>) -> &mut C {
        self.slot.get_or_insert_with(|| pool.acquire())
    }

    /// Returns `true` once the slot holds a clock.
    pub fn is_materialized(&self) -> bool {
        self.slot.is_some()
    }

    /// Releases the materialized clock (if any) back into `pool`,
    /// leaving the slot empty again.
    pub fn release_into(&mut self, pool: &mut ClockPool<C>) {
        if let Some(clock) = self.slot.take() {
            pool.release(clock);
        }
    }

    /// Heap bytes owned by the materialized clock (0 while lazy).
    pub fn heap_bytes(&self) -> usize {
        self.slot.as_ref().map_or(0, C::heap_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreadId, TreeClock, VectorClock};

    fn exercise_pool<C: LogicalClock>() {
        let mut pool = ClockPool::<C>::new();
        let mut a = pool.acquire();
        a.init_root(ThreadId::new(0));
        a.increment(5);
        let mut b = pool.acquire();
        b.init_root(ThreadId::new(9));
        b.increment(2);
        assert_eq!(pool.fresh(), 2);
        assert_eq!(pool.recycled(), 0);

        // Release and re-acquire: the clock is recycled and empty.
        pool.release(a);
        let a2 = pool.acquire();
        assert_eq!(pool.recycled(), 1);
        assert!(a2.is_empty());
        assert_eq!(a2.get(ThreadId::new(0)), 0);
        assert_eq!(a2.root_tid(), None);

        // No aliasing: mutating the recycled clock leaves `b` alone.
        let mut a2 = a2;
        a2.init_root(ThreadId::new(9));
        a2.increment(100);
        assert_eq!(b.get(ThreadId::new(9)), 2);
        assert_eq!(a2.get(ThreadId::new(9)), 100);
    }

    #[test]
    fn pool_recycles_tree_clocks_without_aliasing() {
        exercise_pool::<TreeClock>();
    }

    #[test]
    fn pool_recycles_vector_clocks_without_aliasing() {
        exercise_pool::<VectorClock>();
    }

    #[test]
    fn recycled_clocks_keep_their_capacity() {
        let mut pool = ClockPool::<VectorClock>::new();
        let mut c = pool.acquire();
        c.reserve_threads(64);
        pool.release(c);
        assert!(pool.heap_bytes() >= 64 * std::mem::size_of::<crate::LocalTime>());
        let c = pool.acquire();
        assert!(c.heap_bytes() >= 64 * std::mem::size_of::<crate::LocalTime>());
        assert!(c.is_empty());
    }

    #[test]
    fn reuse_across_copies_is_clean() {
        // A pooled clock used as a copy target, released, then reused as
        // a different variable's clock must not leak the first role's
        // content.
        let mut pool = ClockPool::<TreeClock>::new();
        let mut src = TreeClock::new();
        src.init_root(ThreadId::new(1));
        src.increment(4);

        let mut lw_x = pool.acquire();
        lw_x.monotone_copy(&src);
        assert_eq!(lw_x.get(ThreadId::new(1)), 4);
        pool.release(lw_x);

        let lw_y = pool.acquire();
        assert!(lw_y.is_empty());
        assert_eq!(lw_y.vector_time(), crate::VectorTime::new());
    }

    #[test]
    fn absorb_merges_free_lists_and_counters() {
        let mut a = ClockPool::<VectorClock>::new();
        let mut b = ClockPool::<VectorClock>::new();
        let c = b.acquire();
        b.release(c);
        a.absorb(b);
        assert_eq!(a.free_len(), 1);
        assert_eq!(a.fresh(), 1);
    }

    #[test]
    fn lazy_clock_materializes_once() {
        let mut pool = ClockPool::<TreeClock>::new();
        let mut slot = LazyClock::<TreeClock>::empty();
        assert!(!slot.is_materialized());
        assert!(slot.get().is_none());
        assert_eq!(slot.heap_bytes(), 0);

        slot.get_or_acquire(&mut pool).init_root(ThreadId::new(2));
        assert!(slot.is_materialized());
        slot.get_or_acquire(&mut pool).increment(1);
        assert_eq!(pool.fresh(), 1, "second access must not re-acquire");
        assert_eq!(slot.get().unwrap().get(ThreadId::new(2)), 1);

        slot.release_into(&mut pool);
        assert!(!slot.is_materialized());
        assert_eq!(pool.free_len(), 1);
    }
}
