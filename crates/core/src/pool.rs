//! A free list of recycled clocks, so steady-state analysis runs
//! allocation-free.
//!
//! Partial-order engines materialize many auxiliary clocks over a run —
//! one per lock, one per variable (`LW_x`), one per thread-variable pair
//! (`R_{t,x}`) — and analyses typically run several engines over the
//! same trace (both clock backends, three partial orders, repeated
//! timing runs). Each of those clocks owns buffers that grow to the
//! thread dimension `k`; allocating them afresh for every engine is
//! pure malloc traffic on the hot path.
//!
//! A [`ClockPool`] keeps cleared clocks (with their grown buffers) on a
//! free list. [`acquire`](ClockPool::acquire) hands out an empty clock,
//! reusing a recycled one when available; [`release`](ClockPool::release)
//! [`clear`](crate::LogicalClock::clear)s a clock and free-lists it.
//! Engines take a pool at construction and give it back (with every
//! clock they created) at teardown, so the second run of anything —
//! the next repetition of a benchmark, the next engine of a conformance
//! check, the next corpus case of a sweep — performs no clock
//! allocations at all.
//!
//! # Example
//!
//! ```rust
//! use tc_core::{ClockPool, LogicalClock, ThreadId, TreeClock};
//!
//! let mut pool = ClockPool::<TreeClock>::new();
//! let mut c = pool.acquire();
//! c.init_root(ThreadId::new(3));
//! c.increment(7);
//! pool.release(c);
//!
//! // The recycled clock comes back empty, buffers intact.
//! let c = pool.acquire();
//! assert!(c.is_empty());
//! assert_eq!(c.get(ThreadId::new(3)), 0);
//! assert_eq!(pool.recycled(), 1);
//! ```

use crate::clock::LogicalClock;

/// A free list of cleared clocks with their allocations kept warm.
///
/// See the [module documentation](self) for the usage pattern. The pool
/// also counts its traffic ([`fresh`](Self::fresh) /
/// [`recycled`](Self::recycled)), which the perf baseline and the pool
/// unit tests use to assert that steady state is allocation-free.
#[derive(Debug)]
pub struct ClockPool<C> {
    free: Vec<C>,
    fresh: u64,
    recycled: u64,
    dropped: u64,
    high_water: usize,
    /// Heap bytes currently parked on the free list, maintained
    /// incrementally (clocks are immutable while parked, so the value
    /// recorded at release stays exact until the clock is re-acquired).
    free_bytes: usize,
    /// High-water mark of `free_bytes` over the pool's life — the
    /// quantity the streaming subsystem's bounded-memory tests track.
    peak_free_bytes: usize,
    /// Per-pool dense-cutoff override, applied to every clock
    /// [`acquire`](Self::acquire) hands out (fresh and recycled alike)
    /// via [`LogicalClock::tune_dense_cutoff`]. `None` leaves clocks on
    /// the process-wide default — the per-pool knob exists precisely so
    /// callers don't have to mutate that global.
    dense_cutoff: Option<u64>,
    /// Per-pool tree-observation-period override, applied exactly like
    /// [`dense_cutoff`](Self::dense_cutoff) via
    /// [`LogicalClock::tune_tree_obs_period`]. `None` leaves clocks on
    /// [`DEFAULT_TREE_OBS_PERIOD`](crate::hybrid::DEFAULT_TREE_OBS_PERIOD).
    tree_obs_period: Option<u8>,
}

/// Default free-list high-water mark: enough for every engine of a
/// 4096-thread differential sweep to park its clocks, small enough that
/// a long-running multi-tenant process cannot hoard unbounded buffer
/// memory across traces of wildly different shapes (the ROADMAP's
/// "capping free-list growth" item). Override per pool with
/// [`ClockPool::with_high_water`] / [`ClockPool::set_high_water`].
pub const DEFAULT_HIGH_WATER: usize = 1 << 16;

impl<C: LogicalClock> ClockPool<C> {
    /// Creates an empty pool with the [`DEFAULT_HIGH_WATER`] cap.
    pub fn new() -> Self {
        ClockPool {
            free: Vec::new(),
            fresh: 0,
            recycled: 0,
            dropped: 0,
            high_water: DEFAULT_HIGH_WATER,
            free_bytes: 0,
            peak_free_bytes: 0,
            dense_cutoff: None,
            tree_obs_period: None,
        }
    }

    /// Creates an empty pool that will never free-list more than
    /// `high_water` clocks; further releases drop the clock (and its
    /// buffers) instead, counted in [`dropped`](Self::dropped).
    pub fn with_high_water(high_water: usize) -> Self {
        let mut pool = ClockPool::new();
        pool.high_water = high_water;
        pool
    }

    /// Adjusts the free-list cap. Clocks already parked beyond the new
    /// mark are dropped immediately.
    pub fn set_high_water(&mut self, high_water: usize) {
        self.high_water = high_water;
        if self.free.len() > high_water {
            self.dropped += (self.free.len() - high_water) as u64;
            self.free.truncate(high_water);
            self.free_bytes = self.free.iter().map(C::heap_bytes).sum();
        }
    }

    /// The current free-list cap.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Sets (or with `None`, clears) the pool's dense-cutoff override;
    /// see the field docs. Only affects clocks handed out *after* the
    /// call.
    pub fn set_dense_cutoff(&mut self, entries: Option<u64>) {
        self.dense_cutoff = entries;
    }

    /// The pool's dense-cutoff override, if any.
    pub fn dense_cutoff(&self) -> Option<u64> {
        self.dense_cutoff
    }

    /// Sets (or with `None`, clears) the pool's tree-observation-period
    /// override; see the field docs. Only affects clocks handed out
    /// *after* the call.
    pub fn set_tree_obs_period(&mut self, period: Option<u8>) {
        self.tree_obs_period = period;
    }

    /// The pool's tree-observation-period override, if any.
    pub fn tree_obs_period(&self) -> Option<u8> {
        self.tree_obs_period
    }

    /// Hands out an empty clock, recycling a free-listed one when
    /// available and allocating a fresh `C::new()` otherwise.
    pub fn acquire(&mut self) -> C {
        let mut clock = match self.free.pop() {
            Some(clock) => {
                debug_assert!(clock.is_empty(), "pooled clock was not cleared");
                self.recycled += 1;
                self.free_bytes = self.free_bytes.saturating_sub(clock.heap_bytes());
                clock
            }
            None => {
                self.fresh += 1;
                C::new()
            }
        };
        if let Some(entries) = self.dense_cutoff {
            clock.tune_dense_cutoff(entries);
        }
        if let Some(period) = self.tree_obs_period {
            clock.tune_tree_obs_period(period);
        }
        clock
    }

    /// Clears `clock` and free-lists it for a later
    /// [`acquire`](Self::acquire). The clock's buffers are kept, so the
    /// next user inherits its capacity — unless the free list is at its
    /// high-water mark, in which case the clock is dropped instead (and
    /// counted in [`dropped`](Self::dropped)).
    pub fn release(&mut self, mut clock: C) {
        if self.free.len() >= self.high_water {
            self.dropped += 1;
            return;
        }
        clock.clear();
        self.free_bytes += clock.heap_bytes();
        self.peak_free_bytes = self.peak_free_bytes.max(self.free_bytes);
        self.free.push(clock);
    }

    /// Number of clocks currently on the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Returns `true` if no clock is currently free-listed.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Number of `acquire` calls served by a fresh allocation.
    pub fn fresh(&self) -> u64 {
        self.fresh
    }

    /// Number of `acquire` calls served from the free list.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Number of released clocks dropped because the free list was at
    /// its high-water mark.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Heap bytes parked on the free list (the capacity a future
    /// acquire inherits).
    pub fn heap_bytes(&self) -> usize {
        self.free.iter().map(C::heap_bytes).sum()
    }

    /// The high-water mark of [`heap_bytes`](Self::heap_bytes) over the
    /// pool's life, maintained incrementally at each release. The
    /// streaming subsystem's bounded-memory regression tests assert
    /// this stays proportional to the *live* working set on
    /// thread-churn traces (retired threads' clocks park here briefly
    /// and are re-issued to the next wave).
    pub fn peak_bytes(&self) -> usize {
        self.peak_free_bytes
    }

    /// Drains another pool's free list into this one (respecting this
    /// pool's high-water mark), merging its traffic counters — used
    /// when an engine hands back its pool.
    pub fn absorb(&mut self, mut other: ClockPool<C>) {
        let room = self.high_water.saturating_sub(self.free.len());
        if other.free.len() > room {
            self.dropped += (other.free.len() - room) as u64;
            other.free.truncate(room);
        }
        self.free_bytes += other.free.iter().map(C::heap_bytes).sum::<usize>();
        self.peak_free_bytes = self.peak_free_bytes.max(self.free_bytes);
        self.free.append(&mut other.free);
        self.fresh += other.fresh;
        self.recycled += other.recycled;
        self.dropped += other.dropped;
    }
}

impl<C: LogicalClock> Default for ClockPool<C> {
    fn default() -> Self {
        ClockPool::new()
    }
}

/// A lazily materialized clock slot: `None` until first written.
///
/// Engines keep one slot per variable (and per lock); a variable that
/// is never accessed — or only read before any write — costs one `Option`
/// discriminant instead of a full clock, and the slot materializes from
/// the [`ClockPool`] (inheriting recycled buffers) the first time an
/// ordering is actually published through it.
///
/// An empty slot is semantically identical to an empty clock: joins
/// against it are no-ops and are skipped entirely by the engines (they
/// record neither the operation nor any work).
#[derive(Clone, Debug, Default)]
pub struct LazyClock<C> {
    slot: Option<C>,
}

impl<C: LogicalClock> LazyClock<C> {
    /// Creates an unmaterialized slot.
    pub const fn empty() -> Self {
        LazyClock { slot: None }
    }

    /// Wraps an already materialized clock (checkpoint restore).
    pub fn from_clock(clock: C) -> Self {
        LazyClock { slot: Some(clock) }
    }

    /// The clock, if the slot has materialized.
    pub fn get(&self) -> Option<&C> {
        self.slot.as_ref()
    }

    /// Mutable access to the clock, if the slot has materialized.
    pub fn get_mut(&mut self) -> Option<&mut C> {
        self.slot.as_mut()
    }

    /// The clock, materializing it from `pool` on first use.
    pub fn get_or_acquire(&mut self, pool: &mut ClockPool<C>) -> &mut C {
        self.slot.get_or_insert_with(|| pool.acquire())
    }

    /// Returns `true` once the slot holds a clock.
    pub fn is_materialized(&self) -> bool {
        self.slot.is_some()
    }

    /// Releases the materialized clock (if any) back into `pool`,
    /// leaving the slot empty again.
    pub fn release_into(&mut self, pool: &mut ClockPool<C>) {
        if let Some(clock) = self.slot.take() {
            pool.release(clock);
        }
    }

    /// Heap bytes owned by the materialized clock (0 while lazy).
    pub fn heap_bytes(&self) -> usize {
        self.slot.as_ref().map_or(0, C::heap_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreadId, TreeClock, VectorClock};

    fn exercise_pool<C: LogicalClock>() {
        let mut pool = ClockPool::<C>::new();
        let mut a = pool.acquire();
        a.init_root(ThreadId::new(0));
        a.increment(5);
        let mut b = pool.acquire();
        b.init_root(ThreadId::new(9));
        b.increment(2);
        assert_eq!(pool.fresh(), 2);
        assert_eq!(pool.recycled(), 0);

        // Release and re-acquire: the clock is recycled and empty.
        pool.release(a);
        let a2 = pool.acquire();
        assert_eq!(pool.recycled(), 1);
        assert!(a2.is_empty());
        assert_eq!(a2.get(ThreadId::new(0)), 0);
        assert_eq!(a2.root_tid(), None);

        // No aliasing: mutating the recycled clock leaves `b` alone.
        let mut a2 = a2;
        a2.init_root(ThreadId::new(9));
        a2.increment(100);
        assert_eq!(b.get(ThreadId::new(9)), 2);
        assert_eq!(a2.get(ThreadId::new(9)), 100);
    }

    #[test]
    fn pool_recycles_tree_clocks_without_aliasing() {
        exercise_pool::<TreeClock>();
    }

    #[test]
    fn pool_recycles_vector_clocks_without_aliasing() {
        exercise_pool::<VectorClock>();
    }

    #[test]
    fn recycled_clocks_keep_their_capacity() {
        let mut pool = ClockPool::<VectorClock>::new();
        let mut c = pool.acquire();
        c.reserve_threads(64);
        pool.release(c);
        assert!(pool.heap_bytes() >= 64 * std::mem::size_of::<crate::LocalTime>());
        let c = pool.acquire();
        assert!(c.heap_bytes() >= 64 * std::mem::size_of::<crate::LocalTime>());
        assert!(c.is_empty());
    }

    #[test]
    fn reuse_across_copies_is_clean() {
        // A pooled clock used as a copy target, released, then reused as
        // a different variable's clock must not leak the first role's
        // content.
        let mut pool = ClockPool::<TreeClock>::new();
        let mut src = TreeClock::new();
        src.init_root(ThreadId::new(1));
        src.increment(4);

        let mut lw_x = pool.acquire();
        lw_x.monotone_copy(&src);
        assert_eq!(lw_x.get(ThreadId::new(1)), 4);
        pool.release(lw_x);

        let lw_y = pool.acquire();
        assert!(lw_y.is_empty());
        assert_eq!(lw_y.vector_time(), crate::VectorTime::new());
    }

    #[test]
    fn high_water_mark_caps_free_list_growth() {
        let mut pool = ClockPool::<VectorClock>::with_high_water(2);
        let clocks: Vec<_> = (0..4).map(|_| pool.acquire()).collect();
        assert_eq!(pool.fresh(), 4);
        for c in clocks {
            pool.release(c);
        }
        assert_eq!(pool.free_len(), 2, "free list must stop at the cap");
        assert_eq!(pool.dropped(), 2);

        // Lowering the cap trims immediately.
        pool.set_high_water(1);
        assert_eq!(pool.free_len(), 1);
        assert_eq!(pool.dropped(), 3);
        assert_eq!(pool.high_water(), 1);

        // Absorbing another pool respects the cap too.
        let mut donor = ClockPool::<VectorClock>::new();
        let c = donor.acquire();
        donor.release(c);
        pool.absorb(donor);
        assert_eq!(pool.free_len(), 1);
        assert_eq!(pool.dropped(), 4);
    }

    #[test]
    fn hybrid_clocks_pool_and_recycle() {
        exercise_pool::<crate::HybridClock>();
    }

    #[test]
    fn absorb_merges_free_lists_and_counters() {
        let mut a = ClockPool::<VectorClock>::new();
        let mut b = ClockPool::<VectorClock>::new();
        let c = b.acquire();
        b.release(c);
        a.absorb(b);
        assert_eq!(a.free_len(), 1);
        assert_eq!(a.fresh(), 1);
    }

    #[test]
    fn pool_dense_cutoff_tunes_fresh_and_recycled_clocks() {
        use crate::HybridClock;
        let mut pool = ClockPool::<HybridClock>::new();
        assert_eq!(pool.dense_cutoff(), None);
        pool.set_dense_cutoff(Some(7));
        let fresh = pool.acquire();
        assert_eq!(
            fresh.dense_cutoff(),
            7,
            "fresh clocks adopt the pool cutoff"
        );
        pool.release(fresh);
        pool.set_dense_cutoff(Some(9));
        let recycled = pool.acquire();
        assert_eq!(
            recycled.dense_cutoff(),
            9,
            "recycled clocks are re-tuned on every acquire"
        );
        // Non-adaptive backends ignore the hint entirely.
        let mut tree_pool = ClockPool::<TreeClock>::new();
        tree_pool.set_dense_cutoff(Some(7));
        let c = tree_pool.acquire();
        assert!(c.is_empty());
    }

    #[test]
    fn pool_tree_obs_period_tunes_fresh_and_recycled_clocks() {
        use crate::{HybridClock, DEFAULT_TREE_OBS_PERIOD};
        let mut pool = ClockPool::<HybridClock>::new();
        assert_eq!(pool.tree_obs_period(), None);
        let untuned = pool.acquire();
        assert_eq!(untuned.tree_obs_period(), DEFAULT_TREE_OBS_PERIOD);
        pool.release(untuned);
        pool.set_tree_obs_period(Some(8));
        let recycled = pool.acquire();
        assert_eq!(
            recycled.tree_obs_period(),
            8,
            "recycled clocks are re-tuned on every acquire"
        );
        pool.set_tree_obs_period(Some(0));
        let clamped = pool.acquire();
        assert_eq!(clamped.tree_obs_period(), 1, "period clamps to ≥ 1");
        // Non-adaptive backends ignore the hint entirely.
        let mut tree_pool = ClockPool::<TreeClock>::new();
        tree_pool.set_tree_obs_period(Some(8));
        assert!(tree_pool.acquire().is_empty());
    }

    #[test]
    fn lazy_clock_materializes_once() {
        let mut pool = ClockPool::<TreeClock>::new();
        let mut slot = LazyClock::<TreeClock>::empty();
        assert!(!slot.is_materialized());
        assert!(slot.get().is_none());
        assert_eq!(slot.heap_bytes(), 0);

        slot.get_or_acquire(&mut pool).init_root(ThreadId::new(2));
        assert!(slot.is_materialized());
        slot.get_or_acquire(&mut pool).increment(1);
        assert_eq!(pool.fresh(), 1, "second access must not re-acquire");
        assert_eq!(slot.get().unwrap().get(ThreadId::new(2)), 1);

        slot.release_into(&mut pool);
        assert!(!slot.is_materialized());
        assert_eq!(pool.free_len(), 1);
    }
}
