//! Property-based differential tests: a [`TreeClock`] and a
//! [`VectorClock`] driven through the *same* random (but causally valid)
//! sequence of operations must represent identical vector times at every
//! step, report identical `changed` work (the data-structure-independent
//! `VTWork` contribution), agree on ordering queries, and the tree clock
//! must satisfy all structural invariants throughout.

use proptest::prelude::*;

use tc_core::{CopyMode, LogicalClock, ThreadId, TreeClock, VectorClock};

/// One causally valid step of a lock/variable-based execution. The steps
/// mirror how the HB/SHB engines drive clocks, which is the contract
/// under which tree clocks operate.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// `acq(l)` by thread `t`: increment + join with the lock clock.
    Acquire { t: usize, l: usize },
    /// `rel(l)` by thread `t`: increment + monotone-copy into the lock.
    Release { t: usize, l: usize },
    /// `r(x)` by `t`: increment + join with the last-write clock.
    Read { t: usize, x: usize },
    /// `w(x)` by `t`: increment + copy-check-monotone into last-write.
    Write { t: usize, x: usize },
    /// Thread `t` joins thread `u`'s clock (a `join(u)` event).
    JoinThread { t: usize, u: usize },
}

const THREADS: usize = 6;
const LOCKS: usize = 3;
const VARS: usize = 3;

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..THREADS, 0..LOCKS).prop_map(|(t, l)| Step::Acquire { t, l }),
        (0..THREADS, 0..LOCKS).prop_map(|(t, l)| Step::Release { t, l }),
        (0..THREADS, 0..VARS).prop_map(|(t, x)| Step::Read { t, x }),
        (0..THREADS, 0..VARS).prop_map(|(t, x)| Step::Write { t, x }),
        (0..THREADS, 0..THREADS).prop_map(|(t, u)| Step::JoinThread { t, u }),
    ]
}

/// A pair of clock universes (one per representation) driven in
/// lockstep.
struct Universe {
    tc_threads: Vec<TreeClock>,
    vc_threads: Vec<VectorClock>,
    tc_locks: Vec<TreeClock>,
    vc_locks: Vec<VectorClock>,
    tc_lw: Vec<TreeClock>,
    vc_lw: Vec<VectorClock>,
    /// Tracks, per lock, whether a release must be preceded by an acquire
    /// by the same thread (to respect lock semantics we only release what
    /// the thread last acquired).
    held_by: Vec<Option<usize>>,
}

impl Universe {
    fn new() -> Self {
        let mut u = Universe {
            tc_threads: (0..THREADS).map(|_| TreeClock::new()).collect(),
            vc_threads: (0..THREADS).map(|_| VectorClock::new()).collect(),
            tc_locks: (0..LOCKS).map(|_| TreeClock::new()).collect(),
            vc_locks: (0..LOCKS).map(|_| VectorClock::new()).collect(),
            tc_lw: (0..VARS).map(|_| TreeClock::new()).collect(),
            vc_lw: (0..VARS).map(|_| VectorClock::new()).collect(),
            held_by: vec![None; LOCKS],
        };
        for t in 0..THREADS {
            u.tc_threads[t].init_root(ThreadId::new(t as u32));
            u.vc_threads[t].init_root(ThreadId::new(t as u32));
        }
        u
    }

    /// Applies a step to both universes; returns false if the step was
    /// skipped to keep the execution causally valid.
    fn apply(&mut self, step: Step) -> bool {
        match step {
            Step::Acquire { t, l } => {
                if self.held_by[l].is_some() {
                    return false; // lock busy: skip to respect semantics
                }
                self.held_by[l] = Some(t);
                self.tc_threads[t].increment(1);
                self.vc_threads[t].increment(1);
                let a = self.tc_threads[t].join_counted(&self.tc_locks[l]);
                let b = self.vc_threads[t].join_counted(&self.vc_locks[l]);
                assert_eq!(
                    a.changed, b.changed,
                    "VTWork(acquire) must be representation independent"
                );
                true
            }
            Step::Release { t, l } => {
                if self.held_by[l] != Some(t) {
                    return false;
                }
                self.held_by[l] = None;
                self.tc_threads[t].increment(1);
                self.vc_threads[t].increment(1);
                let a = self.tc_locks[l].monotone_copy_counted(&self.tc_threads[t]);
                let b = self.vc_locks[l].monotone_copy_counted(&self.vc_threads[t]);
                assert_eq!(
                    a.changed, b.changed,
                    "VTWork(release) must be representation independent"
                );
                true
            }
            Step::Read { t, x } => {
                self.tc_threads[t].increment(1);
                self.vc_threads[t].increment(1);
                let a = self.tc_threads[t].join_counted(&self.tc_lw[x]);
                let b = self.vc_threads[t].join_counted(&self.vc_lw[x]);
                assert_eq!(a.changed, b.changed);
                true
            }
            Step::Write { t, x } => {
                self.tc_threads[t].increment(1);
                self.vc_threads[t].increment(1);
                // The O(1) monotonicity pre-check on the tree clock must
                // agree with the full pointwise comparison.
                let full = self.vc_lw[x].leq(&self.vc_threads[t]);
                let (mode, a) = self.tc_lw[x].copy_check_monotone_counted(&self.tc_threads[t]);
                assert_eq!(
                    mode == CopyMode::Monotone,
                    full,
                    "tree clock O(1) leq disagrees with pointwise comparison"
                );
                let (_, b) = self.vc_lw[x].copy_check_monotone_counted(&self.vc_threads[t]);
                assert_eq!(a.changed, b.changed);
                true
            }
            Step::JoinThread { t, u } => {
                if t == u {
                    return false;
                }
                self.tc_threads[t].increment(1);
                self.vc_threads[t].increment(1);
                let (a, b);
                {
                    let (tc_t, tc_u) = index_two(&mut self.tc_threads, t, u);
                    a = tc_t.join_counted(tc_u);
                }
                {
                    let (vc_t, vc_u) = index_two(&mut self.vc_threads, t, u);
                    b = vc_t.join_counted(vc_u);
                }
                assert_eq!(a.changed, b.changed);
                true
            }
        }
    }

    fn check_agreement(&self) {
        for t in 0..THREADS {
            assert_eq!(
                self.tc_threads[t].vector_time(),
                self.vc_threads[t].vector_time(),
                "thread {t} clocks diverged"
            );
            self.tc_threads[t].check_invariants().unwrap();
        }
        for l in 0..LOCKS {
            assert_eq!(
                self.tc_locks[l].vector_time(),
                self.vc_locks[l].vector_time(),
                "lock {l} clocks diverged"
            );
            self.tc_locks[l].check_invariants().unwrap();
        }
        for x in 0..VARS {
            assert_eq!(
                self.tc_lw[x].vector_time(),
                self.vc_lw[x].vector_time(),
                "last-write {x} clocks diverged"
            );
            self.tc_lw[x].check_invariants().unwrap();
        }
        // The O(1) tree-clock ordering check must agree with the full
        // pointwise comparison on clocks from the same computation.
        for a in 0..THREADS {
            for b in 0..THREADS {
                assert_eq!(
                    self.tc_threads[a].leq(&self.tc_threads[b]),
                    self.vc_threads[a].leq(&self.vc_threads[b]),
                    "leq disagreement between threads {a} and {b}"
                );
            }
        }
    }
}

/// Mutable access to two distinct indices of a slice.
fn index_two<T>(v: &mut [T], i: usize, j: usize) -> (&mut T, &T) {
    assert_ne!(i, j);
    if i < j {
        let (a, b) = v.split_at_mut(j);
        (&mut a[i], &b[0])
    } else {
        let (a, b) = v.split_at_mut(i);
        (&mut b[0], &a[j])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The flagship differential property: whatever valid op sequence is
    /// thrown at them, the two representations remain observationally
    /// identical and the tree stays structurally sound.
    #[test]
    fn tree_and_vector_clocks_agree(steps in prop::collection::vec(step_strategy(), 1..120)) {
        let mut u = Universe::new();
        for step in steps {
            u.apply(step);
        }
        u.check_agreement();
    }

    /// Checking agreement after *every* step (slower, fewer cases)
    /// pinpoints the first divergence if one exists.
    #[test]
    fn agreement_holds_stepwise(steps in prop::collection::vec(step_strategy(), 1..40)) {
        let mut u = Universe::new();
        for step in steps {
            if u.apply(step) {
                u.check_agreement();
            }
        }
    }
}

#[test]
fn long_deterministic_smoke_run() {
    // A long fixed pseudo-random run (cheap LCG) as a deterministic
    // regression net in addition to the proptest exploration.
    let mut u = Universe::new();
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..5_000 {
        let r = rand();
        let t = (r % THREADS as u64) as usize;
        let aux = ((r >> 8) % 3) as usize;
        let step = match (r >> 16) % 5 {
            0 => Step::Acquire { t, l: aux },
            1 => Step::Release { t, l: aux },
            2 => Step::Read { t, x: aux },
            3 => Step::Write { t, x: aux },
            _ => Step::JoinThread {
                t,
                u: ((r >> 24) % THREADS as u64) as usize,
            },
        };
        u.apply(step);
        if i % 512 == 0 {
            u.check_agreement();
        }
    }
    u.check_agreement();
}
